//! End-to-end tests over a real loopback TCP socket: a [`DefenseServer`] in
//! one set of threads, [`RemoteDefense`] clients (or raw protocol frames) on
//! the other side, and bit-identical results as the acceptance bar.

use ensembler::{
    Defense, EngineConfig, EnsemblerError, InferenceEngine, Precision, QuantizedDefense,
};
use ensembler_serve::protocol::{
    crc32, encode_message, read_message, write_message, ErrorCode, Hello, Message,
    DEFAULT_MAX_PAYLOAD_BYTES, FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES, PROTOCOL_VERSION,
};
use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServeError, ServerConfig};
use ensembler_tensor::{QTensorBatch, Rng, Tensor};
use std::net::TcpStream;
use std::sync::Arc;

/// Binds a demo server on an ephemeral loopback port and returns it with the
/// shared pipeline (the test's stand-in for both sides holding the same
/// checkpoint).
fn demo_server(n: usize, p: usize, seed: u64) -> (DefenseServer, Arc<dyn Defense>) {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed).unwrap());
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, pipeline)
}

fn random_images(batch: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[batch, 3, 16, 16], |_| rng.uniform(-1.0, 1.0))
}

/// Binds a demo server over the int8-quantized demo pipeline.
fn demo_server_int8(n: usize, p: usize, seed: u64) -> (DefenseServer, Arc<dyn Defense>) {
    let pipeline: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(Arc::new(
        demo_pipeline(n, p, seed).unwrap(),
    )));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, pipeline)
}

#[test]
fn remote_predict_is_bit_identical_to_in_process() {
    let (server, pipeline) = demo_server(3, 2, 21);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    assert_eq!(remote.negotiated_version(), PROTOCOL_VERSION);
    assert_eq!(remote.peer_label(), "Ensembler");
    // An f32 replica never uses quantized frames, whatever the version.
    assert!(!remote.uses_quantized_frames());

    // Batched request: travels the direct server path.
    let batch = random_images(4, 1);
    assert_eq!(
        remote.predict(&batch).unwrap(),
        pipeline.predict(&batch).unwrap()
    );

    // Single-image request: travels the server's coalescing engine path.
    let single = random_images(1, 2);
    assert_eq!(
        remote.predict(&single).unwrap(),
        pipeline.predict(&single).unwrap()
    );

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.requests_served, 2);
    assert_eq!(stats.errors_sent, 0);
}

#[test]
fn staged_remote_calls_match_the_composed_predict() {
    // The Defense contract survives the network: running the three stages by
    // hand (with server_outputs remote) equals the composed predict.
    let (server, pipeline) = demo_server(2, 1, 33);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    let images = random_images(2, 3);

    let transmitted = remote.client_features(&images).unwrap();
    let maps = remote.server_outputs(&transmitted).unwrap();
    assert_eq!(maps.len(), pipeline.ensemble_size());
    let staged = remote.classify(&maps).unwrap();
    assert_eq!(staged, pipeline.predict(&images).unwrap());
}

#[test]
fn concurrent_remote_clients_coalesce_across_connections() {
    let (server, pipeline) = demo_server(2, 1, 5);
    let expected: Vec<Tensor> = (0..6)
        .map(|k| pipeline.predict(&random_images(1, 100 + k)).unwrap())
        .collect();

    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|k| {
                let pipeline = Arc::clone(&pipeline);
                let addr = server.local_addr();
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(pipeline, addr).unwrap();
                    remote.predict(&random_images(1, 100 + k)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(answers, expected);
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 6);
    assert_eq!(stats.requests_served, 6);
    // All six single-image requests went through the shared engine queue.
    assert_eq!(server.engine_stats().requests_served, 6);
}

#[test]
fn a_remote_defense_can_sit_behind_a_local_inference_engine() {
    // Full composition: local engine -> RemoteDefense -> socket -> server
    // engine -> pipeline. Existing serving code runs unchanged on a remote.
    let (server, pipeline) = demo_server(2, 1, 8);
    let remote: Arc<dyn Defense> =
        Arc::new(RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap());
    let engine = InferenceEngine::new(remote, EngineConfig::default()).unwrap();

    let image = random_images(1, 9);
    let expected = pipeline.predict(&image).unwrap();
    let logits = engine.predict_one(image.batch_item(0)).unwrap();
    assert_eq!(logits.data(), expected.data());
}

#[test]
fn quantized_remote_predict_is_bit_identical_to_in_process_int8() {
    let (server, int8) = demo_server_int8(3, 2, 41);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    assert_eq!(remote.negotiated_version(), 2);
    assert_eq!(remote.peer_label(), "Ensembler+int8");
    assert_eq!(remote.precision(), Precision::Int8);
    assert!(remote.uses_quantized_frames());

    // Batched request (direct server path) and single-image request (the
    // engine's quantized coalescing path): both bit-identical to in-process.
    for (batch, seed) in [(4usize, 51u64), (1, 52)] {
        let images = random_images(batch, seed);
        assert_eq!(
            remote.predict(&images).unwrap(),
            int8.predict(&images).unwrap(),
            "batch {batch}"
        );
    }
    assert_eq!(server.stats().requests_served, 2);
    assert_eq!(server.stats().errors_sent, 0);
}

#[test]
fn concurrent_quantized_clients_coalesce_across_connections() {
    let (server, int8) = demo_server_int8(2, 1, 43);
    let expected: Vec<Tensor> = (0..5)
        .map(|k| int8.predict(&random_images(1, 200 + k)).unwrap())
        .collect();

    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..5)
            .map(|k| {
                let int8 = Arc::clone(&int8);
                let addr = server.local_addr();
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(int8, addr).unwrap();
                    remote.predict(&random_images(1, 200 + k)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(answers, expected);
    // All five quantized single-image requests coalesced through the engine.
    assert_eq!(server.engine_stats().requests_served, 5);
}

#[test]
fn a_version_1_client_negotiates_down_to_f32_frames() {
    // A v2 server with an f32 pipeline serves a legacy (max_version = 1)
    // client over f32 frames, bit-identically.
    let (server, pipeline) = demo_server(2, 1, 45);
    let remote =
        RemoteDefense::connect_with_max_version(Arc::clone(&pipeline), server.local_addr(), 1)
            .unwrap();
    assert_eq!(remote.negotiated_version(), 1);
    assert!(!remote.uses_quantized_frames());
    let images = random_images(2, 46);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );

    // An int8 replica capped at v1 also works — the quantize→dequantize
    // round trips are part of the pipeline's own semantics, so shipping the
    // split tensors in f32 frames preserves bit-exactness.
    let (server, int8) = demo_server_int8(2, 1, 47);
    let remote =
        RemoteDefense::connect_with_max_version(Arc::clone(&int8), server.local_addr(), 1).unwrap();
    assert_eq!(remote.negotiated_version(), 1);
    assert!(!remote.uses_quantized_frames());
    let images = random_images(2, 48);
    assert_eq!(
        remote.predict(&images).unwrap(),
        int8.predict(&images).unwrap()
    );

    // Offering an unsupported version is rejected client-side.
    assert!(matches!(
        RemoteDefense::connect_with_max_version(int8, server.local_addr(), 0),
        Err(ServeError::UnsupportedVersion { .. })
    ));
}

#[test]
fn f32_client_against_int8_server_fails_the_handshake() {
    // Same architecture, different precision: the label check must refuse to
    // pair them, otherwise predictions silently diverge from both pipelines.
    let (server, _int8) = demo_server_int8(3, 2, 49);
    let f32_replica: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 49).unwrap());
    let err = RemoteDefense::connect(f32_replica, server.local_addr()).unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn truncated_and_garbage_quantized_requests_get_error_frames() {
    use std::io::Write;

    let (server, int8) = demo_server_int8(2, 1, 53);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello { max_version: 2 })).unwrap();
    let Message::HelloAck(ack) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap()
    else {
        panic!("handshake failed");
    };
    assert_eq!(ack.version, 2);

    // A quantized request whose scale field is garbage (NaN): the frame
    // itself is well-formed (CRC re-stamped), so the decode layer must
    // reject the payload and report a malformed frame.
    let features = int8
        .client_features(&random_images(1, 54))
        .map(|t| QTensorBatch::quantize_batch(&t))
        .unwrap();
    let mut frame = encode_message(&Message::ServerOutputsRequestQ {
        transmitted: features,
    });
    let scale_offset = FRAME_HEADER_BYTES + 4 + 4 + 4 * 4; // magic+rank+dims
    frame[scale_offset..scale_offset + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
    let crc = crc32(&frame[..crc_offset]);
    frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::MalformedFrame);
            assert!(wire.message.contains("finite"), "{}", wire.message);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // A truncated quantized request (payload cut mid-data, framing fixed up)
    // is likewise rejected; the server then still serves honest clients.
    drop(stream);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    let images = random_images(1, 55);
    assert_eq!(
        remote.predict(&images).unwrap(),
        int8.predict(&images).unwrap()
    );
}

#[test]
fn quantized_shape_mismatches_are_rejected_before_the_queue() {
    let (server, int8) = demo_server_int8(2, 1, 57);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    for bad in [
        Tensor::ones(&[4, 4]),
        Tensor::ones(&[2, 5, 8, 8]),
        Tensor::ones(&[1, 5, 9, 9]),
    ] {
        let err = remote.server_outputs(&bad).unwrap_err();
        assert!(
            err.to_string().contains("head output"),
            "expected an up-front shape rejection, got {err}"
        );
    }
    assert_eq!(server.engine_stats().requests_served, 0);
}

#[test]
fn mismatched_replica_is_rejected_at_connect_time() {
    let (server, _pipeline) = demo_server(3, 2, 11);
    // Same architecture, different selection count: the handshake must fail.
    let wrong: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 1, 11).unwrap());
    let err = RemoteDefense::connect(wrong, server.local_addr()).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn unsupported_client_version_gets_a_version_error() {
    let (server, _pipeline) = demo_server(2, 1, 12);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello { max_version: 0 })).unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::UnsupportedVersion);
            assert!(wire.message.contains("v0"), "{}", wire.message);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_are_answered_with_a_malformed_frame_error() {
    use std::io::Write;

    let (server, pipeline) = demo_server(2, 1, 13);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello { max_version: 1 })).unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    stream.write_all(&[0xAB; 32]).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => assert_eq!(wire.code, ErrorCode::MalformedFrame),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The malformed frame closed that connection, but the server is fine.
    drop(stream);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    let images = random_images(1, 14);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}

#[test]
fn corrupted_checksums_are_detected_and_reported() {
    use std::io::Write;

    let (server, pipeline) = demo_server(2, 1, 15);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello { max_version: 1 })).unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    let transmitted = pipeline.client_features(&random_images(1, 16)).unwrap();
    let mut frame = encode_message(&Message::ServerOutputsRequest { transmitted });
    let flip = frame.len() - FRAME_TRAILER_BYTES - 1;
    frame[flip] ^= 0x01;
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => assert_eq!(wire.code, ErrorCode::ChecksumMismatch),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // Consistency: a frame with a correctly re-stamped checksum would have
    // been accepted — prove the test corrupted the payload, not the frame.
    let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
    let fixed = crc32(&frame[..crc_offset]);
    assert_ne!(&frame[crc_offset..], fixed.to_be_bytes().as_slice());
}

#[test]
fn inference_errors_keep_the_connection_alive() {
    let (server, pipeline) = demo_server(2, 1, 17);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    // Wrong feature shape: the pipeline rejects (or panics inside) the
    // evaluation; the server must answer with an inference error...
    let bad = Tensor::ones(&[1, 5, 9, 9]);
    let err = remote.server_outputs(&bad).unwrap_err();
    assert!(matches!(err, EnsemblerError::Transport(_)), "{err:?}");

    // ...and still serve the next, valid request on the same connection.
    let images = random_images(1, 18);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
    assert_eq!(server.stats().errors_sent, 1);
}

#[test]
fn malformed_shapes_are_rejected_before_reaching_the_batch_queue() {
    let (server, pipeline) = demo_server(2, 1, 23);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    // Wrong rank, wrong channel count, zero batch: all rejected up front
    // with a shape error naming the served head output — none may reach the
    // coalescing queue where they could poison other connections' batches.
    for bad in [
        Tensor::ones(&[4, 4]),
        Tensor::ones(&[2, 5, 8, 8]),
        Tensor::ones(&[1, 5, 9, 9]),
    ] {
        let err = remote.server_outputs(&bad).unwrap_err();
        assert!(
            err.to_string().contains("head output"),
            "expected an up-front shape rejection, got {err}"
        );
    }
    // The engine never saw any of it.
    assert_eq!(server.engine_stats().requests_served, 0);

    let images = random_images(1, 24);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}

#[test]
fn idle_connections_are_closed_after_the_read_timeout() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 25).unwrap());
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    // The server hung up on the idle connection; the next exchange fails.
    let features = pipeline.client_features(&random_images(1, 26)).unwrap();
    assert!(remote.server_outputs(&features).is_err());
}

#[test]
fn a_wildcard_bind_still_drops_cleanly() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 27).unwrap());
    let server =
        DefenseServer::bind(Arc::clone(&pipeline), "0.0.0.0:0", ServerConfig::default()).unwrap();
    assert!(server.local_addr().ip().is_unspecified());
    drop(server); // must not hang waiting for the accept loop
}

#[test]
fn dropping_the_server_stops_new_connections() {
    let (server, pipeline) = demo_server(2, 1, 19);
    let addr = server.local_addr();
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), addr).unwrap();
    let images = random_images(1, 20);
    let expected = pipeline.predict(&images).unwrap();
    drop(server);

    // No new connections...
    assert!(RemoteDefense::connect(Arc::clone(&pipeline), addr).is_err());
    // ...but the established connection drains gracefully.
    assert_eq!(remote.predict(&images).unwrap(), expected);
}
