//! End-to-end tests over a real loopback TCP socket: a [`DefenseServer`] in
//! one set of threads, [`RemoteDefense`] clients (or raw protocol frames) on
//! the other side, and bit-identical results as the acceptance bar.

use ensembler::{
    Defense, EngineConfig, EnsemblerError, InferenceEngine, Precision, QuantizedDefense,
};
use ensembler_serve::protocol::{
    crc32, encode_message, read_message, write_message, ErrorCode, Hello, Message,
    DEFAULT_MAX_PAYLOAD_BYTES, FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES, PROTOCOL_VERSION,
};
use ensembler_serve::{
    demo_pipeline, AdmissionConfig, DefenseServer, ModelRegistry, RemoteDefense, ServeError,
    ServerConfig,
};
use ensembler_tensor::{QTensorBatch, Rng, Tensor};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};

/// Binds a demo server on an ephemeral loopback port and returns it with the
/// shared pipeline (the test's stand-in for both sides holding the same
/// checkpoint).
fn demo_server(n: usize, p: usize, seed: u64) -> (DefenseServer, Arc<dyn Defense>) {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed).unwrap());
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, pipeline)
}

fn random_images(batch: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[batch, 3, 16, 16], |_| rng.uniform(-1.0, 1.0))
}

/// Binds a demo server over the int8-quantized demo pipeline.
fn demo_server_int8(n: usize, p: usize, seed: u64) -> (DefenseServer, Arc<dyn Defense>) {
    let pipeline: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(Arc::new(
        demo_pipeline(n, p, seed).unwrap(),
    )));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, pipeline)
}

#[test]
fn remote_predict_is_bit_identical_to_in_process() {
    let (server, pipeline) = demo_server(3, 2, 21);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    assert_eq!(remote.negotiated_version(), PROTOCOL_VERSION);
    assert_eq!(remote.peer_label(), "Ensembler");
    // An f32 replica never uses quantized frames, whatever the version.
    assert!(!remote.uses_quantized_frames());

    // Batched request: travels the direct server path.
    let batch = random_images(4, 1);
    assert_eq!(
        remote.predict(&batch).unwrap(),
        pipeline.predict(&batch).unwrap()
    );

    // Single-image request: travels the server's coalescing engine path.
    let single = random_images(1, 2);
    assert_eq!(
        remote.predict(&single).unwrap(),
        pipeline.predict(&single).unwrap()
    );

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.requests_served, 2);
    assert_eq!(stats.errors_sent, 0);
}

#[test]
fn staged_remote_calls_match_the_composed_predict() {
    // The Defense contract survives the network: running the three stages by
    // hand (with server_outputs remote) equals the composed predict.
    let (server, pipeline) = demo_server(2, 1, 33);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    let images = random_images(2, 3);

    let transmitted = remote.client_features(&images).unwrap();
    let maps = remote.server_outputs(&transmitted).unwrap();
    assert_eq!(maps.len(), pipeline.ensemble_size());
    let staged = remote.classify(&maps).unwrap();
    assert_eq!(staged, pipeline.predict(&images).unwrap());
}

#[test]
fn concurrent_remote_clients_coalesce_across_connections() {
    let (server, pipeline) = demo_server(2, 1, 5);
    let expected: Vec<Tensor> = (0..6)
        .map(|k| pipeline.predict(&random_images(1, 100 + k)).unwrap())
        .collect();

    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|k| {
                let pipeline = Arc::clone(&pipeline);
                let addr = server.local_addr();
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(pipeline, addr).unwrap();
                    remote.predict(&random_images(1, 100 + k)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(answers, expected);
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 6);
    assert_eq!(stats.requests_served, 6);
    // All six single-image requests went through the shared engine queue.
    assert_eq!(server.engine_stats().requests_served, 6);
}

#[test]
fn a_remote_defense_can_sit_behind_a_local_inference_engine() {
    // Full composition: local engine -> RemoteDefense -> socket -> server
    // engine -> pipeline. Existing serving code runs unchanged on a remote.
    let (server, pipeline) = demo_server(2, 1, 8);
    let remote: Arc<dyn Defense> =
        Arc::new(RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap());
    let engine = InferenceEngine::new(remote, EngineConfig::default()).unwrap();

    let image = random_images(1, 9);
    let expected = pipeline.predict(&image).unwrap();
    let logits = engine.predict_one(image.batch_item(0)).unwrap();
    assert_eq!(logits.data(), expected.data());
}

#[test]
fn quantized_remote_predict_is_bit_identical_to_in_process_int8() {
    let (server, int8) = demo_server_int8(3, 2, 41);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    // Quantized frames need v2+; a v3 build negotiates the full version.
    assert_eq!(remote.negotiated_version(), PROTOCOL_VERSION);
    assert_eq!(remote.peer_label(), "Ensembler+int8");
    assert_eq!(remote.precision(), Precision::Int8);
    assert!(remote.uses_quantized_frames());

    // Batched request (direct server path) and single-image request (the
    // engine's quantized coalescing path): both bit-identical to in-process.
    for (batch, seed) in [(4usize, 51u64), (1, 52)] {
        let images = random_images(batch, seed);
        assert_eq!(
            remote.predict(&images).unwrap(),
            int8.predict(&images).unwrap(),
            "batch {batch}"
        );
    }
    assert_eq!(server.stats().requests_served, 2);
    assert_eq!(server.stats().errors_sent, 0);
}

#[test]
fn concurrent_quantized_clients_coalesce_across_connections() {
    let (server, int8) = demo_server_int8(2, 1, 43);
    let expected: Vec<Tensor> = (0..5)
        .map(|k| int8.predict(&random_images(1, 200 + k)).unwrap())
        .collect();

    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..5)
            .map(|k| {
                let int8 = Arc::clone(&int8);
                let addr = server.local_addr();
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(int8, addr).unwrap();
                    remote.predict(&random_images(1, 200 + k)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(answers, expected);
    // All five quantized single-image requests coalesced through the engine.
    assert_eq!(server.engine_stats().requests_served, 5);
}

#[test]
fn a_version_1_client_negotiates_down_to_f32_frames() {
    // A v2 server with an f32 pipeline serves a legacy (max_version = 1)
    // client over f32 frames, bit-identically.
    let (server, pipeline) = demo_server(2, 1, 45);
    let remote =
        RemoteDefense::connect_with_max_version(Arc::clone(&pipeline), server.local_addr(), 1)
            .unwrap();
    assert_eq!(remote.negotiated_version(), 1);
    assert!(!remote.uses_quantized_frames());
    let images = random_images(2, 46);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );

    // An int8 replica capped at v1 also works — the quantize→dequantize
    // round trips are part of the pipeline's own semantics, so shipping the
    // split tensors in f32 frames preserves bit-exactness.
    let (server, int8) = demo_server_int8(2, 1, 47);
    let remote =
        RemoteDefense::connect_with_max_version(Arc::clone(&int8), server.local_addr(), 1).unwrap();
    assert_eq!(remote.negotiated_version(), 1);
    assert!(!remote.uses_quantized_frames());
    let images = random_images(2, 48);
    assert_eq!(
        remote.predict(&images).unwrap(),
        int8.predict(&images).unwrap()
    );

    // Offering an unsupported version is rejected client-side.
    assert!(matches!(
        RemoteDefense::connect_with_max_version(int8, server.local_addr(), 0),
        Err(ServeError::UnsupportedVersion { .. })
    ));
}

#[test]
fn f32_client_against_int8_server_fails_the_handshake() {
    // Same architecture, different precision: the label check must refuse to
    // pair them, otherwise predictions silently diverge from both pipelines.
    let (server, _int8) = demo_server_int8(3, 2, 49);
    let f32_replica: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 49).unwrap());
    let err = RemoteDefense::connect(f32_replica, server.local_addr()).unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn truncated_and_garbage_quantized_requests_get_error_frames() {
    use std::io::Write;

    let (server, int8) = demo_server_int8(2, 1, 53);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello::legacy(2))).unwrap();
    let Message::HelloAck(ack) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap()
    else {
        panic!("handshake failed");
    };
    assert_eq!(ack.version, 2);

    // A quantized request whose scale field is garbage (NaN): the frame
    // itself is well-formed (CRC re-stamped), so the decode layer must
    // reject the payload and report a malformed frame.
    let features = int8
        .client_features(&random_images(1, 54))
        .map(|t| QTensorBatch::quantize_batch(&t))
        .unwrap();
    let mut frame = encode_message(&Message::ServerOutputsRequestQ {
        transmitted: features,
    });
    let scale_offset = FRAME_HEADER_BYTES + 4 + 4 + 4 * 4; // magic+rank+dims
    frame[scale_offset..scale_offset + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
    let crc = crc32(&frame[..crc_offset]);
    frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::MalformedFrame);
            assert!(wire.message.contains("finite"), "{}", wire.message);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // A truncated quantized request (payload cut mid-data, framing fixed up)
    // is likewise rejected; the server then still serves honest clients.
    drop(stream);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    let images = random_images(1, 55);
    assert_eq!(
        remote.predict(&images).unwrap(),
        int8.predict(&images).unwrap()
    );
}

#[test]
fn quantized_shape_mismatches_are_rejected_before_the_queue() {
    let (server, int8) = demo_server_int8(2, 1, 57);
    let remote = RemoteDefense::connect(Arc::clone(&int8), server.local_addr()).unwrap();
    for bad in [
        Tensor::ones(&[4, 4]),
        Tensor::ones(&[2, 5, 8, 8]),
        Tensor::ones(&[1, 5, 9, 9]),
    ] {
        let err = remote.server_outputs(&bad).unwrap_err();
        assert!(
            err.to_string().contains("head output"),
            "expected an up-front shape rejection, got {err}"
        );
    }
    assert_eq!(server.engine_stats().requests_served, 0);
}

#[test]
fn mismatched_replica_is_rejected_at_connect_time() {
    let (server, _pipeline) = demo_server(3, 2, 11);
    // Same architecture, different selection count: the handshake must fail.
    let wrong: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 1, 11).unwrap());
    let err = RemoteDefense::connect(wrong, server.local_addr()).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn unsupported_client_version_gets_a_version_error() {
    let (server, _pipeline) = demo_server(2, 1, 12);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello::legacy(0))).unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::UnsupportedVersion);
            assert!(wire.message.contains("v0"), "{}", wire.message);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_are_answered_with_a_malformed_frame_error() {
    use std::io::Write;

    let (server, pipeline) = demo_server(2, 1, 13);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello::legacy(1))).unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    stream.write_all(&[0xAB; 32]).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => assert_eq!(wire.code, ErrorCode::MalformedFrame),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The malformed frame closed that connection, but the server is fine.
    drop(stream);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    let images = random_images(1, 14);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}

#[test]
fn corrupted_checksums_are_detected_and_reported() {
    use std::io::Write;

    let (server, pipeline) = demo_server(2, 1, 15);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(&mut stream, &Message::Hello(Hello::legacy(1))).unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    let transmitted = pipeline.client_features(&random_images(1, 16)).unwrap();
    let mut frame = encode_message(&Message::ServerOutputsRequest { transmitted });
    let flip = frame.len() - FRAME_TRAILER_BYTES - 1;
    frame[flip] ^= 0x01;
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => assert_eq!(wire.code, ErrorCode::ChecksumMismatch),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // Consistency: a frame with a correctly re-stamped checksum would have
    // been accepted — prove the test corrupted the payload, not the frame.
    let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
    let fixed = crc32(&frame[..crc_offset]);
    assert_ne!(&frame[crc_offset..], fixed.to_be_bytes().as_slice());
}

#[test]
fn inference_errors_keep_the_connection_alive() {
    let (server, pipeline) = demo_server(2, 1, 17);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    // Wrong feature shape: the pipeline rejects (or panics inside) the
    // evaluation; the server must answer with an inference error...
    let bad = Tensor::ones(&[1, 5, 9, 9]);
    let err = remote.server_outputs(&bad).unwrap_err();
    assert!(matches!(err, EnsemblerError::Transport(_)), "{err:?}");

    // ...and still serve the next, valid request on the same connection.
    let images = random_images(1, 18);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
    assert_eq!(server.stats().errors_sent, 1);
}

#[test]
fn malformed_shapes_are_rejected_before_reaching_the_batch_queue() {
    let (server, pipeline) = demo_server(2, 1, 23);
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    // Wrong rank, wrong channel count, zero batch: all rejected up front
    // with a shape error naming the served head output — none may reach the
    // coalescing queue where they could poison other connections' batches.
    for bad in [
        Tensor::ones(&[4, 4]),
        Tensor::ones(&[2, 5, 8, 8]),
        Tensor::ones(&[1, 5, 9, 9]),
    ] {
        let err = remote.server_outputs(&bad).unwrap_err();
        assert!(
            err.to_string().contains("head output"),
            "expected an up-front shape rejection, got {err}"
        );
    }
    // The engine never saw any of it.
    assert_eq!(server.engine_stats().requests_served, 0);

    let images = random_images(1, 24);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}

#[test]
fn a_raw_bad_shape_frame_gets_a_typed_error_not_a_dropped_connection() {
    use std::io::Write;

    // Regression for the panic-proofed forward path: a hand-rolled client
    // (no RemoteDefense shape validation) ships a malformed-shape request
    // over the wire. The layers no longer panic on bad shapes — the typed
    // ShapeError must come back as an Inference error *frame* naming the
    // shape, with the TCP connection intact and serving afterwards.
    let (server, pipeline) = demo_server(2, 1, 29);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(
        &mut stream,
        &Message::Hello(Hello::legacy(PROTOCOL_VERSION)),
    )
    .unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    // Wrong channel count for the served head output: would have been a
    // panic inside the conv forward before the typed shape checks.
    let frame = encode_message(&Message::ServerOutputsRequest {
        transmitted: Tensor::ones(&[1, 5, 9, 9]),
    });
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::Inference);
            assert!(
                wire.message.contains("[1, 5, 9, 9]"),
                "the typed error must name the offending shape: {}",
                wire.message
            );
        }
        other => panic!("expected a typed error frame, got {other:?}"),
    }

    // The SAME connection still serves a well-formed request bit-exactly.
    let transmitted = pipeline.client_features(&random_images(1, 30)).unwrap();
    let expected = pipeline.server_outputs(&transmitted).unwrap();
    let frame = encode_message(&Message::ServerOutputsRequest { transmitted });
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::ServerOutputsResponse { maps } => assert_eq!(maps, expected),
        other => panic!("expected a response on the surviving connection, got {other:?}"),
    }
    assert_eq!(server.stats().errors_sent, 1);
    assert_eq!(server.stats().requests_served, 1);
}

#[test]
fn idle_connections_are_closed_after_the_read_timeout() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 25).unwrap());
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Some(std::time::Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    // The server hung up on the idle connection; the next exchange fails.
    let features = pipeline.client_features(&random_images(1, 26)).unwrap();
    assert!(remote.server_outputs(&features).is_err());
}

#[test]
fn a_wildcard_bind_still_drops_cleanly() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 27).unwrap());
    let server =
        DefenseServer::bind(Arc::clone(&pipeline), "0.0.0.0:0", ServerConfig::default()).unwrap();
    assert!(server.local_addr().ip().is_unspecified());
    drop(server); // must not hang waiting for the accept loop
}

#[test]
fn dropping_the_server_stops_new_connections() {
    let (server, pipeline) = demo_server(2, 1, 19);
    let addr = server.local_addr();
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), addr).unwrap();
    let images = random_images(1, 20);
    let expected = pipeline.predict(&images).unwrap();
    drop(server);

    // No new connections...
    assert!(RemoteDefense::connect(Arc::clone(&pipeline), addr).is_err());
    // ...but the established connection drains gracefully.
    assert_eq!(remote.predict(&images).unwrap(), expected);
}

// ---------------------------------------------------------------------------
// Multi-model serving, admission control and graceful shutdown (protocol v3)
// ---------------------------------------------------------------------------

/// A test-only defense whose `server_outputs` blocks on a gate until the
/// test releases it: the deterministic way to hold a request "in flight" on
/// the server while the test probes admission control, shutdown draining and
/// out-of-order multiplexed completion.
#[derive(Debug)]
struct GatedDefense {
    inner: Arc<dyn Defense>,
    gate: Arc<(Mutex<GateState>, Condvar)>,
    /// Only `server_outputs` calls with at least this many samples block on
    /// the gate; smaller batches pass straight through. `0` gates everything.
    gate_min_batch: usize,
}

#[derive(Debug, Default)]
struct GateState {
    entered: u64,
    released: bool,
}

impl GatedDefense {
    fn new(inner: Arc<dyn Defense>) -> (Arc<Self>, Arc<(Mutex<GateState>, Condvar)>) {
        Self::gating_batches_of_at_least(inner, 0)
    }

    /// Gates only calls whose batch has at least `min_batch` samples — the
    /// deterministic "slow request" for pipelining tests, with smaller
    /// requests staying fast.
    fn gating_batches_of_at_least(
        inner: Arc<dyn Defense>,
        min_batch: usize,
    ) -> (Arc<Self>, Arc<(Mutex<GateState>, Condvar)>) {
        let gate = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
        let defense = Arc::new(Self {
            inner,
            gate: Arc::clone(&gate),
            gate_min_batch: min_batch,
        });
        (defense, gate)
    }
}

/// Blocks until `entered >= n` server_outputs calls are inside the gate.
fn wait_entered(gate: &(Mutex<GateState>, Condvar), n: u64) {
    let (lock, condvar) = gate;
    let mut state = lock.lock().unwrap();
    while state.entered < n {
        state = condvar.wait(state).unwrap();
    }
}

/// Opens the gate for every blocked and future call.
fn release(gate: &(Mutex<GateState>, Condvar)) {
    let (lock, condvar) = gate;
    lock.lock().unwrap().released = true;
    condvar.notify_all();
}

impl Defense for GatedDefense {
    fn config(&self) -> &ensembler_nn::models::ResNetConfig {
        self.inner.config()
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn server_bodies(&self) -> &[ensembler_nn::Sequential] {
        self.inner.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.inner.selected_count()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.inner.client_features(images)
    }

    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        if transmitted.shape()[0] < self.gate_min_batch {
            return self.inner.server_outputs(transmitted);
        }
        let (lock, condvar) = &*self.gate;
        let mut state = lock.lock().unwrap();
        state.entered += 1;
        condvar.notify_all();
        while !state.released {
            state = condvar.wait(state).unwrap();
        }
        drop(state);
        self.inner.server_outputs(transmitted)
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.inner.classify(server_maps)
    }
}

#[test]
fn two_models_are_served_bit_identically_from_one_process() {
    // One process, two models at different precisions: protocol-v3 clients
    // pick theirs by name and every prediction is bit-identical to the
    // matching in-process pipeline.
    let alpha: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 61).unwrap());
    let beta: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(Arc::new(
        demo_pipeline(2, 1, 62).unwrap(),
    )));
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("alpha", Arc::clone(&alpha), config.engine)
        .unwrap()
        .with_model("beta", Arc::clone(&beta), config.engine)
        .unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();

    let remote_alpha =
        RemoteDefense::connect_model(Arc::clone(&alpha), server.local_addr(), "alpha").unwrap();
    assert_eq!(remote_alpha.negotiated_version(), PROTOCOL_VERSION);
    assert_eq!(remote_alpha.model(), Some("alpha"));
    assert!(!remote_alpha.uses_quantized_frames());

    let remote_beta =
        RemoteDefense::connect_model(Arc::clone(&beta), server.local_addr(), "beta").unwrap();
    assert_eq!(remote_beta.model(), Some("beta"));
    assert_eq!(remote_beta.peer_label(), "Ensembler+int8");
    // A v3 connection to an int8 model ships quantized frames.
    assert!(remote_beta.uses_quantized_frames());

    for seed in [301u64, 302] {
        let images = random_images(2, seed);
        assert_eq!(
            remote_alpha.predict(&images).unwrap(),
            alpha.predict(&images).unwrap(),
            "alpha seed {seed}"
        );
        assert_eq!(
            remote_beta.predict(&images).unwrap(),
            beta.predict(&images).unwrap(),
            "beta seed {seed}"
        );
    }

    // A nameless legacy connect gets the default model ("alpha").
    let legacy = RemoteDefense::connect(Arc::clone(&alpha), server.local_addr()).unwrap();
    assert_eq!(legacy.model(), None);
    let images = random_images(1, 303);
    assert_eq!(
        legacy.predict(&images).unwrap(),
        alpha.predict(&images).unwrap()
    );

    // Per-model engines: the single-image request coalesced through alpha's
    // engine; beta's engine saw nothing (batched requests run direct).
    let stats = server.stats();
    assert_eq!(stats.requests_served, 5);
    assert_eq!(stats.requests_rejected, 0);
    assert_eq!(stats.per_model.len(), 2);
    assert_eq!(stats.per_model[0].model, "alpha");
    assert_eq!(stats.per_model[1].model, "beta");
    assert_eq!(stats.per_model[0].engine.requests_served, 1);
    assert_eq!(stats.per_model[1].engine.requests_served, 0);
}

#[test]
fn unknown_model_requests_get_a_typed_error() {
    let (server, pipeline) = demo_server(2, 1, 63);
    let err = RemoteDefense::connect_model(Arc::clone(&pipeline), server.local_addr(), "nope")
        .unwrap_err();
    match err {
        ServeError::Remote(wire) => {
            assert_eq!(wire.code, ErrorCode::UnknownModel);
            assert!(wire.message.contains("default"), "{}", wire.message);
        }
        other => panic!("expected a typed UnknownModel error, got {other}"),
    }
    // The server is unharmed and still serves known models.
    let remote =
        RemoteDefense::connect_model(Arc::clone(&pipeline), server.local_addr(), "default")
            .unwrap();
    assert_eq!(remote.model(), Some("default"));
    let images = random_images(1, 64);
    assert_eq!(
        remote.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}

#[test]
fn version_1_and_2_clients_work_unchanged_against_a_v3_server() {
    // The v3 server serves legacy clients at their version: v1 over plain
    // f32 frames, v2 (int8 replica) over quantized frames — bit-identically.
    let (server, pipeline) = demo_server(2, 1, 65);
    let v1 = RemoteDefense::connect_with_max_version(Arc::clone(&pipeline), server.local_addr(), 1)
        .unwrap();
    assert_eq!(v1.negotiated_version(), 1);
    let images = random_images(2, 66);
    assert_eq!(
        v1.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );

    let (server, int8) = demo_server_int8(2, 1, 67);
    let v2 =
        RemoteDefense::connect_with_max_version(Arc::clone(&int8), server.local_addr(), 2).unwrap();
    assert_eq!(v2.negotiated_version(), 2);
    assert!(v2.uses_quantized_frames());
    let images = random_images(2, 68);
    assert_eq!(v2.predict(&images).unwrap(), int8.predict(&images).unwrap());

    // A pre-v3 cap cannot name a model — rejected locally, before any I/O.
    let err = RemoteDefense::connect_with_max_version(int8, server.local_addr(), 0).unwrap_err();
    assert!(
        matches!(err, ServeError::UnsupportedVersion { .. }),
        "{err}"
    );
}

#[test]
fn every_legacy_version_cap_negotiates_down_against_a_v5_server() {
    // v1 through v4 clients against today's v5 server: each lands exactly on
    // its cap (lockstep, no request ids on the wire — the frames themselves
    // are pinned byte-exactly by the wire_examples suite) and predicts
    // bit-identically to in-process.
    let (server, pipeline) = demo_server(2, 1, 201);
    for cap in 1..=4u16 {
        let remote = RemoteDefense::connect_with_max_version(
            Arc::clone(&pipeline),
            server.local_addr(),
            cap,
        )
        .unwrap();
        assert_eq!(remote.negotiated_version(), cap, "cap {cap}");
        let images = random_images(2, 202 + u64::from(cap));
        assert_eq!(
            remote.predict(&images).unwrap(),
            pipeline.predict(&images).unwrap(),
            "cap {cap}"
        );
    }
    // And the int8 replica downgrades the same way over quantized frames.
    let (server, int8) = demo_server_int8(2, 1, 203);
    let v2 =
        RemoteDefense::connect_with_max_version(Arc::clone(&int8), server.local_addr(), 2).unwrap();
    assert_eq!(v2.negotiated_version(), 2);
    assert!(v2.uses_quantized_frames());
    let images = random_images(1, 204);
    assert_eq!(v2.predict(&images).unwrap(), int8.predict(&images).unwrap());
}

#[test]
fn pipelined_requests_on_one_connection_complete_out_of_order() {
    // The tentpole invariant: one multiplexed v5 connection, a slow request
    // and a fast request in flight simultaneously, the fast response arriving
    // while the slow request is still blocked on the server — and both
    // answers bit-identical to in-process.
    let inner: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 211).unwrap());
    // Only batch >= 2 calls block on the gate: the slow request is a 2-sample
    // batch, the fast request a single sample.
    let (gated, gate) = GatedDefense::gating_batches_of_at_least(Arc::clone(&inner), 2);
    let server = DefenseServer::bind(gated, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let remote = Arc::new(RemoteDefense::connect(Arc::clone(&inner), server.local_addr()).unwrap());
    assert_eq!(remote.negotiated_version(), PROTOCOL_VERSION);

    let slow_features = inner.client_features(&random_images(2, 212)).unwrap();
    let fast_features = inner.client_features(&random_images(1, 213)).unwrap();
    let expected_slow = inner.server_outputs(&slow_features).unwrap();
    let expected_fast = inner.server_outputs(&fast_features).unwrap();

    // Issue the slow request and wait until it is provably in flight on the
    // server (inside the gate).
    let slow_remote = Arc::clone(&remote);
    let slow = std::thread::spawn(move || slow_remote.server_outputs(&slow_features).unwrap());
    wait_entered(&gate, 1);

    // The fast request goes down the SAME connection and completes while the
    // slow one is still held: out-of-order completion, two requests in
    // flight on one socket.
    let fast_maps = remote.server_outputs(&fast_features).unwrap();
    assert_eq!(fast_maps, expected_fast);
    assert!(
        !slow.is_finished(),
        "the slow request must still be in flight when the fast response lands"
    );

    release(&gate);
    assert_eq!(slow.join().unwrap(), expected_slow);

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 1, "one multiplexed connection");
    assert_eq!(stats.requests_served, 2);
    assert_eq!(stats.errors_sent, 0);
}

#[test]
fn an_overloaded_rejection_fails_only_its_own_request() {
    // Regression: RemoteDefense used to treat any Error frame as fatal to
    // the connection. On a multiplexed connection a typed Overloaded
    // rejection is per-request — the other in-flight request must complete
    // untouched and the connection must stay usable afterwards.
    let inner: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 221).unwrap());
    let (gated, gate) = GatedDefense::gating_batches_of_at_least(Arc::clone(&inner), 2);
    let server = DefenseServer::bind(
        gated,
        "127.0.0.1:0",
        ServerConfig {
            admission: AdmissionConfig {
                max_connection_inflight_requests: 1,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let remote = Arc::new(RemoteDefense::connect(Arc::clone(&inner), server.local_addr()).unwrap());

    let slow_features = inner.client_features(&random_images(2, 222)).unwrap();
    let fast_features = inner.client_features(&random_images(1, 223)).unwrap();
    let expected_slow = inner.server_outputs(&slow_features).unwrap();

    // The slow request occupies the connection's whole in-flight budget.
    let slow_remote = Arc::clone(&remote);
    let slow_input = slow_features.clone();
    let slow = std::thread::spawn(move || slow_remote.server_outputs(&slow_input).unwrap());
    wait_entered(&gate, 1);

    // A second request on the same connection is shed with a typed
    // per-request Overloaded frame (via the inherent range call, which keeps
    // the typed ServeError instead of collapsing it to a transport string)...
    match remote
        .server_outputs_range(&fast_features, 0, inner.ensemble_size())
        .unwrap_err()
    {
        ServeError::Remote(wire) => {
            assert_eq!(wire.code, ErrorCode::Overloaded);
            assert!(wire.message.contains("per-connection"), "{}", wire.message);
        }
        other => panic!("expected a typed Overloaded rejection, got {other}"),
    }
    // ...while the slow request it shared the socket with is unharmed.
    assert!(
        !slow.is_finished(),
        "the rejection must not disturb the other in-flight request"
    );
    release(&gate);
    assert_eq!(slow.join().unwrap(), expected_slow);

    // The connection survived the rejection: the same request now succeeds
    // bit-identically (with a bounded retry while the permit drains).
    let mut attempts = 0;
    let maps = loop {
        match remote.server_outputs_range(&fast_features, 0, inner.ensemble_size()) {
            Ok(maps) => break maps,
            Err(ServeError::Remote(wire))
                if wire.code == ErrorCode::Overloaded && attempts < 100 =>
            {
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(err) => panic!("unexpected error while retrying: {err}"),
        }
    };
    assert_eq!(maps, inner.server_outputs(&fast_features).unwrap());

    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.requests_served, 2);
    assert!(stats.requests_rejected >= 1);
    assert_eq!(stats.requests_rejected, stats.errors_sent);
}

#[test]
fn over_budget_requests_get_typed_overloaded_rejections() {
    use std::io::Write;

    // Budget: two single-sample requests' worth of bytes per connection, so
    // a batch of 4 must be rejected while singles sail through.
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 71).unwrap());
    let head = pipeline.config().head_output_shape();
    let sample_bytes = 4 * head.iter().product::<usize>() as u64;
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig {
            admission: AdmissionConfig {
                max_connection_inflight_bytes: 2 * sample_bytes,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_message(
        &mut stream,
        &Message::Hello(Hello::legacy(PROTOCOL_VERSION)),
    )
    .unwrap();
    let Message::HelloAck(_) = read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() else {
        panic!("handshake failed");
    };

    // Over budget: a 4-sample batch (4 x sample_bytes > 2 x sample_bytes).
    let big = pipeline.client_features(&random_images(4, 72)).unwrap();
    let frame = encode_message(&Message::ServerOutputsRequest { transmitted: big });
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::Overloaded);
            assert!(wire.message.contains("per-connection"), "{}", wire.message);
        }
        other => panic!("expected a typed Overloaded error, got {other:?}"),
    }

    // The same connection stays open and an in-budget request on it returns
    // the bit-identical answer.
    let transmitted = pipeline.client_features(&random_images(1, 73)).unwrap();
    let expected = pipeline.server_outputs(&transmitted).unwrap();
    let frame = encode_message(&Message::ServerOutputsRequest { transmitted });
    stream.write_all(&frame).unwrap();
    stream.flush().unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::ServerOutputsResponse { maps } => assert_eq!(maps, expected),
        other => panic!("expected a response, got {other:?}"),
    }

    // Bounded settle loop for scheduler noise before asserting the drain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().inflight_requests > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.requests_rejected, 1);
    assert_eq!(stats.requests_served, 1);
    assert_eq!(stats.errors_sent, 1);
    assert_eq!(stats.inflight_requests, 0);
    assert_eq!(stats.inflight_bytes, 0);
}

#[test]
fn a_saturated_server_rejects_new_work_instead_of_queueing_it() {
    // Server-wide budget of one in-flight request, occupied by a gated
    // request from connection A: connection B must get a typed rejection
    // (never a hang), and A's answer must still be bit-identical once the
    // gate opens.
    let inner: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 75).unwrap());
    let (gated, gate) = GatedDefense::new(Arc::clone(&inner));
    let server = DefenseServer::bind(
        gated,
        "127.0.0.1:0",
        ServerConfig {
            admission: AdmissionConfig {
                max_inflight_requests: 1,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let images = random_images(2, 76);
    let expected = inner.predict(&images).unwrap();
    let remote_a = RemoteDefense::connect(Arc::clone(&inner), server.local_addr()).unwrap();
    let blocked = std::thread::spawn(move || remote_a.predict(&images).unwrap());
    wait_entered(&gate, 1);

    // The budget is saturated: B's request is rejected, typed, immediately.
    let remote_b = RemoteDefense::connect(Arc::clone(&inner), server.local_addr()).unwrap();
    let features = inner.client_features(&random_images(1, 77)).unwrap();
    let err = remote_b.server_outputs(&features).unwrap_err();
    assert!(
        err.to_string().contains("Overloaded") || err.to_string().contains("budget"),
        "expected an admission rejection, got {err}"
    );
    assert_eq!(server.stats().requests_rejected, 1);
    assert_eq!(server.stats().inflight_requests, 1);

    // Release the gate: A's long-held request completes bit-identically and
    // the budget frees up for B (with a brief, bounded retry for scheduler
    // noise — retrying is the client contract for Overloaded rejections
    // anyway).
    release(&gate);
    assert_eq!(blocked.join().unwrap(), expected);
    let mut attempts = 0;
    let maps = loop {
        match remote_b.server_outputs(&features) {
            Ok(maps) => break maps,
            Err(err) if err.to_string().contains("budget") && attempts < 100 => {
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(err) => panic!("unexpected error while retrying: {err}"),
        }
    };
    assert_eq!(maps, inner.server_outputs(&features).unwrap());
    // Bounded settle loop for scheduler noise before asserting the drain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().inflight_requests > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.inflight_requests, 0);
    assert_eq!(stats.inflight_bytes, 0);
    assert_eq!(stats.requests_served, 2);
}

#[test]
fn graceful_shutdown_drains_in_flight_batches() {
    let inner: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 81).unwrap());
    let (gated, gate) = GatedDefense::new(Arc::clone(&inner));
    let server = DefenseServer::bind(gated, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A client's request is mid-flight (blocked on the gate) when shutdown
    // begins.
    let images = random_images(2, 82);
    let expected = inner.predict(&images).unwrap();
    let remote = RemoteDefense::connect(Arc::clone(&inner), addr).unwrap();
    let in_flight = std::thread::spawn(move || remote.predict(&images).unwrap());
    wait_entered(&gate, 1);

    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let shutdown = std::thread::spawn(move || {
        let stats = server.shutdown();
        done_flag.store(true, std::sync::atomic::Ordering::SeqCst);
        stats
    });

    // Shutdown must wait for the in-flight batch, not abandon it.
    std::thread::sleep(std::time::Duration::from_millis(200));
    assert!(
        !done.load(std::sync::atomic::Ordering::SeqCst),
        "shutdown returned while a request was still in flight"
    );

    release(&gate);
    // The drained request delivers its complete, bit-identical response...
    assert_eq!(in_flight.join().unwrap(), expected);
    // ...and shutdown then completes with the final counters.
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.requests_served, 1);
    assert_eq!(stats.inflight_requests, 0);
    // The listener is gone: no new connections.
    assert!(RemoteDefense::connect(Arc::clone(&inner), addr).is_err());
}

#[test]
fn shutdown_during_an_in_flight_handshake_yields_a_typed_error() {
    use std::io::Write;

    let (server, _pipeline) = demo_server(2, 1, 95);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Put the handshake in flight: send only half the hello frame, so the
    // server's reader has consumed every byte we sent and is blocked waiting
    // for the rest (an empty receive queue also guarantees the eventual
    // close is a FIN, not a reset).
    let hello = encode_message(&Message::Hello(Hello::legacy(PROTOCOL_VERSION)));
    stream.write_all(&hello[..hello.len() / 2]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Shut down while the hello is half-read. The cut-short handshake must
    // surface to the client as a *typed* retry-elsewhere error frame — not a
    // raw EOF or connection reset.
    let shutdown = std::thread::spawn(move || server.shutdown());
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::Overloaded);
            assert!(wire.message.contains("draining"), "{}", wire.message);
        }
        other => panic!("expected a typed draining error, got {other:?}"),
    }
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.requests_served, 0);
    assert_eq!(stats.errors_sent, 1);
}

#[test]
fn connections_over_the_limit_are_rejected_with_a_typed_error() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 91).unwrap());
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig {
            admission: AdmissionConfig {
                max_connections: 1,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // The first connection occupies the only slot...
    let first = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    // ...so the second is refused with a typed Overloaded frame before it
    // ever gets a reader thread.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES).unwrap() {
        Message::Error(wire) => {
            assert_eq!(wire.code, ErrorCode::Overloaded);
            assert!(
                wire.message.contains("connection limit"),
                "{}",
                wire.message
            );
        }
        other => panic!("expected a connection-limit rejection, got {other:?}"),
    }
    drop(stream);

    // The admitted connection is unaffected.
    let images = random_images(1, 92);
    assert_eq!(
        first.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );

    // Once the slot frees up, new connections are admitted again.
    drop(first);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let second = loop {
        match RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()) {
            Ok(remote) => break remote,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(err) => panic!("slot never freed: {err}"),
        }
    };
    let images = random_images(1, 93);
    assert_eq!(
        second.predict(&images).unwrap(),
        pipeline.predict(&images).unwrap()
    );
}
