//! Property coverage for the model-artifact lifecycle: save → encode →
//! decode → load must be bit-exact for f32 and int8 pipelines across random
//! `(n, p, seed)` builds, and an artifact loaded from disk must predict
//! bit-identically to the exported pipeline *through the full remote path* —
//! a registry-backed server loading the file, a client connecting over a
//! real socket.

use ensembler::artifact::{load_defense, save_pipeline};
use ensembler::{Defense, QuantizedDefense};
use ensembler_nn::{ArtifactPrecision, ModelArtifact};
use ensembler_serve::{
    demo_pipeline, DefenseServer, ModelRegistry, ModelSpec, RemoteDefense, ServerConfig,
};
use ensembler_tensor::{Rng, Tensor};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn random_images(batch: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[batch, 3, 16, 16], |_| rng.uniform(-1.0, 1.0))
}

/// A scratch file under the system temp dir, removed on drop.
struct TempArtifact(PathBuf);

impl TempArtifact {
    fn write(artifact: &ModelArtifact, tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "ensembler-roundtrip-{}-{tag}.bin",
            std::process::id()
        ));
        artifact.write_to_file(&path).unwrap();
        TempArtifact(path)
    }
}

impl Drop for TempArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Export → encode → decode → load is bit-exact for both precisions of
    /// the same random pipeline: the f32 load reproduces the pipeline's
    /// predictions exactly, and the int8 load reproduces the deterministic
    /// requantization of those same weights.
    #[test]
    fn save_load_roundtrip_is_bit_exact_for_both_precisions(
        n_extra in 0usize..3,
        p_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let n = 2 + n_extra;
        let p = 1 + (p_pick % n as u64) as usize;
        let pipeline = Arc::new(demo_pipeline(n, p, seed).unwrap());
        let images = random_images(2, seed ^ 0xA11CE);

        let artifact = save_pipeline(&pipeline, "prop", ArtifactPrecision::F32);
        let decoded = ModelArtifact::decode(&artifact.encode()).unwrap();
        prop_assert_eq!(decoded.encode(), artifact.encode());
        let loaded = load_defense(&decoded).unwrap();
        prop_assert_eq!(loaded.label(), pipeline.label());
        prop_assert_eq!(
            loaded.predict(&images).unwrap(),
            pipeline.predict(&images).unwrap()
        );

        let artifact = save_pipeline(&pipeline, "prop", ArtifactPrecision::Int8);
        let loaded = load_defense(&ModelArtifact::decode(&artifact.encode()).unwrap()).unwrap();
        let int8 = QuantizedDefense::quantize(Arc::clone(&pipeline) as Arc<dyn Defense>);
        prop_assert_eq!(loaded.label(), int8.label());
        prop_assert_eq!(
            loaded.predict(&images).unwrap(),
            int8.predict(&images).unwrap()
        );
    }
}

#[test]
fn artifacts_loaded_from_disk_serve_bit_identically_over_the_wire() {
    // The full lifecycle at both precisions: export the pipeline to a file,
    // stand up a server whose registry loads that file (exactly what
    // `serve_defense --model name=file.bin` does), and check the remote
    // predictions against the in-process pipeline the file came from.
    let pipeline = Arc::new(demo_pipeline(3, 2, 417).unwrap());
    let int8: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(
        Arc::clone(&pipeline) as Arc<dyn Defense>
    ));

    let f32_file = TempArtifact::write(
        &save_pipeline(&pipeline, "full", ArtifactPrecision::F32),
        "f32",
    );
    let int8_file = TempArtifact::write(
        &save_pipeline(&pipeline, "quant", ArtifactPrecision::Int8),
        "int8",
    );

    let config = ServerConfig::default();
    let full = ModelSpec::parse(&format!("full={}", f32_file.0.display())).unwrap();
    let quant = ModelSpec::parse(&format!("quant={}", int8_file.0.display())).unwrap();
    let registry = ModelRegistry::new("full", full.build().unwrap(), config.engine).unwrap();
    registry
        .register_version(
            "quant",
            quant.version(),
            quant.build().unwrap(),
            config.engine,
        )
        .unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();

    let remote_f32 = RemoteDefense::connect_model(
        Arc::clone(&pipeline) as Arc<dyn Defense>,
        server.local_addr(),
        "full",
    )
    .unwrap();
    let remote_int8 =
        RemoteDefense::connect_model(Arc::clone(&int8), server.local_addr(), "quant").unwrap();
    assert_eq!(remote_int8.peer_label(), "Ensembler+int8");

    for seed in [418u64, 419] {
        let images = random_images(2, seed);
        assert_eq!(
            remote_f32.predict(&images).unwrap(),
            pipeline.predict(&images).unwrap(),
            "f32 remote path, seed {seed}"
        );
        assert_eq!(
            remote_int8.predict(&images).unwrap(),
            int8.predict(&images).unwrap(),
            "int8 remote path, seed {seed}"
        );
    }
    assert_eq!(server.stats().errors_sent, 0);
}

#[test]
fn file_roundtrip_preserves_every_byte() {
    // write_to_file → read_from_file is the identity on the encoded bytes.
    let pipeline = demo_pipeline(2, 1, 23).unwrap();
    let artifact = save_pipeline(&pipeline, "bytes", ArtifactPrecision::Int8);
    let file = TempArtifact::write(&artifact, "bytes");
    let reread = ModelArtifact::read_from_file(&file.0).unwrap();
    assert_eq!(reread.encode(), artifact.encode());
}
