//! Conformance suite for the client-side result cache: a cache-enabled
//! [`RemoteDefense`] must be *bit-identical* to a cache-disabled one (and to
//! the in-process pipeline) across mixed duplicate/unique inputs, concurrent
//! sessions and both precisions. The cache is sound because dropout masks
//! are derived from seed + input fingerprint, so duplicate requests are
//! bit-identical by construction — this suite is the proof that the
//! memoized hit path preserves that guarantee, extending the defense
//! conformance suite across the cache boundary.

use ensembler::{Defense, Precision, QuantizedDefense};
use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServerConfig};
use ensembler_tensor::{Rng, Tensor};
use std::sync::Arc;

fn random_images(batch: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[batch, 3, 16, 16], |_| rng.uniform(-1.0, 1.0))
}

/// A mixed workload: unique inputs interleaved with exact duplicates.
fn mixed_inputs() -> Vec<Tensor> {
    let unique: Vec<Tensor> = (0..4).map(|i| random_images(1, 100 + i)).collect();
    vec![
        unique[0].clone(),
        unique[1].clone(),
        unique[0].clone(), // duplicate of 0
        unique[2].clone(),
        unique[1].clone(), // duplicate of 1
        unique[0].clone(), // duplicate of 0 again
        unique[3].clone(),
        unique[2].clone(), // duplicate of 2
    ]
}

fn loopback(pipeline: Arc<dyn Defense>) -> (DefenseServer, Arc<dyn Defense>) {
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, pipeline)
}

/// Runs the mixed duplicate/unique workload through a cached remote, an
/// uncached remote and the in-process pipeline, asserting all three agree
/// bit-for-bit on every request.
fn assert_cached_predicts_bit_identical(pipeline: Arc<dyn Defense>) {
    let (server, pipeline) = loopback(pipeline);
    let cached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())
        .unwrap()
        .with_result_cache(16);
    let uncached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    let inputs = mixed_inputs();
    for (i, image) in inputs.iter().enumerate() {
        let from_cached = cached.predict(image).unwrap();
        let from_uncached = uncached.predict(image).unwrap();
        let in_process = pipeline.predict(image).unwrap();
        assert_eq!(
            from_cached, from_uncached,
            "request {i}: cached remote diverged from uncached remote"
        );
        assert_eq!(
            from_cached, in_process,
            "request {i}: cached remote diverged from in-process pipeline"
        );
    }

    let stats = cached.cache_stats().expect("cache is enabled");
    assert_eq!(stats.misses, 4, "four unique inputs -> four misses");
    assert_eq!(stats.hits, 4, "four duplicates -> four hits");
    assert_eq!(stats.entries, 4);
    assert_eq!(stats.evictions, 0);
    assert!(
        uncached.cache_stats().is_none(),
        "a remote without the builder flag reports no cache"
    );
}

#[test]
fn cached_predict_is_bit_identical_f32() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(4, 2, 31).unwrap());
    assert_eq!(pipeline.precision(), Precision::F32);
    assert_cached_predicts_bit_identical(pipeline);
}

#[test]
fn cached_predict_is_bit_identical_int8() {
    let pipeline: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(Arc::new(
        demo_pipeline(4, 2, 31).unwrap(),
    )));
    assert_eq!(pipeline.precision(), Precision::Int8);
    assert_cached_predicts_bit_identical(pipeline);
}

#[test]
fn concurrent_sessions_hit_one_shared_cache_without_divergence() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(4, 2, 33).unwrap());
    let (server, pipeline) = loopback(pipeline);
    let cached = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())
            .unwrap()
            .with_result_cache(16),
    );

    // Every session replays the same mixed workload concurrently over the
    // one multiplexed, cache-enabled connection.
    let sessions = 4;
    let rounds = 3;
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let cached = Arc::clone(&cached);
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for _ in 0..rounds {
                    for image in mixed_inputs() {
                        let remote = cached.predict(&image).unwrap();
                        let local = pipeline.predict(&image).unwrap();
                        assert_eq!(remote, local, "concurrent cached predict diverged");
                    }
                }
            });
        }
    });

    let stats = cached.cache_stats().expect("cache is enabled");
    let lookups = sessions * rounds * mixed_inputs().len();
    assert_eq!(
        stats.hits + stats.misses,
        lookups as u64,
        "every lookup is exactly one hit or one miss"
    );
    assert_eq!(stats.entries, 4, "four unique inputs in the workload");
    // At least the duplicates after the first full round must hit.
    assert!(
        stats.hits >= (lookups - sessions * 4) as u64 / 2,
        "duplicate-heavy workload should be hit-dominated, got {}",
        stats.summary()
    );
}

#[test]
fn range_and_full_exchanges_share_cache_entries() {
    let n = 4;
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, 2, 35).unwrap());
    let (server, pipeline) = loopback(pipeline);
    let cached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())
        .unwrap()
        .with_result_cache(16);
    let uncached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).unwrap();

    let features = pipeline.client_features(&random_images(1, 50)).unwrap();

    // A full-range request and the trait-level full exchange share one key,
    // and a sub-range request gets its own.
    let full = cached.server_outputs_range(&features, 0, n).unwrap();
    let trait_full = cached.server_outputs(&features).unwrap();
    let sub = cached.server_outputs_range(&features, 1, 3).unwrap();
    assert_eq!(full, trait_full);
    assert_eq!(&full[1..3], &sub[..]);
    assert_eq!(
        full,
        uncached.server_outputs_range(&features, 0, n).unwrap()
    );
    assert_eq!(sub, uncached.server_outputs_range(&features, 1, 3).unwrap());

    let stats = cached.cache_stats().expect("cache is enabled");
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (1, 2, 2),
        "full range misses, trait full hits the same entry, sub-range misses: {}",
        stats.summary()
    );
}

#[test]
fn bounded_cache_evicts_and_clear_empties() {
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 37).unwrap());
    let (server, pipeline) = loopback(pipeline);
    let cached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())
        .unwrap()
        .with_result_cache(2);

    // Six unique inputs through a capacity-2 cache: evictions must occur,
    // occupancy must stay bounded, and results must stay bit-identical.
    for seed in 0..6 {
        let image = random_images(1, 200 + seed);
        assert_eq!(
            cached.predict(&image).unwrap(),
            pipeline.predict(&image).unwrap()
        );
    }
    let stats = cached.cache_stats().expect("cache is enabled");
    assert_eq!(stats.capacity, 2);
    assert!(stats.entries <= 2, "occupancy must respect the bound");
    assert_eq!(stats.evictions, 4, "six uniques through capacity 2");
    assert_eq!(stats.misses, 6);

    // After a clear (the documented post-hot-swap step) the entries are
    // gone but the counters keep their history.
    cached.clear_result_cache();
    let cleared = cached.cache_stats().expect("cache is enabled");
    assert_eq!(cleared.entries, 0);
    assert_eq!(cleared.misses, 6);

    // And an evicted input re-fetches correctly rather than serving a
    // stale or wrong entry.
    let image = random_images(1, 200);
    assert_eq!(
        cached.predict(&image).unwrap(),
        pipeline.predict(&image).unwrap()
    );
}
