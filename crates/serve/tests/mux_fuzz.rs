//! Adversarial coverage for the protocol-v5 multiplexing surfaces: the
//! tagged decoder against random request-id interleavings, duplicate ids,
//! truncated and bit-flipped frames, and outright garbage — every malformed
//! input must come back as a typed [`ServeError`], never a panic — plus the
//! client-side [`CompletionSlots`] demultiplexer against the misuse the wire
//! can inflict on it (duplicate registrations, responses for ids nobody is
//! waiting on, registration after a connection failure).

use ensembler_serve::protocol::{
    decode_tagged, encode_tagged, read_tagged, ErrorCode, Message, TaggedMessage, WireError,
    DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION, TAGGED_WIRE_VERSION,
};
use ensembler_serve::{CompletionSlots, ServeError};
use ensembler_tensor::{Rng, Tensor};

/// A small pool of non-handshake messages the fuzzers tag and interleave.
fn taggable_messages() -> Vec<Message> {
    vec![
        Message::ServerOutputsRequest {
            transmitted: Tensor::from_fn(&[1, 2, 3, 3], |i| (i as f32 * 0.3).cos()),
        },
        Message::ServerOutputsResponse {
            maps: (0..2)
                .map(|k| Tensor::from_fn(&[1, 4], |i| (i + k) as f32))
                .collect(),
        },
        Message::ServerOutputsRequestRange {
            lo: 1,
            hi: 3,
            transmitted: Tensor::from_fn(&[2, 2, 3, 3], |i| i as f32 * 0.5 - 1.0),
        },
        Message::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "per-connection budget exhausted".to_string(),
        }),
    ]
}

#[test]
fn random_request_id_interleavings_round_trip_through_one_stream() {
    let mut rng = Rng::seed_from(0x5EED);
    let pool = taggable_messages();
    for _ in 0..20 {
        // Build a stream of 1..=12 tagged frames with arbitrary (including
        // duplicate) request ids in arbitrary order, then read it back frame
        // by frame: every id and message must round-trip exactly. Duplicate
        // ids are legal on the wire — rejecting them is the demultiplexer's
        // job, not the framing layer's.
        let count = 1 + rng.below(12);
        let mut expected = Vec::with_capacity(count);
        let mut stream = Vec::new();
        for _ in 0..count {
            let message = pool[rng.below(pool.len())].clone();
            let request_id = match rng.below(4) {
                0 => None,
                1 => Some(rng.next_u64() % 3), // force duplicates
                _ => Some(rng.next_u64()),
            };
            stream.extend_from_slice(&encode_tagged(&message, request_id));
            expected.push(TaggedMessage {
                message,
                request_id,
            });
        }
        let mut reader = stream.as_slice();
        for want in &expected {
            let got = read_tagged(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES)
                .expect("well-formed tagged frame");
            assert_eq!(&got, want);
        }
        assert!(reader.is_empty(), "stream fully consumed");
    }
}

#[test]
fn truncated_tagged_frames_are_typed_errors() {
    for message in taggable_messages() {
        let frame = encode_tagged(&message, Some(0xDEAD_BEEF_CAFE_F00D));
        for len in 0..frame.len() {
            let result = decode_tagged(&frame[..len]);
            assert!(
                result.is_err(),
                "prefix of {len}/{} bytes must not decode",
                frame.len()
            );
        }
        // And the streaming reader must report the truncation as I/O EOF.
        for len in [0, 5, frame.len() / 2, frame.len() - 1] {
            let mut reader = &frame[..len];
            match read_tagged(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES) {
                Err(ServeError::Io(error)) => {
                    assert_eq!(error.kind(), std::io::ErrorKind::UnexpectedEof);
                }
                Err(_) => {} // typed frame error is equally acceptable
                Ok(_) => panic!("truncated stream of {len} bytes must not decode"),
            }
        }
    }
}

#[test]
fn bit_flipped_tagged_frames_never_panic_and_never_misroute() {
    let mut rng = Rng::seed_from(0xF1A5);
    let pool = taggable_messages();
    for round in 0..200 {
        let message = &pool[round % pool.len()];
        let id = rng.next_u64();
        let mut frame = encode_tagged(message, Some(id));
        // Flip one random bit anywhere in the frame.
        let byte = rng.below(frame.len());
        let bit = rng.below(8);
        frame[byte] ^= 1 << bit;
        match decode_tagged(&frame) {
            // A flip the CRC cannot see (inside the checksum trailer itself
            // never collides with a valid frame; flips elsewhere are caught
            // by magic/version/type/length checks or the CRC).
            Ok(decoded) => {
                // The only legal survival is full equality — the flip undone
                // by a second error is impossible with a single flip, so a
                // surviving decode would mean the decoder ignored the bytes.
                assert_eq!(decoded.message, *message);
                assert_eq!(decoded.request_id, Some(id));
                panic!("a single flipped bit must never yield a valid frame");
            }
            Err(
                ServeError::Frame(_)
                | ServeError::Checksum { .. }
                | ServeError::UnsupportedVersion { .. },
            ) => {}
            Err(other) => panic!("unexpected error class for a corrupt frame: {other:?}"),
        }
    }
}

#[test]
fn random_garbage_is_rejected_without_panicking() {
    let mut rng = Rng::seed_from(0x6A5B);
    for _ in 0..500 {
        let len = rng.below(64);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        assert!(
            decode_tagged(&garbage).is_err(),
            "random bytes must not decode as a frame"
        );
        let mut reader = garbage.as_slice();
        assert!(read_tagged(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES).is_err());
    }
}

#[test]
fn hostile_version_stamps_are_typed_errors() {
    let message = Message::Error(WireError {
        code: ErrorCode::Inference,
        message: "x".to_string(),
    });
    let good = encode_tagged(&message, Some(7));
    for version in [0u16, PROTOCOL_VERSION + 1, u16::MAX] {
        let mut frame = good.clone();
        frame[4..6].copy_from_slice(&version.to_be_bytes());
        match decode_tagged(&frame) {
            Err(ServeError::UnsupportedVersion { offered, supported }) => {
                assert_eq!(offered, version);
                assert_eq!(supported, PROTOCOL_VERSION);
            }
            other => panic!("version {version} must be UnsupportedVersion, got {other:?}"),
        }
    }
    // A frame stamped below TAGGED_WIRE_VERSION has no id word, so the same
    // bytes reparse as payload and the CRC catches the mismatch.
    let mut downgraded = good;
    downgraded[4..6].copy_from_slice(&(TAGGED_WIRE_VERSION - 1).to_be_bytes());
    assert!(decode_tagged(&downgraded).is_err());
}

#[test]
fn completion_slots_reject_duplicate_ids() {
    let slots = CompletionSlots::new();
    let _receiver = slots.register(42).expect("first registration");
    match slots.register(42) {
        Err(ServeError::Protocol(reason)) => assert!(reason.contains("already in flight")),
        other => panic!("duplicate id must be a typed protocol error, got {other:?}"),
    }
    assert_eq!(slots.in_flight(), 1, "failed registration leaves no slot");
}

#[test]
fn completion_slots_reject_responses_for_unknown_ids() {
    let slots = CompletionSlots::new();
    let receiver = slots.register(1).expect("register");
    match slots.complete(
        99,
        Ok(Message::Error(WireError {
            code: ErrorCode::Inference,
            message: "stray".to_string(),
        })),
    ) {
        Err(ServeError::Protocol(reason)) => assert!(reason.contains("unknown request id")),
        other => panic!("unknown id must be a typed protocol error, got {other:?}"),
    }
    // The in-flight request is untouched by the stray response.
    assert_eq!(slots.in_flight(), 1);
    drop(receiver);
}

#[test]
fn completion_slots_fail_all_poisons_later_registrations() {
    let slots = CompletionSlots::new();
    let receiver = slots.register(5).expect("register");
    slots.fail_all("connection lost: simulated");
    // The waiter gets the typed failure...
    match receiver.recv().expect("failure delivered") {
        Err(ServeError::Protocol(reason)) => assert!(reason.contains("simulated")),
        other => panic!("waiter must see the typed failure, got {other:?}"),
    }
    // ...and new registrations are refused, not silently queued forever.
    match slots.register(6) {
        Err(ServeError::Protocol(reason)) => {
            assert!(
                reason.contains("failed") && reason.contains("simulated"),
                "{reason}"
            );
        }
        other => panic!("register after failure must error, got {other:?}"),
    }
    assert_eq!(slots.in_flight(), 0);
}

#[test]
fn untagged_server_error_frames_keep_their_typed_code() {
    // An untagged Error frame (e.g. a server draining mid-handshake) must
    // surface to every waiter — and every later registration — as a typed
    // `ServeError::Remote` with the server's code intact, so a client can
    // match `Overloaded` and retry against another replica.
    let slots = CompletionSlots::new();
    let receiver = slots.register(1).expect("register");
    slots.fail_all_remote(WireError {
        code: ErrorCode::Overloaded,
        message: "server is draining for shutdown; retry against another replica".to_string(),
    });
    for result in [
        receiver.recv().expect("failure delivered"),
        slots
            .register(2)
            .map(|_| unreachable!("registration after failure must error")),
    ] {
        match result {
            Err(ServeError::Remote(wire)) => {
                assert_eq!(wire.code, ErrorCode::Overloaded);
                assert!(wire.message.contains("draining"), "{}", wire.message);
            }
            other => panic!("expected the typed Overloaded report, got {other:?}"),
        }
    }
}

#[test]
fn fuzzed_slot_traffic_never_drops_or_misroutes_a_completion() {
    let mut rng = Rng::seed_from(0xB0A7);
    for _ in 0..50 {
        let slots = CompletionSlots::new();
        let count = 1 + rng.below(16);
        let mut receivers = Vec::new();
        for id in 0..count as u64 {
            receivers.push((id, slots.register(id).expect("register")));
        }
        // Complete in a random order, interleaved with stray unknown ids.
        let mut order: Vec<u64> = (0..count as u64).collect();
        rng.shuffle(&mut order);
        for &id in &order {
            if rng.below(3) == 0 {
                let stray = count as u64 + rng.next_u64() % 7;
                assert!(slots.complete(stray, Ok(error_message(stray))).is_err());
            }
            slots
                .complete(id, Ok(error_message(id)))
                .expect("known id completes");
        }
        assert_eq!(slots.in_flight(), 0);
        // Every waiter got exactly the message carrying its own id.
        for (id, receiver) in receivers {
            let message = receiver
                .recv()
                .expect("completion delivered")
                .expect("Ok result");
            assert_eq!(message, error_message(id));
        }
    }
}

/// A distinguishable per-id message so misrouting is detectable.
fn error_message(id: u64) -> Message {
    Message::Error(WireError {
        code: ErrorCode::Inference,
        message: format!("marker-{id}"),
    })
}
