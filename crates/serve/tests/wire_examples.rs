//! Keeps `docs/WIRE_PROTOCOL.md` byte-exact: every `<!-- wire-example: … -->`
//! block in the document is decoded from its hex listing and compared against
//! the frame the real encoder produces for the same message, and every
//! example this test knows about must appear in the document. Editing either
//! side without the other fails this test.

use ensembler_serve::protocol::{encode_tagged, ErrorCode, Hello, HelloAck, Message, WireError};
use ensembler_tensor::{QTensorBatch, Tensor};
use std::collections::BTreeMap;

/// The example messages the document walks through, by marker name, each
/// with the request id of its v5 extended header (`None` = untagged frame,
/// as every pre-v5 peer sends).
fn documented_examples() -> BTreeMap<&'static str, (Message, Option<u64>)> {
    let mut examples: BTreeMap<&'static str, (Message, Option<u64>)> = BTreeMap::new();
    let mut insert = |name: &'static str, message: Message, request_id: Option<u64>| {
        examples.insert(name, (message, request_id));
    };
    insert("hello", Message::Hello(Hello::legacy(1)), None);
    insert(
        "hello-v3",
        Message::Hello(Hello {
            max_version: 3,
            model: Some("alpha".to_string()),
        }),
        None,
    );
    insert(
        "hello-ack-v3",
        Message::HelloAck(HelloAck {
            version: 3,
            label: "Ensembler".to_string(),
            ensemble_size: 3,
            selected_count: 2,
            model: Some("alpha".to_string()),
        }),
        None,
    );
    insert(
        "error-overloaded",
        Message::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "budget".to_string(),
        }),
        None,
    );
    insert(
        "hello-ack",
        Message::HelloAck(HelloAck {
            version: 1,
            label: "Ensembler".to_string(),
            ensemble_size: 3,
            selected_count: 2,
            model: None,
        }),
        None,
    );
    insert(
        "server-outputs-request",
        Message::ServerOutputsRequest {
            transmitted: Tensor::from_vec(vec![0.0, 0.5, -1.0, 2.0], &[1, 1, 2, 2]).unwrap(),
        },
        None,
    );
    insert(
        "server-outputs-response",
        Message::ServerOutputsResponse {
            maps: vec![
                Tensor::from_vec(vec![1.0, -0.5], &[1, 2]).unwrap(),
                Tensor::from_vec(vec![0.25, 4.0], &[1, 2]).unwrap(),
            ],
        },
        None,
    );
    insert(
        "server-outputs-request-q",
        Message::ServerOutputsRequestQ {
            transmitted: QTensorBatch::quantize_batch(
                &Tensor::from_vec(vec![0.0, 0.5, -1.0, 2.0], &[1, 1, 2, 2]).unwrap(),
            ),
        },
        None,
    );
    insert(
        "server-outputs-response-q",
        Message::ServerOutputsResponseQ {
            maps: vec![
                QTensorBatch::quantize_batch(&Tensor::from_vec(vec![1.0, -0.5], &[1, 2]).unwrap()),
                QTensorBatch::quantize_batch(&Tensor::from_vec(vec![0.25, 4.0], &[1, 2]).unwrap()),
            ],
        },
        None,
    );
    insert(
        "server-outputs-request-range",
        Message::ServerOutputsRequestRange {
            lo: 1,
            hi: 3,
            transmitted: Tensor::from_vec(vec![0.0, 0.5, -1.0, 2.0], &[1, 1, 2, 2]).unwrap(),
        },
        None,
    );
    insert(
        "error-unknown-model",
        Message::Error(WireError {
            code: ErrorCode::UnknownModel,
            message: "model \"beta\" is not served (serving: alpha)".to_string(),
        }),
        None,
    );
    insert(
        "error-unsupported-version",
        Message::Error(WireError {
            code: ErrorCode::UnsupportedVersion,
            message: "server speaks up to v1".to_string(),
        }),
        None,
    );
    // Protocol v5: the same request/response payloads, tagged with request
    // ids, as a multiplexing peer puts them on the wire.
    insert(
        "server-outputs-request-v5",
        Message::ServerOutputsRequest {
            transmitted: Tensor::from_vec(vec![0.0, 0.5, -1.0, 2.0], &[1, 1, 2, 2]).unwrap(),
        },
        Some(1),
    );
    insert(
        "server-outputs-response-v5",
        Message::ServerOutputsResponse {
            maps: vec![
                Tensor::from_vec(vec![1.0, -0.5], &[1, 2]).unwrap(),
                Tensor::from_vec(vec![0.25, 4.0], &[1, 2]).unwrap(),
            ],
        },
        Some(1),
    );
    insert(
        "error-overloaded-v5",
        Message::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "budget".to_string(),
        }),
        Some(2),
    );
    examples
}

/// Extracts `<!-- wire-example: name -->` hex listings from the document.
///
/// The convention: the marker comment is followed (within a few lines) by a
/// fenced code block whose lines contain hex byte pairs, optionally followed
/// by a `|`-separated commentary column.
fn parse_doc_examples(doc: &str) -> BTreeMap<String, Vec<u8>> {
    let mut examples = BTreeMap::new();
    let mut lines = doc.lines().peekable();
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("<!-- wire-example:") else {
            continue;
        };
        let name = rest
            .strip_suffix("-->")
            .map(|n| n.trim().to_string())
            .unwrap_or_else(|| panic!("unterminated wire-example marker: {trimmed}"));

        // Find the opening fence.
        let mut in_block = false;
        let mut bytes = Vec::new();
        for line in lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.starts_with("```") {
                if in_block {
                    break;
                }
                in_block = true;
                continue;
            }
            if !in_block {
                assert!(
                    trimmed.is_empty(),
                    "wire-example {name}: expected a fenced code block, found {trimmed:?}"
                );
                continue;
            }
            let data = trimmed.split('|').next().unwrap_or("");
            for token in data.split_whitespace() {
                let byte = u8::from_str_radix(token, 16)
                    .unwrap_or_else(|_| panic!("wire-example {name}: {token:?} is not a hex byte"));
                bytes.push(byte);
            }
        }
        assert!(
            in_block,
            "wire-example {name}: no fenced code block follows the marker"
        );
        examples.insert(name, bytes);
    }
    examples
}

/// Renders a frame the way the document lists bytes, for error messages.
fn hex_dump(bytes: &[u8]) -> String {
    bytes
        .chunks(16)
        .map(|chunk| {
            chunk
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn protocol_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/WIRE_PROTOCOL.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/WIRE_PROTOCOL.md must exist next to the workspace: {e}"))
}

#[test]
fn documented_frames_match_the_encoder_exactly() {
    let expected = documented_examples();
    let found = parse_doc_examples(&protocol_doc());

    for (name, (message, request_id)) in &expected {
        let frame = encode_tagged(message, *request_id);
        match found.get(*name) {
            Some(documented) => assert_eq!(
                documented,
                &frame,
                "docs/WIRE_PROTOCOL.md example `{name}` drifted from the encoder.\n\
                 The encoder produces:\n{}\n",
                hex_dump(&frame)
            ),
            None => panic!(
                "docs/WIRE_PROTOCOL.md is missing `<!-- wire-example: {name} -->`.\n\
                 The encoder produces:\n{}\n",
                hex_dump(&frame)
            ),
        }
    }
}

#[test]
fn the_document_has_no_unknown_examples() {
    let expected = documented_examples();
    for name in parse_doc_examples(&protocol_doc()).keys() {
        assert!(
            expected.contains_key(name.as_str()),
            "docs/WIRE_PROTOCOL.md documents `{name}`, which this test does not check — \
             add it to documented_examples() so it cannot drift"
        );
    }
}
