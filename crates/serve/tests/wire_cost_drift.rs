//! Anti-drift tests tying the analytic latency model to the real protocol:
//! the byte counts `ensembler-latency` predicts for upload/return frames
//! must equal the length of frames actually produced by the encoder, for
//! every backbone the workspace ships. If either side changes without the
//! other, these tests fail.

use ensembler::Defense;
use ensembler_latency::network_cost;
use ensembler_nn::models::ResNetConfig;
use ensembler_serve::demo_pipeline;
use ensembler_serve::protocol::{encode_message, Message, WIRE_OVERHEAD};
use ensembler_tensor::{QTensorBatch, Tensor};

fn configs() -> Vec<(&'static str, ResNetConfig)> {
    vec![
        ("tiny_for_tests", ResNetConfig::tiny_for_tests()),
        ("cifar10_like", ResNetConfig::cifar10_like()),
        ("cifar100_like", ResNetConfig::cifar100_like()),
        ("paper_resnet18", ResNetConfig::paper_resnet18(10, 32, true)),
    ]
}

#[test]
fn upload_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let head = config.head_output_shape();
        for batch in [1usize, 8] {
            let transmitted = Tensor::zeros(&[batch, head[0], head[1], head[2]]);
            let frame = encode_message(&Message::ServerOutputsRequest { transmitted });
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD),
                "upload frame size drifted from the analytic model for {name} batch {batch}"
            );
        }
    }
}

#[test]
fn return_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let features = config.body_output_features();
        for batch in [1usize, 8] {
            for ensemble_size in [1usize, 4] {
                let maps: Vec<Tensor> = (0..ensemble_size)
                    .map(|_| Tensor::zeros(&[batch, features]))
                    .collect();
                let frame = encode_message(&Message::ServerOutputsResponse { maps });
                assert_eq!(
                    frame.len() as u64,
                    cost.return_frame_bytes(batch as u64, ensemble_size as u64, &WIRE_OVERHEAD),
                    "return frame size drifted from the analytic model for {name} \
                     batch {batch} N {ensemble_size}"
                );
            }
        }
    }
}

#[test]
fn quantized_upload_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let head = config.head_output_shape();
        for batch in [1usize, 8] {
            let transmitted = QTensorBatch::quantize_batch(&Tensor::from_fn(
                &[batch, head[0], head[1], head[2]],
                |i| (i as f32 * 0.01).sin(),
            ));
            let frame = encode_message(&Message::ServerOutputsRequestQ { transmitted });
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes_q(batch as u64, &WIRE_OVERHEAD),
                "quantized upload frame size drifted from the analytic model \
                 for {name} batch {batch}"
            );
        }
    }
}

#[test]
fn quantized_return_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let features = config.body_output_features();
        for batch in [1usize, 8] {
            for ensemble_size in [1usize, 4] {
                let maps: Vec<QTensorBatch> = (0..ensemble_size)
                    .map(|k| {
                        QTensorBatch::quantize_batch(&Tensor::from_fn(&[batch, features], |i| {
                            ((i + k) as f32 * 0.1).cos()
                        }))
                    })
                    .collect();
                let frame = encode_message(&Message::ServerOutputsResponseQ { maps });
                assert_eq!(
                    frame.len() as u64,
                    cost.return_frame_bytes_q(batch as u64, ensemble_size as u64, &WIRE_OVERHEAD),
                    "quantized return frame size drifted from the analytic model \
                     for {name} batch {batch} N {ensemble_size}"
                );
            }
        }
    }
}

#[test]
fn range_request_frame_bytes_match_the_encoder_for_every_backbone() {
    // The sub-range requests a shard router fans out (protocol v4) cost the
    // full upload plus exactly one `lo..hi` range header — for both wire
    // precisions.
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let head = config.head_output_shape();
        for batch in [1usize, 8] {
            let transmitted = Tensor::zeros(&[batch, head[0], head[1], head[2]]);
            let frame = encode_message(&Message::ServerOutputsRequestRange {
                lo: 1,
                hi: 3,
                transmitted: transmitted.clone(),
            });
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes_range(batch as u64, &WIRE_OVERHEAD),
                "range upload frame size drifted from the analytic model \
                 for {name} batch {batch}"
            );

            let quantized = QTensorBatch::quantize_batch(&transmitted);
            let frame = encode_message(&Message::ServerOutputsRequestRangeQ {
                lo: 1,
                hi: 3,
                transmitted: quantized,
            });
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes_range_q(batch as u64, &WIRE_OVERHEAD),
                "quantized range upload frame size drifted from the analytic \
                 model for {name} batch {batch}"
            );
        }
    }
}

#[test]
fn the_quantized_response_is_roughly_a_quarter_of_the_f32_one() {
    // The headline byte saving of protocol v2, asserted on real frames.
    let config = ResNetConfig::paper_resnet18(10, 32, true);
    let cost = network_cost(&config);
    let f32_bytes = cost.return_frame_bytes(32, 10, &WIRE_OVERHEAD) as f64;
    let q_bytes = cost.return_frame_bytes_q(32, 10, &WIRE_OVERHEAD) as f64;
    assert!(
        q_bytes < 0.27 * f32_bytes,
        "quantized response {q_bytes} B should be about a quarter of {f32_bytes} B"
    );
}

#[test]
fn a_live_pipelines_frames_match_the_model_end_to_end() {
    // Not just synthetic zero tensors: run a real pipeline's client and
    // server stages and check the frames they would put on the wire.
    let pipeline = demo_pipeline(3, 2, 77).unwrap();
    let cost = network_cost(pipeline.config());
    let batch = 2usize;
    let images = Tensor::ones(&[batch, 3, 16, 16]);

    let transmitted = pipeline.client_features(&images).unwrap();
    let request = encode_message(&Message::ServerOutputsRequest {
        transmitted: transmitted.clone(),
    });
    assert_eq!(
        request.len() as u64,
        cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD)
    );

    let maps = pipeline.server_outputs(&transmitted).unwrap();
    let response = encode_message(&Message::ServerOutputsResponse { maps });
    assert_eq!(
        response.len() as u64,
        cost.return_frame_bytes(
            batch as u64,
            pipeline.ensemble_size() as u64,
            &WIRE_OVERHEAD
        )
    );

    // And the same stages through the quantized (v2) encoding.
    let qf = QTensorBatch::quantize_batch(&transmitted);
    let request = encode_message(&Message::ServerOutputsRequestQ {
        transmitted: qf.clone(),
    });
    assert_eq!(
        request.len() as u64,
        cost.upload_frame_bytes_q(batch as u64, &WIRE_OVERHEAD)
    );
    let qmaps = pipeline.server_outputs_quantized(&qf).unwrap();
    let response = encode_message(&Message::ServerOutputsResponseQ { maps: qmaps });
    assert_eq!(
        response.len() as u64,
        cost.return_frame_bytes_q(
            batch as u64,
            pipeline.ensemble_size() as u64,
            &WIRE_OVERHEAD
        )
    );
}

#[test]
fn tagged_frames_cost_exactly_the_modelled_request_id_bytes() {
    use ensembler_serve::protocol::{encode_tagged, ErrorCode, WireError};

    // Protocol v5's multiplexing header: for EVERY taggable message type, a
    // tagged frame is byte-for-byte the untagged frame plus exactly the
    // `request_id_bytes` the analytic model charges — across backbones,
    // batch sizes and request ids.
    let config = ResNetConfig::tiny_for_tests();
    let head = config.head_output_shape();
    let features = config.body_output_features();
    let batch = 2usize;
    let transmitted = Tensor::from_fn(&[batch, head[0], head[1], head[2]], |i| i as f32 * 0.01);
    let quantized = QTensorBatch::quantize_batch(&transmitted);
    let maps: Vec<Tensor> = (0..3).map(|_| Tensor::zeros(&[batch, features])).collect();
    let qmaps: Vec<QTensorBatch> = maps.iter().map(QTensorBatch::quantize_batch).collect();
    let messages = vec![
        Message::ServerOutputsRequest {
            transmitted: transmitted.clone(),
        },
        Message::ServerOutputsResponse { maps },
        Message::ServerOutputsRequestQ {
            transmitted: quantized.clone(),
        },
        Message::ServerOutputsResponseQ { maps: qmaps },
        Message::ServerOutputsRequestRange {
            lo: 0,
            hi: 2,
            transmitted,
        },
        Message::ServerOutputsRequestRangeQ {
            lo: 1,
            hi: 3,
            transmitted: quantized,
        },
        Message::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "per-connection budget".to_string(),
        }),
    ];
    for message in messages {
        let untagged = encode_message(&message);
        for id in [0u64, 1, u64::MAX] {
            let tagged = encode_tagged(&message, Some(id));
            assert_eq!(
                tagged.len() as u64,
                untagged.len() as u64 + WIRE_OVERHEAD.request_id_bytes,
                "tagged frame cost drifted from the analytic model for {:?} id {id}",
                message.message_type(),
            );
        }
    }
    assert_eq!(
        WIRE_OVERHEAD.request_id_bytes,
        ensembler_serve::protocol::REQUEST_ID_BYTES as u64,
        "the analytic model and the wire constant must agree on the id width"
    );
}

#[test]
fn frame_size_model_matches_real_tagged_frames_for_every_backbone() {
    // The tentpole byte-accounting check on the multiplexed request path:
    // the model's upload/return predictions plus its request-id term equal
    // real v5 tagged frames, for every backbone the workspace ships.
    use ensembler_serve::protocol::encode_tagged;

    for (name, config) in configs() {
        let cost = network_cost(&config);
        let head = config.head_output_shape();
        let features = config.body_output_features();
        for batch in [1usize, 8] {
            let transmitted = Tensor::zeros(&[batch, head[0], head[1], head[2]]);
            let frame = encode_tagged(
                &Message::ServerOutputsRequest { transmitted },
                Some(0x0123_4567_89AB_CDEF),
            );
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD)
                    + WIRE_OVERHEAD.request_id_bytes,
                "tagged upload frame size drifted for {name} batch {batch}"
            );

            let maps: Vec<Tensor> = (0..4).map(|_| Tensor::zeros(&[batch, features])).collect();
            let frame = encode_tagged(&Message::ServerOutputsResponse { maps }, Some(7));
            assert_eq!(
                frame.len() as u64,
                cost.return_frame_bytes(batch as u64, 4, &WIRE_OVERHEAD)
                    + WIRE_OVERHEAD.request_id_bytes,
                "tagged return frame size drifted for {name} batch {batch}"
            );
        }
    }
}

#[test]
fn handshake_frame_bytes_match_the_encoder() {
    use ensembler_serve::protocol::{Hello, HelloAck};

    // Legacy (nameless) handshake frames.
    let hello = encode_message(&Message::Hello(Hello::legacy(1)));
    assert_eq!(hello.len() as u64, WIRE_OVERHEAD.hello_frame_bytes(None));
    let ack = encode_message(&Message::HelloAck(HelloAck {
        version: 1,
        label: "Ensembler".to_string(),
        ensemble_size: 3,
        selected_count: 2,
        model: None,
    }));
    assert_eq!(
        ack.len() as u64,
        WIRE_OVERHEAD.hello_ack_frame_bytes("Ensembler".len() as u64, None)
    );

    // Protocol-v3 handshakes carrying a model name, across name lengths.
    for model in ["a", "alpha", "a-rather-long-model-name"] {
        let hello = encode_message(&Message::Hello(Hello {
            max_version: 3,
            model: Some(model.to_string()),
        }));
        assert_eq!(
            hello.len() as u64,
            WIRE_OVERHEAD.hello_frame_bytes(Some(model.len() as u64)),
            "hello bytes drifted for model {model:?}"
        );
        let ack = encode_message(&Message::HelloAck(HelloAck {
            version: 3,
            label: "Ensembler+int8".to_string(),
            ensemble_size: 4,
            selected_count: 2,
            model: Some(model.to_string()),
        }));
        assert_eq!(
            ack.len() as u64,
            WIRE_OVERHEAD
                .hello_ack_frame_bytes("Ensembler+int8".len() as u64, Some(model.len() as u64)),
            "ack bytes drifted for model {model:?}"
        );
    }
}
