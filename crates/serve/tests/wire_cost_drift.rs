//! Anti-drift tests tying the analytic latency model to the real protocol:
//! the byte counts `ensembler-latency` predicts for upload/return frames
//! must equal the length of frames actually produced by the encoder, for
//! every backbone the workspace ships. If either side changes without the
//! other, these tests fail.

use ensembler::Defense;
use ensembler_latency::network_cost;
use ensembler_nn::models::ResNetConfig;
use ensembler_serve::demo_pipeline;
use ensembler_serve::protocol::{encode_message, Message, WIRE_OVERHEAD};
use ensembler_tensor::Tensor;

fn configs() -> Vec<(&'static str, ResNetConfig)> {
    vec![
        ("tiny_for_tests", ResNetConfig::tiny_for_tests()),
        ("cifar10_like", ResNetConfig::cifar10_like()),
        ("cifar100_like", ResNetConfig::cifar100_like()),
        ("paper_resnet18", ResNetConfig::paper_resnet18(10, 32, true)),
    ]
}

#[test]
fn upload_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let head = config.head_output_shape();
        for batch in [1usize, 8] {
            let transmitted = Tensor::zeros(&[batch, head[0], head[1], head[2]]);
            let frame = encode_message(&Message::ServerOutputsRequest { transmitted });
            assert_eq!(
                frame.len() as u64,
                cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD),
                "upload frame size drifted from the analytic model for {name} batch {batch}"
            );
        }
    }
}

#[test]
fn return_frame_bytes_match_the_encoder_for_every_backbone() {
    for (name, config) in configs() {
        let cost = network_cost(&config);
        let features = config.body_output_features();
        for batch in [1usize, 8] {
            for ensemble_size in [1usize, 4] {
                let maps: Vec<Tensor> = (0..ensemble_size)
                    .map(|_| Tensor::zeros(&[batch, features]))
                    .collect();
                let frame = encode_message(&Message::ServerOutputsResponse { maps });
                assert_eq!(
                    frame.len() as u64,
                    cost.return_frame_bytes(batch as u64, ensemble_size as u64, &WIRE_OVERHEAD),
                    "return frame size drifted from the analytic model for {name} \
                     batch {batch} N {ensemble_size}"
                );
            }
        }
    }
}

#[test]
fn a_live_pipelines_frames_match_the_model_end_to_end() {
    // Not just synthetic zero tensors: run a real pipeline's client and
    // server stages and check the frames they would put on the wire.
    let pipeline = demo_pipeline(3, 2, 77).unwrap();
    let cost = network_cost(pipeline.config());
    let batch = 2usize;
    let images = Tensor::ones(&[batch, 3, 16, 16]);

    let transmitted = pipeline.client_features(&images).unwrap();
    let request = encode_message(&Message::ServerOutputsRequest {
        transmitted: transmitted.clone(),
    });
    assert_eq!(
        request.len() as u64,
        cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD)
    );

    let maps = pipeline.server_outputs(&transmitted).unwrap();
    let response = encode_message(&Message::ServerOutputsResponse { maps });
    assert_eq!(
        response.len() as u64,
        cost.return_frame_bytes(
            batch as u64,
            pipeline.ensemble_size() as u64,
            &WIRE_OVERHEAD
        )
    );
}
