//! End-to-end model lifecycle over a live loopback server: hot swaps with
//! in-flight requests draining on the outgoing engine, sustained multiplexed
//! load across a swap with zero dropped requests, deterministic canary
//! routing with promotion, and the registry's compatibility / removal rules
//! as clients observe them.

use ensembler::{Defense, EnsemblerError};
use ensembler_serve::registry::route_key;
use ensembler_serve::{
    demo_pipeline, DefenseServer, ModelRegistry, RemoteDefense, ServeError, ServerConfig,
};
use ensembler_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn random_images(batch: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[batch, 3, 16, 16], |_| rng.uniform(-1.0, 1.0))
}

/// The route key the server derives for an f32 request shipping `features` —
/// the test-side mirror of the canary routing decision.
fn f32_route_key(features: &Tensor) -> u64 {
    route_key(
        features
            .data()
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes()),
    )
}

/// Two handshake-compatible versions of the same model: identical
/// architecture, label and split shapes, different weights — so every
/// response is attributable to exactly one version by bit comparison.
fn two_versions(seed_a: u64, seed_b: u64) -> (Arc<dyn Defense>, Arc<dyn Defense>) {
    (
        Arc::new(demo_pipeline(2, 1, seed_a).unwrap()),
        Arc::new(demo_pipeline(2, 1, seed_b).unwrap()),
    )
}

/// A wrapper defense whose `server_outputs` blocks on a gate until released —
/// the deterministic way to hold a request in flight on a specific engine
/// while the registry swaps underneath it.
#[derive(Debug)]
struct GatedDefense {
    inner: Arc<dyn Defense>,
    gate: Arc<(Mutex<GateState>, Condvar)>,
}

#[derive(Debug, Default)]
struct GateState {
    entered: u64,
    released: bool,
}

impl GatedDefense {
    fn new(inner: Arc<dyn Defense>) -> (Arc<Self>, Arc<(Mutex<GateState>, Condvar)>) {
        let gate = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
        let defense = Arc::new(Self {
            inner,
            gate: Arc::clone(&gate),
        });
        (defense, gate)
    }
}

fn wait_entered(gate: &(Mutex<GateState>, Condvar), n: u64) {
    let (lock, condvar) = gate;
    let mut state = lock.lock().unwrap();
    while state.entered < n {
        state = condvar.wait(state).unwrap();
    }
}

fn release(gate: &(Mutex<GateState>, Condvar)) {
    let (lock, condvar) = gate;
    lock.lock().unwrap().released = true;
    condvar.notify_all();
}

impl Defense for GatedDefense {
    fn config(&self) -> &ensembler_nn::models::ResNetConfig {
        self.inner.config()
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn server_bodies(&self) -> &[ensembler_nn::Sequential] {
        self.inner.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.inner.selected_count()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.inner.client_features(images)
    }

    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        let (lock, condvar) = &*self.gate;
        let mut state = lock.lock().unwrap();
        state.entered += 1;
        condvar.notify_all();
        while !state.released {
            state = condvar.wait(state).unwrap();
        }
        drop(state);
        self.inner.server_outputs(transmitted)
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.inner.classify(server_maps)
    }
}

#[test]
fn a_swap_drains_in_flight_requests_on_the_old_engine() {
    // The zero-drop contract, request by request: a request already in
    // flight when the swap lands completes on the OLD version with its
    // bit-exact answer; a request issued after the swap — on the very same
    // multiplexed connection — is served by the NEW version.
    let (version_a, version_b) = two_versions(601, 602);
    let (gated_a, gate) = GatedDefense::new(Arc::clone(&version_a));
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", gated_a, config.engine).unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();
    let registry = Arc::clone(server.registry());

    let remote =
        Arc::new(RemoteDefense::connect(Arc::clone(&version_a), server.local_addr()).unwrap());
    let old_features = version_a.client_features(&random_images(1, 603)).unwrap();
    let new_features = version_a.client_features(&random_images(1, 604)).unwrap();
    let expected_old = version_a.server_outputs(&old_features).unwrap();
    let expected_new = version_b.server_outputs(&new_features).unwrap();

    // Put a request provably in flight on version A (blocked in the gate)...
    let in_flight_remote = Arc::clone(&remote);
    let in_flight_input = old_features.clone();
    let in_flight =
        std::thread::spawn(move || in_flight_remote.server_outputs(&in_flight_input).unwrap());
    wait_entered(&gate, 1);

    // ...swap the slot to version B while it is held. The swap must return
    // promptly: it displaces the old engine but must never wait for its
    // in-flight work (the request pins the engine until its answer ships).
    registry
        .swap("default", "v2", Arc::clone(&version_b), config.engine)
        .unwrap();
    assert_eq!(registry.get("default").unwrap().primary_version(), "v2");

    // ...and the same pinned connection immediately serves version B (the
    // new engine is not gated, so this completes while A's request is still
    // blocked — also proving the two engines run independently).
    assert_eq!(remote.server_outputs(&new_features).unwrap(), expected_new);
    assert!(
        !in_flight.is_finished(),
        "the in-flight request must still be draining on the old engine"
    );

    // The drained request delivers version A's bit-exact answer: swapped
    // out, never cancelled.
    release(&gate);
    assert_eq!(in_flight.join().unwrap(), expected_old);

    let stats = server.stats();
    assert_eq!(stats.requests_served, 2);
    assert_eq!(stats.errors_sent, 0);
}

#[test]
fn hot_swap_under_concurrent_multiplexed_load_drops_nothing() {
    // Four clients hammer one model name over multiplexed connections while
    // the registry swaps the primary mid-stream. Every single request must
    // succeed, every response must be bit-exact under exactly one of the two
    // versions, and any request issued after the swap is visible must be
    // served by the new version.
    const THREADS: u64 = 4;
    const REQUESTS: u64 = 24;
    let (version_a, version_b) = two_versions(611, 612);
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", Arc::clone(&version_a), config.engine).unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();
    let registry = Arc::clone(server.registry());

    let completed = Arc::new(AtomicU64::new(0));
    let swapped = Arc::new(AtomicBool::new(false));
    let old_answers = Arc::new(AtomicU64::new(0));
    let new_answers = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let version_a = Arc::clone(&version_a);
                let version_b = Arc::clone(&version_b);
                let completed = Arc::clone(&completed);
                let swapped = Arc::clone(&swapped);
                let old_answers = Arc::clone(&old_answers);
                let new_answers = Arc::clone(&new_answers);
                let addr = server.local_addr();
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(Arc::clone(&version_a), addr).unwrap();
                    for i in 0..REQUESTS {
                        let features = version_a
                            .client_features(&random_images(1, 613 + t * REQUESTS + i))
                            .unwrap();
                        let expected_a = version_a.server_outputs(&features).unwrap();
                        let expected_b = version_b.server_outputs(&features).unwrap();
                        let swap_was_visible = swapped.load(Ordering::SeqCst);
                        let maps = remote.server_outputs(&features).unwrap();
                        if maps == expected_a {
                            old_answers.fetch_add(1, Ordering::SeqCst);
                            assert!(
                                !swap_was_visible,
                                "a request issued after the swap was served by the old version"
                            );
                        } else if maps == expected_b {
                            new_answers.fetch_add(1, Ordering::SeqCst);
                        } else {
                            panic!("a response matched neither version bit-exactly");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();

        // Swap once a quarter of the traffic has been served, mid-hammer.
        while completed.load(Ordering::SeqCst) < THREADS * REQUESTS / 4 {
            std::thread::yield_now();
        }
        registry
            .swap("default", "v2", Arc::clone(&version_b), config.engine)
            .unwrap();
        swapped.store(true, Ordering::SeqCst);

        for handle in handles {
            handle.join().unwrap();
        }
    });

    // Zero drops: every request got a bit-exact answer from one version.
    let old = old_answers.load(Ordering::SeqCst);
    let new = new_answers.load(Ordering::SeqCst);
    assert_eq!(old + new, THREADS * REQUESTS);
    assert!(old > 0, "the swap waited for a quarter of the traffic");
    assert!(new > 0, "three quarters of the traffic followed the swap");
    let stats = server.stats();
    assert_eq!(stats.requests_served, THREADS * REQUESTS);
    assert_eq!(stats.errors_sent, 0);
    assert_eq!(stats.requests_rejected, 0);
}

#[test]
fn canary_routing_is_deterministic_and_promotion_completes_the_rollout() {
    const PERCENT: u8 = 30;
    let (primary, canary) = two_versions(621, 622);
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", Arc::clone(&primary), config.engine).unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();
    let registry = Arc::clone(server.registry());
    registry
        .set_canary("default", "v2", PERCENT, Arc::clone(&canary), config.engine)
        .unwrap();

    let remote = RemoteDefense::connect(Arc::clone(&primary), server.local_addr()).unwrap();
    let mut canary_hits = 0u32;
    let inputs: Vec<Tensor> = (0..40)
        .map(|i| primary.client_features(&random_images(1, 623 + i)).unwrap())
        .collect();
    for features in &inputs {
        // The split is a pure function of the request content: the test
        // derives the same route key the server does and the observed
        // version must match that prediction exactly.
        let expect_canary = f32_route_key(features) % 100 < u64::from(PERCENT);
        let expected = if expect_canary {
            canary_hits += 1;
            canary.server_outputs(features).unwrap()
        } else {
            primary.server_outputs(features).unwrap()
        };
        assert_eq!(remote.server_outputs(features).unwrap(), expected);
    }
    assert!(
        canary_hits > 0 && canary_hits < inputs.len() as u32,
        "40 random requests must land on both sides of a {PERCENT}% split, \
         got {canary_hits} canary hits"
    );

    // Determinism across retries: the same payload routes to the same
    // version every time, even on a fresh connection.
    let retry = RemoteDefense::connect(Arc::clone(&primary), server.local_addr()).unwrap();
    for features in inputs.iter().take(5) {
        assert_eq!(
            retry.server_outputs(features).unwrap(),
            remote.server_outputs(features).unwrap()
        );
    }

    // Promotion: the canary becomes the primary and takes all the traffic —
    // on connections opened before the promotion too.
    registry.promote("default").unwrap();
    assert_eq!(registry.get("default").unwrap().primary_version(), "v2");
    assert_eq!(registry.get("default").unwrap().canary(), None);
    for features in inputs.iter().take(10) {
        assert_eq!(
            remote.server_outputs(features).unwrap(),
            canary.server_outputs(features).unwrap()
        );
    }
    assert_eq!(server.stats().errors_sent, 0);
}

#[test]
fn incompatible_swaps_are_refused_and_removed_models_drain() {
    let (version_a, _) = two_versions(631, 632);
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", Arc::clone(&version_a), config.engine)
        .unwrap()
        .with_model("spare", Arc::clone(&version_a), config.engine)
        .unwrap();
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).unwrap();
    let registry = Arc::clone(server.registry());

    // A replacement with a different ensemble size would break every
    // connected client's handshake-verified expectations: refused, and the
    // error names the differing property.
    let incompatible: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 633).unwrap());
    let err = registry
        .swap("default", "v2", incompatible, config.engine)
        .unwrap_err();
    assert!(err.to_string().contains("ensemble"), "{err}");
    assert_eq!(registry.get("default").unwrap().primary_version(), "v0");

    // Removing a model refuses new handshakes for the name but keeps the
    // pinned connection serving until its client disconnects.
    let pinned =
        RemoteDefense::connect_model(Arc::clone(&version_a), server.local_addr(), "spare").unwrap();
    registry.remove("spare").unwrap();
    let err = RemoteDefense::connect_model(Arc::clone(&version_a), server.local_addr(), "spare")
        .unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    let images = random_images(1, 634);
    assert_eq!(
        pinned.predict(&images).unwrap(),
        version_a.predict(&images).unwrap()
    );
}
