//! Tiny argument helpers shared by the `serve_defense` and `remote_client`
//! binaries, so the two command lines cannot drift apart.

/// Parses positional argument `index` of `args`, falling back to `default`
/// when the argument is absent or unparsable.
///
/// # Examples
///
/// ```
/// use ensembler_serve::cli::positional;
///
/// let args: Vec<String> = vec!["127.0.0.1:7878".into(), "4".into()];
/// assert_eq!(positional(&args, 1, 2usize), 4);
/// assert_eq!(positional(&args, 2, 17u64), 17); // absent → default
/// assert_eq!(positional(&args, 0, 9usize), 9); // unparsable → default
/// ```
pub fn positional<T: std::str::FromStr>(args: &[String], index: usize, default: T) -> T {
    args.get(index)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(default)
}
