//! Stand-alone multi-model defense server: the untrusted-cloud process of
//! the paper's deployment.
//!
//! Builds deterministic demo Ensemblers (so a `remote_client` given the same
//! `N P SEED` holds a bit-identical replica) and/or loads exported model
//! artifacts, and serves their `server_outputs` stages over TCP until
//! killed, logging a stats line whenever the counters move.
//!
//! Usage: `cargo run -p ensembler-serve --bin serve_defense --release \
//!     [-- ADDR [N] [P] [SEED[,int8]] [--model NAME=SOURCE]... \
//!        [--canary NAME=SOURCE@PCT%]... [--manifest FILE]]`
//! Defaults: `127.0.0.1:7878 4 2 17`.
//!
//! A `SOURCE` is either a demo spec `N,P,SEED[,int8]` or the path of a
//! model artifact exported by `export_model` (see
//! `docs/MODEL_ARTIFACTS.md`). The positional `N P SEED` triple defines the
//! **default** model (the one legacy clients and nameless hellos get); an
//! `,int8` suffix on the seed quantizes it, which is how a `shard_router`
//! int8 worker is launched — the router's nameless handshake reaches the
//! default model. Each repeatable `--model` flag registers one more
//! pipeline under its own name; protocol-v3 clients pick it with
//! `remote_client --model NAME`. Each `--canary` flag serves a second
//! version under an existing name at the given traffic share.
//!
//! `--manifest FILE` turns the model set *live*: the file (one
//! `NAME=SOURCE[@PCT%]` per line) is watched for changes, and every edit is
//! reconciled onto the running server — models are added, hot-swapped,
//! canaried, promoted and removed with zero dropped requests. The operator
//! guide, including admission-control tuning, lives in `docs/SERVING.md`.

use ensembler::{Defense, QuantizedDefense};
use ensembler_serve::cli::positional;
use ensembler_serve::{
    demo_pipeline, CanarySpec, DefenseServer, Manifest, ModelRegistry, ModelSpec, ServerConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The flag-parsed command line: positionals plus the lifecycle flags.
struct Args {
    positional: Vec<String>,
    models: Vec<ModelSpec>,
    canaries: Vec<CanarySpec>,
    manifest: Option<PathBuf>,
}

/// Splits the command line into positional arguments and the `--model` /
/// `--canary` / `--manifest` flags.
fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut parsed = Args {
        positional: Vec::new(),
        models: Vec::new(),
        canaries: Vec::new(),
        manifest: None,
    };
    let mut args = std::env::args().skip(1);
    let value =
        |args: &mut dyn Iterator<Item = String>, flag: &str, inline: Option<&str>| match inline {
            Some(v) => Ok(v.to_string()),
            None => args
                .next()
                .ok_or_else(|| format!("{flag} needs an argument")),
        };
    while let Some(arg) = args.next() {
        if arg == "--model" || arg.starts_with("--model=") {
            let raw = value(&mut args, "--model", arg.strip_prefix("--model="))?;
            parsed.models.push(ModelSpec::parse(&raw)?);
        } else if arg == "--canary" || arg.starts_with("--canary=") {
            let raw = value(&mut args, "--canary", arg.strip_prefix("--canary="))?;
            parsed.canaries.push(CanarySpec::parse(&raw)?);
        } else if arg == "--manifest" || arg.starts_with("--manifest=") {
            let raw = value(&mut args, "--manifest", arg.strip_prefix("--manifest="))?;
            parsed.manifest = Some(PathBuf::from(raw));
        } else {
            parsed.positional.push(arg);
        }
    }
    Ok(parsed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Args {
        positional: args,
        models: extra_models,
        canaries,
        manifest,
    } = parse_args()?;
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = positional(&args, 1, 4);
    let p: usize = positional(&args, 2, 2);
    // `SEED,int8` quantizes the default model — the launch syntax for a
    // shard_router int8 worker (see docs/SERVING.md).
    let (seed_arg, int8) = match args.get(3).map(String::as_str) {
        Some(raw) => match raw.strip_suffix(",int8") {
            Some(seed) => (seed, true),
            None => (raw, false),
        },
        None => ("", false),
    };
    let seed: u64 = seed_arg.parse().unwrap_or(17);

    let mut default_model: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    if int8 {
        default_model = Arc::new(QuantizedDefense::quantize(default_model));
    }
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", default_model, config.engine)?;
    for spec in &extra_models {
        registry.register_version(
            spec.name.clone(),
            spec.version(),
            spec.build()?,
            config.engine,
        )?;
    }
    for canary in &canaries {
        registry.set_canary(
            &canary.spec.name,
            canary.spec.version(),
            canary.percent,
            canary.spec.build()?,
            config.engine,
        )?;
    }
    let server = DefenseServer::bind_registry(registry, addr.as_str(), config)?;

    println!(
        "serving {} model(s) on {} — default: Ensembler{} (N={n} P={p} seed={seed})",
        server.registry().len(),
        server.local_addr(),
        if int8 { "+int8" } else { "" },
    );
    for spec in &extra_models {
        println!("  model {}: {}", spec.name, spec.version());
    }
    for canary in &canaries {
        println!(
            "  canary {}: {} at {}%",
            canary.spec.name,
            canary.spec.version(),
            canary.percent
        );
    }
    println!(
        "admission: {} connections; {} reqs / {} MiB per server, {} reqs / {} MiB per connection",
        config.admission.max_connections,
        config.admission.max_inflight_requests,
        config.admission.max_inflight_bytes >> 20,
        config.admission.max_connection_inflight_requests,
        config.admission.max_connection_inflight_bytes >> 20,
    );
    if let Some(path) = &manifest {
        println!("watching manifest {} for model changes", path.display());
        watch_manifest(path.clone(), &server, config);
    }
    println!("stop with Ctrl-C; connect with:");
    println!(
        "  cargo run -p ensembler-serve --bin remote_client --release -- {} {} {} {}{}",
        server.local_addr(),
        n,
        p,
        seed,
        if int8 { " --int8" } else { "" },
    );

    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        let stats = server.stats();
        if stats != last {
            println!(
                "{} connections | {} served, {} rejected, {} errors | {} in flight ({} B)",
                stats.connections_accepted,
                stats.requests_served,
                stats.requests_rejected,
                stats.errors_sent,
                stats.inflight_requests,
                stats.inflight_bytes,
            );
            for model in &stats.per_model {
                if model.engine.requests_served > 0 || model.engine.queue_depth > 0 {
                    println!(
                        "  {} ({} {}): {} coalesced requests in {} batches (mean occupancy {:.2}, queue depth {})",
                        model.model,
                        model.role,
                        model.version,
                        model.engine.requests_served,
                        model.engine.batches_executed,
                        model.engine.mean_batch_occupancy(),
                        model.engine.queue_depth,
                    );
                }
            }
            last = stats;
        }
    }
}

/// Spawns the manifest watcher: polls the file's modification time twice a
/// second and reconciles the server's registry whenever it moves. Reconcile
/// errors are logged and retried on the next change — a bad manifest edit
/// must never take the serving process down.
fn watch_manifest(path: PathBuf, server: &DefenseServer, config: ServerConfig) {
    let registry = Arc::clone(server.registry());
    std::thread::spawn(move || {
        let mtime = |path: &PathBuf| std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let mut last_seen = mtime(&path);
        // Apply the manifest once at startup, so a server launched after a
        // crash converges to the manifest without waiting for an edit.
        let apply = |what: &str| match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Manifest::parse(&text).map_err(|e| e.to_string()))
            .and_then(|m| {
                registry
                    .reconcile(&m, config.engine)
                    .map_err(|e| e.to_string())
            }) {
            Ok(actions) => {
                for action in actions {
                    println!("manifest {what}: {action}");
                }
            }
            Err(error) => println!("manifest {what} failed (will retry on next change): {error}"),
        };
        apply("startup");
        loop {
            std::thread::sleep(std::time::Duration::from_millis(500));
            let current = mtime(&path);
            if current != last_seen {
                last_seen = current;
                apply("reload");
            }
        }
    });
}
