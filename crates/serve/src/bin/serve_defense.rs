//! Stand-alone defense server: the untrusted-cloud process of the paper's
//! deployment.
//!
//! Builds the deterministic demo Ensembler (so a `remote_client` given the
//! same `N P SEED` holds a bit-identical replica) and serves its
//! `server_outputs` stage over TCP until killed.
//!
//! Usage: `cargo run -p ensembler-serve --bin serve_defense --release \
//!     [-- ADDR [N] [P] [SEED]]`
//! Defaults: `127.0.0.1:7878 4 2 17`.

use ensembler::Defense;
use ensembler_serve::{demo_pipeline, DefenseServer, ServerConfig};
use std::sync::Arc;

fn parse_arg<T: std::str::FromStr>(position: usize, default: T) -> T {
    std::env::args()
        .nth(position)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = parse_arg(2, 4);
    let p: usize = parse_arg(3, 2);
    let seed: u64 = parse_arg(4, 17);

    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        addr.as_str(),
        ServerConfig::default(),
    )?;
    println!(
        "serving {} (N={} P={} seed={}) on {}",
        pipeline.label(),
        n,
        p,
        seed,
        server.local_addr()
    );
    println!("stop with Ctrl-C; connect with:");
    println!(
        "  cargo run -p ensembler-serve --bin remote_client --release -- {} {} {} {}",
        server.local_addr(),
        n,
        p,
        seed
    );

    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        let stats = server.stats();
        if stats != last {
            let engine = server.engine_stats();
            println!(
                "{} connections, {} requests served, {} errors sent | engine: {} batches, mean occupancy {:.2}",
                stats.connections_accepted,
                stats.requests_served,
                stats.errors_sent,
                engine.batches_executed,
                engine.mean_batch_occupancy()
            );
            last = stats;
        }
    }
}
