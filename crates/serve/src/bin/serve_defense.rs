//! Stand-alone multi-model defense server: the untrusted-cloud process of
//! the paper's deployment.
//!
//! Builds deterministic demo Ensemblers (so a `remote_client` given the same
//! `N P SEED` holds a bit-identical replica) and serves their
//! `server_outputs` stages over TCP until killed, logging a stats line
//! whenever the counters move.
//!
//! Usage: `cargo run -p ensembler-serve --bin serve_defense --release \
//!     [-- ADDR [N] [P] [SEED[,int8]] [--model NAME=N,P,SEED[,int8]]...]`
//! Defaults: `127.0.0.1:7878 4 2 17`.
//!
//! The positional `N P SEED` triple defines the **default** model (the one
//! legacy clients and nameless hellos get); an `,int8` suffix on the seed
//! quantizes it, which is how a `shard_router` int8 worker is launched —
//! the router's nameless handshake reaches the default model. Each
//! repeatable `--model` flag registers one more pipeline under its own
//! name; protocol-v3 clients pick it with `remote_client --model NAME`.
//! The operator guide, including admission-control tuning, lives in
//! `docs/SERVING.md`.

use ensembler::{Defense, QuantizedDefense};
use ensembler_serve::cli::positional;
use ensembler_serve::{demo_pipeline, DefenseServer, ModelRegistry, ModelSpec, ServerConfig};
use std::sync::Arc;

/// Splits the command line into positional arguments and `--model` specs.
fn parse_args() -> Result<(Vec<String>, Vec<ModelSpec>), Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut models = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--model" {
            let spec = args
                .next()
                .ok_or("--model needs a NAME=N,P,SEED[,int8] argument")?;
            models.push(ModelSpec::parse(&spec)?);
        } else if let Some(spec) = arg.strip_prefix("--model=") {
            models.push(ModelSpec::parse(spec)?);
        } else {
            positional.push(arg);
        }
    }
    Ok((positional, models))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (args, extra_models) = parse_args()?;
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = positional(&args, 1, 4);
    let p: usize = positional(&args, 2, 2);
    // `SEED,int8` quantizes the default model — the launch syntax for a
    // shard_router int8 worker (see docs/SERVING.md).
    let (seed_arg, int8) = match args.get(3).map(String::as_str) {
        Some(raw) => match raw.strip_suffix(",int8") {
            Some(seed) => (seed, true),
            None => (raw, false),
        },
        None => ("", false),
    };
    let seed: u64 = seed_arg.parse().unwrap_or(17);

    let mut default_model: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    if int8 {
        default_model = Arc::new(QuantizedDefense::quantize(default_model));
    }
    let config = ServerConfig::default();
    let mut registry = ModelRegistry::new("default", default_model, config.engine)?;
    for spec in &extra_models {
        registry.register(spec.name.clone(), spec.build()?, config.engine)?;
    }
    let server = DefenseServer::bind_registry(registry, addr.as_str(), config)?;

    println!(
        "serving {} model(s) on {} — default: Ensembler{} (N={n} P={p} seed={seed})",
        server.registry().len(),
        server.local_addr(),
        if int8 { "+int8" } else { "" },
    );
    for spec in &extra_models {
        println!(
            "  model {}: N={} P={} seed={}{}",
            spec.name,
            spec.n,
            spec.p,
            spec.seed,
            if spec.int8 { " int8" } else { "" }
        );
    }
    println!(
        "admission: {} connections; {} reqs / {} MiB per server, {} reqs / {} MiB per connection",
        config.admission.max_connections,
        config.admission.max_inflight_requests,
        config.admission.max_inflight_bytes >> 20,
        config.admission.max_connection_inflight_requests,
        config.admission.max_connection_inflight_bytes >> 20,
    );
    println!("stop with Ctrl-C; connect with:");
    println!(
        "  cargo run -p ensembler-serve --bin remote_client --release -- {} {} {} {}{}",
        server.local_addr(),
        n,
        p,
        seed,
        if int8 { " --int8" } else { "" },
    );

    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        let stats = server.stats();
        if stats != last {
            println!(
                "{} connections | {} served, {} rejected, {} errors | {} in flight ({} B)",
                stats.connections_accepted,
                stats.requests_served,
                stats.requests_rejected,
                stats.errors_sent,
                stats.inflight_requests,
                stats.inflight_bytes,
            );
            for model in &stats.per_model {
                if model.engine.requests_served > 0 || model.engine.queue_depth > 0 {
                    println!(
                        "  {}: {} coalesced requests in {} batches (mean occupancy {:.2}, queue depth {})",
                        model.model,
                        model.engine.requests_served,
                        model.engine.batches_executed,
                        model.engine.mean_batch_occupancy(),
                        model.engine.queue_depth,
                    );
                }
            }
            last = stats;
        }
    }
}
