//! Exports a deterministic demo Ensembler as a versioned, checksummed model
//! artifact file — the training-side half of the serving tier's model
//! lifecycle.
//!
//! The artifact captures everything `demo_pipeline` builds (config, head,
//! noise pattern, bodies, selector, tail), so a server loading the file
//! serves a pipeline bit-identical to one built in process from the same
//! `(N, P, SEED)`. The byte-level format is specified in
//! `docs/MODEL_ARTIFACTS.md`.
//!
//! Usage: `cargo run -p ensembler-serve --bin export_model --release \
//!     -- OUT.bin [N] [P] [SEED] [--int8] [--name NAME]`
//! Defaults: `4 2 17`, name `default`, full (f32) precision.
//!
//! `--int8` stamps the artifact for int8 serving: the weights are stored in
//! f32 either way (quantization is deterministic, so the loader re-derives
//! the int8 tables bit-exactly), but a server loading the file serves the
//! quantized pipeline. Artifacts are *versioned by file name* — export a new
//! file per model version rather than editing one in place, so a manifest
//! line naming the file pins exactly one set of weights.

use ensembler::save_pipeline;
use ensembler_nn::ArtifactPrecision;
use ensembler_serve::cli::positional;
use ensembler_serve::demo_pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut positionals = Vec::new();
    let mut int8 = false;
    let mut name = "default".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--int8" {
            int8 = true;
        } else if arg == "--name" {
            name = args.next().ok_or("--name needs an argument")?;
        } else if let Some(value) = arg.strip_prefix("--name=") {
            name = value.to_string();
        } else {
            positionals.push(arg);
        }
    }
    let Some(out) = positionals.first() else {
        return Err("usage: export_model OUT.bin [N] [P] [SEED] [--int8] [--name NAME]".into());
    };
    let n: usize = positional(&positionals, 1, 4);
    let p: usize = positional(&positionals, 2, 2);
    let seed: u64 = positional(&positionals, 3, 17);

    let pipeline = demo_pipeline(n, p, seed)?;
    let precision = if int8 {
        ArtifactPrecision::Int8
    } else {
        ArtifactPrecision::F32
    };
    let artifact = save_pipeline(&pipeline, &name, precision);
    artifact.write_to_file(out)?;
    let bytes = std::fs::metadata(out)?.len();
    println!(
        "exported {} ({:?}, N={n} P={p} seed={seed}, {} parameters) to {out} ({bytes} B)",
        artifact.label,
        precision,
        artifact.scalar_count(),
    );
    println!("serve it with:  serve_defense ADDR --model {name}={out}");
    Ok(())
}
