//! Stand-alone edge client: connects to a running `serve_defense` process,
//! runs split inference with the `server_outputs` stage on the remote side,
//! and cross-checks the result against a fully local prediction.
//!
//! Usage: `cargo run -p ensembler-serve --bin remote_client --release \
//!     [-- ADDR [N] [P] [SEED] [BATCH] [--model NAME] [--int8] \
//!      [--retries K] [--backoff-ms MS]]`
//! Defaults: `127.0.0.1:7878 4 2 17 8` — the `N P SEED` triple (and the
//! `--int8` flag) must match the server-side model so both processes hold
//! bit-identical weights. `--model NAME` asks a multi-model server for one
//! of its named models over the protocol-v3 handshake; without it the server
//! serves its default model.
//!
//! Transient `Overloaded` rejections (admission budgets, the connection
//! limit, a draining replica) are retried with capped exponential backoff:
//! up to `--retries` extra attempts (default 3), starting at `--backoff-ms`
//! (default 50) and doubling per attempt, capped at five seconds. The
//! retry-on-Overloaded loop is the client half of the server's admission
//! contract; `--retries 0` restores fail-on-first-rejection.

use ensembler::{Defense, QuantizedDefense};
use ensembler_serve::cli::positional;
use ensembler_serve::{demo_pipeline, RemoteDefense};
use ensembler_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parsed command line: positional arguments, `--model NAME`, `--int8`, and
/// the Overloaded-retry policy.
struct Args {
    positional: Vec<String>,
    model: Option<String>,
    int8: bool,
    retries: u32,
    backoff_ms: u64,
}

/// Splits the command line into positional arguments and the flags.
fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut model = None;
    let mut int8 = false;
    let mut retries = 3;
    let mut backoff_ms = 50;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--model" {
            model = Some(args.next().ok_or("--model needs a NAME argument")?);
        } else if let Some(name) = arg.strip_prefix("--model=") {
            model = Some(name.to_string());
        } else if arg == "--int8" {
            int8 = true;
        } else if arg == "--retries" {
            retries = args.next().ok_or("--retries needs a count")?.parse()?;
        } else if let Some(count) = arg.strip_prefix("--retries=") {
            retries = count.parse()?;
        } else if arg == "--backoff-ms" {
            backoff_ms = args
                .next()
                .ok_or("--backoff-ms needs milliseconds")?
                .parse()?;
        } else if let Some(ms) = arg.strip_prefix("--backoff-ms=") {
            backoff_ms = ms.parse()?;
        } else {
            positional.push(arg);
        }
    }
    Ok(Args {
        positional,
        model,
        int8,
        retries,
        backoff_ms,
    })
}

/// The longest a single backoff sleep may grow, whatever `--backoff-ms` and
/// the doubling say.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Runs `op`, retrying typed `Overloaded` rejections (and only those) with
/// capped exponential backoff. Any other failure propagates immediately —
/// a checksum mismatch or replica mismatch never gets better by waiting.
fn retry_overloaded<T, E: std::fmt::Display>(
    what: &str,
    retries: u32,
    backoff_ms: u64,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut delay = Duration::from_millis(backoff_ms);
    for attempt in 0..retries {
        match op() {
            Err(error) if error.to_string().contains("Overloaded") => {
                eprintln!(
                    "{what} rejected ({error}); retry {}/{retries} in {delay:?}",
                    attempt + 1
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(BACKOFF_CAP);
            }
            outcome => return outcome,
        }
    }
    op()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Args {
        positional: args,
        model,
        int8,
        retries,
        backoff_ms,
    } = parse_args()?;
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = positional(&args, 1, 4);
    let p: usize = positional(&args, 2, 2);
    let seed: u64 = positional(&args, 3, 17);
    let batch: usize = positional(&args, 4, 8);

    let local: Arc<dyn Defense> = if int8 {
        Arc::new(QuantizedDefense::quantize(Arc::new(demo_pipeline(
            n, p, seed,
        )?)))
    } else {
        Arc::new(demo_pipeline(n, p, seed)?)
    };
    let remote = retry_overloaded("handshake", retries, backoff_ms, || match &model {
        Some(name) => RemoteDefense::connect_model(Arc::clone(&local), addr.as_str(), name),
        None => RemoteDefense::connect(Arc::clone(&local), addr.as_str()),
    })?;
    println!(
        "connected to {} at {addr} (protocol v{}{}{})",
        remote.peer_label(),
        remote.negotiated_version(),
        match remote.model() {
            Some(name) => format!(", model {name}"),
            None => ", default model".to_string(),
        },
        if remote.uses_quantized_frames() {
            ", quantized frames"
        } else {
            ""
        }
    );

    let config = local.config().clone();
    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );

    let start = Instant::now();
    let remote_logits =
        retry_overloaded("request", retries, backoff_ms, || remote.predict(&images))?;
    let remote_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let local_logits = local.predict(&images)?;
    let local_ms = start.elapsed().as_secs_f64() * 1e3;

    let max_diff = remote_logits
        .data()
        .iter()
        .zip(local_logits.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!("batch of {batch}: remote {remote_ms:.2} ms, in-process {local_ms:.2} ms");
    println!(
        "max |remote - local| over {} logits: {max_diff} ({})",
        remote_logits.len(),
        if max_diff == 0.0 {
            "bit-identical"
        } else {
            "MISMATCH — do N/P/SEED/--int8 match the served model?"
        }
    );
    if max_diff != 0.0 {
        std::process::exit(1);
    }
    Ok(())
}
