//! Stand-alone edge client: connects to a running `serve_defense` process,
//! runs split inference with the `server_outputs` stage on the remote side,
//! and cross-checks the result against a fully local prediction.
//!
//! Usage: `cargo run -p ensembler-serve --bin remote_client --release \
//!     [-- ADDR [N] [P] [SEED] [BATCH] [--model NAME] [--int8]]`
//! Defaults: `127.0.0.1:7878 4 2 17 8` — the `N P SEED` triple (and the
//! `--int8` flag) must match the server-side model so both processes hold
//! bit-identical weights. `--model NAME` asks a multi-model server for one
//! of its named models over the protocol-v3 handshake; without it the server
//! serves its default model.

use ensembler::{Defense, QuantizedDefense};
use ensembler_serve::cli::positional;
use ensembler_serve::{demo_pipeline, RemoteDefense};
use ensembler_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// Parsed command line: positional arguments, `--model NAME`, `--int8`.
struct Args {
    positional: Vec<String>,
    model: Option<String>,
    int8: bool,
}

/// Splits the command line into positional arguments and the flags.
fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut model = None;
    let mut int8 = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--model" {
            model = Some(args.next().ok_or("--model needs a NAME argument")?);
        } else if let Some(name) = arg.strip_prefix("--model=") {
            model = Some(name.to_string());
        } else if arg == "--int8" {
            int8 = true;
        } else {
            positional.push(arg);
        }
    }
    Ok(Args {
        positional,
        model,
        int8,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Args {
        positional: args,
        model,
        int8,
    } = parse_args()?;
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = positional(&args, 1, 4);
    let p: usize = positional(&args, 2, 2);
    let seed: u64 = positional(&args, 3, 17);
    let batch: usize = positional(&args, 4, 8);

    let local: Arc<dyn Defense> = if int8 {
        Arc::new(QuantizedDefense::quantize(Arc::new(demo_pipeline(
            n, p, seed,
        )?)))
    } else {
        Arc::new(demo_pipeline(n, p, seed)?)
    };
    let remote = match &model {
        Some(name) => RemoteDefense::connect_model(Arc::clone(&local), addr.as_str(), name)?,
        None => RemoteDefense::connect(Arc::clone(&local), addr.as_str())?,
    };
    println!(
        "connected to {} at {addr} (protocol v{}{}{})",
        remote.peer_label(),
        remote.negotiated_version(),
        match remote.model() {
            Some(name) => format!(", model {name}"),
            None => ", default model".to_string(),
        },
        if remote.uses_quantized_frames() {
            ", quantized frames"
        } else {
            ""
        }
    );

    let config = local.config().clone();
    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );

    let start = Instant::now();
    let remote_logits = remote.predict(&images)?;
    let remote_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let local_logits = local.predict(&images)?;
    let local_ms = start.elapsed().as_secs_f64() * 1e3;

    let max_diff = remote_logits
        .data()
        .iter()
        .zip(local_logits.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!("batch of {batch}: remote {remote_ms:.2} ms, in-process {local_ms:.2} ms");
    println!(
        "max |remote - local| over {} logits: {max_diff} ({})",
        remote_logits.len(),
        if max_diff == 0.0 {
            "bit-identical"
        } else {
            "MISMATCH — do N/P/SEED/--int8 match the served model?"
        }
    );
    if max_diff != 0.0 {
        std::process::exit(1);
    }
    Ok(())
}
