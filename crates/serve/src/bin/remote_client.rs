//! Stand-alone edge client: connects to a running `serve_defense` process,
//! runs split inference with the `server_outputs` stage on the remote side,
//! and cross-checks the result against a fully local prediction.
//!
//! Usage: `cargo run -p ensembler-serve --bin remote_client --release \
//!     [-- ADDR [N] [P] [SEED] [BATCH]]`
//! Defaults: `127.0.0.1:7878 4 2 17 8` — the `N P SEED` triple must match
//! the server's so both processes hold bit-identical weights.

use ensembler::Defense;
use ensembler_serve::{demo_pipeline, RemoteDefense};
use ensembler_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Instant;

fn parse_arg<T: std::str::FromStr>(position: usize, default: T) -> T {
    std::env::args()
        .nth(position)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let n: usize = parse_arg(2, 4);
    let p: usize = parse_arg(3, 2);
    let seed: u64 = parse_arg(4, 17);
    let batch: usize = parse_arg(5, 8);

    let local: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    let remote = RemoteDefense::connect(Arc::clone(&local), addr.as_str())?;
    println!(
        "connected to {} at {addr} (protocol v{})",
        remote.peer_label(),
        remote.negotiated_version()
    );

    let config = local.config().clone();
    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );

    let start = Instant::now();
    let remote_logits = remote.predict(&images)?;
    let remote_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let local_logits = local.predict(&images)?;
    let local_ms = start.elapsed().as_secs_f64() * 1e3;

    let max_diff = remote_logits
        .data()
        .iter()
        .zip(local_logits.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!("batch of {batch}: remote {remote_ms:.2} ms, in-process {local_ms:.2} ms");
    println!(
        "max |remote - local| over {} logits: {max_diff} ({})",
        remote_logits.len(),
        if max_diff == 0.0 {
            "bit-identical"
        } else {
            "MISMATCH — do N/P/SEED match the server?"
        }
    );
    if max_diff != 0.0 {
        std::process::exit(1);
    }
    Ok(())
}
