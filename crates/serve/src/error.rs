//! Error type for the networked serving layer.

use crate::protocol::WireError;
use ensembler::EnsemblerError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong while speaking the wire protocol or serving
/// a defense over it.
///
/// # Examples
///
/// ```
/// use ensembler_serve::ServeError;
///
/// let err = ServeError::Frame("bad magic".to_string());
/// assert!(err.to_string().contains("bad magic"));
/// ```
#[derive(Debug)]
pub enum ServeError {
    /// The underlying socket failed (includes unexpected EOF).
    Io(std::io::Error),
    /// A frame or payload could not be parsed.
    Frame(String),
    /// A frame parsed but its CRC-32 did not match.
    Checksum {
        /// The checksum computed over the received bytes.
        expected: u32,
        /// The checksum the frame carried.
        found: u32,
    },
    /// The peer speaks a protocol version this build cannot.
    UnsupportedVersion {
        /// The version the peer offered or stamped on the frame.
        offered: u16,
        /// The highest version this build supports.
        supported: u16,
    },
    /// The peer reported an error over the wire.
    Remote(WireError),
    /// The peer sent a legal message that is not valid in the current
    /// connection state.
    Protocol(String),
    /// A model registry was misconfigured (bad model name or spec, duplicate
    /// registration).
    Registry(String),
    /// The local defense pipeline failed.
    Defense(EnsemblerError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket failure: {e}"),
            ServeError::Frame(msg) => write!(f, "malformed frame: {msg}"),
            ServeError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:#010x}, frame carried {found:#010x}"
            ),
            ServeError::UnsupportedVersion { offered, supported } => write!(
                f,
                "unsupported protocol version {offered} (this build speaks up to {supported})"
            ),
            ServeError::Remote(wire) => {
                write!(f, "peer reported {:?}: {}", wire.code, wire.message)
            }
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Registry(msg) => write!(f, "model registry error: {msg}"),
            ServeError::Defense(e) => write!(f, "defense failure: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Defense(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<EnsemblerError> for ServeError {
    fn from(e: EnsemblerError) -> Self {
        ServeError::Defense(e)
    }
}

impl From<ServeError> for EnsemblerError {
    /// Collapses a serving failure into the [`EnsemblerError::Transport`]
    /// variant so [`crate::RemoteDefense`] can satisfy the
    /// [`ensembler::Defense`] signatures.
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Defense(inner) => inner,
            other => EnsemblerError::Transport(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn display_messages_are_informative() {
        let io: ServeError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(io.to_string().contains("socket failure"));
        assert!(ServeError::Checksum {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum mismatch"));
        assert!(ServeError::UnsupportedVersion {
            offered: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(ServeError::Remote(WireError {
            code: ErrorCode::Inference,
            message: "bad shape".to_string()
        })
        .to_string()
        .contains("bad shape"));
    }

    #[test]
    fn defense_errors_pass_through_the_conversion() {
        let original = EnsemblerError::EmptyDataset;
        let through: EnsemblerError = ServeError::Defense(original.clone()).into();
        assert_eq!(through, original);
        let transport: EnsemblerError = ServeError::Frame("junk".to_string()).into();
        assert!(matches!(transport, EnsemblerError::Transport(_)));
    }
}
