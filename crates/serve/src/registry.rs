//! [`ModelRegistry`]: the model-name → pipeline map behind a multi-model
//! [`DefenseServer`](crate::DefenseServer), mutable on a live server.
//!
//! One server process hosts any number of [`Defense`] pipelines, each behind
//! its own coalescing [`InferenceEngine`]. The protocol-v3 handshake carries
//! the model name a client wants; legacy (v1/v2) clients, which cannot name
//! a model, are pinned to the registry's **default** model, so a registry
//! with one model behaves exactly like the single-model servers of earlier
//! protocol versions.
//!
//! Engines are per model *version* on purpose: requests for the same version
//! coalesce into shared mini-batches across connections, while requests for
//! different models (or different versions of one model) never meet in a
//! queue.
//!
//! # The model lifecycle
//!
//! Since PR 8 the registry is **mutable at runtime**. Each name maps to a
//! [`ModelSlot`] — a stable handle connections pin at handshake time — and
//! the slot's *contents* (the primary [`InferenceEngine`] plus an optional
//! weighted canary version) can be replaced while the server runs:
//!
//! * [`ModelRegistry::register`] / [`ModelRegistry::remove`] add and retire
//!   whole model names.
//! * [`ModelRegistry::swap`] replaces a slot's primary engine. In-flight
//!   requests hold an `Arc` to the old engine and drain to completion on it
//!   (the same ingredient the PR-5 shutdown drain uses), while every request
//!   arriving after the swap routes to the new engine — zero requests are
//!   dropped.
//! * [`ModelRegistry::set_canary`] installs a second version under the same
//!   name with a deterministic traffic split; [`ModelRegistry::promote`]
//!   makes it the primary and [`ModelRegistry::clear_canary`] rolls it back.
//!
//! Swapped-in versions must stay **handshake-compatible** with the slot
//! (same defence label, ensemble size, selected count and head shape):
//! connected clients verified those against their local replica at hello
//! time, so an incompatible "upgrade" would silently break them mid-stream.
//! An incompatible model is a new *name*, not a new version.

use crate::error::ServeError;
use ensembler::artifact::load_defense;
use ensembler::{Defense, EngineConfig, EngineStats, InferenceEngine, QuantizedDefense};
use ensembler_nn::ModelArtifact;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// Which version of a model slot served (or would serve) a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionRole {
    /// The slot's primary version: the default route.
    Primary,
    /// The slot's canary version, receiving its configured traffic share.
    Canary,
}

impl std::fmt::Display for VersionRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionRole::Primary => write!(f, "primary"),
            VersionRole::Canary => write!(f, "canary"),
        }
    }
}

/// A snapshot of one registered model *version*'s serving counters, as
/// reported inside [`ServerStats`](crate::ServerStats). A slot with a live
/// canary contributes two entries (one per version), which is what lets an
/// operator compare request counts and batch behaviour before promoting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// The registry name of the model.
    pub model: String,
    /// The version tag of this entry's engine.
    pub version: String,
    /// Whether this entry is the slot's primary or its canary.
    pub role: VersionRole,
    /// The counters of the engine serving it (requests, batches, queue
    /// depth).
    pub engine: EngineStats,
}

/// One served model version: a tag the operator chose (typically the source
/// spec or artifact file name) plus the engine serving it.
#[derive(Debug, Clone)]
struct ModelVersion {
    version: String,
    engine: Arc<InferenceEngine<dyn Defense>>,
}

#[derive(Debug)]
struct Canary {
    version: ModelVersion,
    /// Share of requests routed to the canary, in percent (1..=99).
    percent: u8,
}

#[derive(Debug)]
struct SlotState {
    primary: ModelVersion,
    canary: Option<Canary>,
}

/// The stable per-name handle connections pin at handshake time.
///
/// The slot outlives every version it has ever served: a connection holds an
/// `Arc<ModelSlot>` for its lifetime and resolves the *current* engine per
/// request, so a [`ModelRegistry::swap`] takes effect for the very next
/// request on every live connection while requests already submitted drain
/// on the engine they started on.
#[derive(Debug)]
pub struct ModelSlot {
    name: String,
    state: RwLock<SlotState>,
}

impl ModelSlot {
    fn new(name: String, version: ModelVersion) -> Self {
        Self {
            name,
            state: RwLock::new(SlotState {
                primary: version,
                canary: None,
            }),
        }
    }

    /// The registry name this slot serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current primary engine (handshakes describe this version to the
    /// client).
    pub fn primary_engine(&self) -> Arc<InferenceEngine<dyn Defense>> {
        Arc::clone(
            &self
                .state
                .read()
                .expect("model slot lock is never poisoned")
                .primary
                .engine,
        )
    }

    /// The current primary version tag.
    pub fn primary_version(&self) -> String {
        self.state
            .read()
            .expect("model slot lock is never poisoned")
            .primary
            .version
            .clone()
    }

    /// The current canary version tag and traffic percentage, if a canary is
    /// installed.
    pub fn canary(&self) -> Option<(String, u8)> {
        self.state
            .read()
            .expect("model slot lock is never poisoned")
            .canary
            .as_ref()
            .map(|c| (c.version.version.clone(), c.percent))
    }

    /// Routes one request: returns the engine that must serve a request whose
    /// deterministic routing key is `route_key`, plus which role it plays.
    ///
    /// The split is deterministic in the key — the same request bytes always
    /// land on the same version — so a retried or replayed request cannot
    /// flap between versions, and a test can verify the observed split
    /// exactly.
    pub fn engine_for(&self, route_key: u64) -> (Arc<InferenceEngine<dyn Defense>>, VersionRole) {
        let state = self
            .state
            .read()
            .expect("model slot lock is never poisoned");
        if let Some(canary) = &state.canary {
            if (route_key % 100) < u64::from(canary.percent) {
                return (Arc::clone(&canary.version.engine), VersionRole::Canary);
            }
        }
        (Arc::clone(&state.primary.engine), VersionRole::Primary)
    }

    /// Stats entries for every live version of this slot.
    fn stats(&self) -> Vec<ModelStats> {
        let state = self
            .state
            .read()
            .expect("model slot lock is never poisoned");
        let mut stats = vec![ModelStats {
            model: self.name.clone(),
            version: state.primary.version.clone(),
            role: VersionRole::Primary,
            engine: state.primary.engine.stats(),
        }];
        if let Some(canary) = &state.canary {
            stats.push(ModelStats {
                model: self.name.clone(),
                version: canary.version.version.clone(),
                role: VersionRole::Canary,
                engine: canary.version.engine.stats(),
            });
        }
        stats
    }
}

/// The deterministic per-request canary routing key: FNV-1a over a request's
/// raw payload bytes. Stable across processes and versions, cheap relative
/// to inference, and — because it hashes the request *content* — independent
/// of which connection or retry attempt carried the request.
pub fn route_key(payload: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps model names to served pipelines, one [`InferenceEngine`] per model
/// version, mutable while the server runs.
///
/// Connections resolve their [`ModelSlot`] at handshake time and the current
/// engine per request, so a slot mutation ([`ModelRegistry::swap`],
/// [`ModelRegistry::set_canary`], [`ModelRegistry::promote`]) is visible to
/// every live connection at its next request without dropping any request in
/// flight.
///
/// # Examples
///
/// Two models in one registry — connections that do not name a model get
/// `"default"` — then a zero-downtime swap of one of them:
///
/// ```
/// use ensembler::EngineConfig;
/// use ensembler_serve::{demo_pipeline, ModelRegistry};
/// use std::sync::Arc;
///
/// let registry = ModelRegistry::new(
///     "default",
///     Arc::new(demo_pipeline(2, 1, 7)?),
///     EngineConfig::default(),
/// )?
/// .with_model("alpha", Arc::new(demo_pipeline(3, 2, 8)?), EngineConfig::default())?;
///
/// assert_eq!(registry.len(), 2);
/// assert_eq!(registry.resolve(None).unwrap().name(), "default");
/// assert_eq!(registry.resolve(Some("alpha")).unwrap().name(), "alpha");
/// assert!(registry.resolve(Some("missing")).is_none());
///
/// // Hot-swap alpha to new weights (same shape, different seed): takes
/// // effect immediately, no `&mut` required.
/// registry.swap(
///     "alpha",
///     "3,2,99",
///     Arc::new(demo_pipeline(3, 2, 99)?),
///     EngineConfig::default(),
/// )?;
/// assert_eq!(registry.get("alpha").unwrap().primary_version(), "3,2,99");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    default_name: String,
    slots: RwLock<BTreeMap<String, Arc<ModelSlot>>>,
}

/// The version tag models registered without an explicit version get.
const INITIAL_VERSION: &str = "v0";

impl ModelRegistry {
    /// Creates a registry whose default model is `default_name` serving
    /// `defense` through an engine configured by `engine`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid model name or engine configuration.
    pub fn new(
        default_name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<Self, ServeError> {
        let default_name = default_name.into();
        let registry = Self {
            default_name: default_name.clone(),
            slots: RwLock::new(BTreeMap::new()),
        };
        registry.register(default_name, defense, engine)?;
        Ok(registry)
    }

    /// Registers one more model under `name` with the initial version tag.
    ///
    /// Takes `&self`: models can be added to a live server's registry.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is empty, contains whitespace or `=` (the
    /// `--model name=spec` flag separator), is already registered, or the
    /// engine configuration is invalid.
    pub fn register(
        &self,
        name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<(), ServeError> {
        self.register_version(name, INITIAL_VERSION, defense, engine)
    }

    /// Registers one more model under `name` with an explicit version tag
    /// (conventionally the source spec or artifact file name).
    ///
    /// # Errors
    ///
    /// As for [`ModelRegistry::register`].
    pub fn register_version(
        &self,
        name: impl Into<String>,
        version: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        if name.is_empty() || name.contains(char::is_whitespace) || name.contains('=') {
            return Err(ServeError::Registry(format!(
                "invalid model name {name:?}: names must be non-empty and free of whitespace and '='"
            )));
        }
        let mut slots = self.slots.write().expect("registry lock is never poisoned");
        if slots.contains_key(&name) {
            return Err(ServeError::Registry(format!(
                "model {name:?} is already registered"
            )));
        }
        let engine = InferenceEngine::shared(defense, engine).map_err(ServeError::Defense)?;
        let version = ModelVersion {
            version: version.into(),
            engine,
        };
        slots.insert(name.clone(), Arc::new(ModelSlot::new(name, version)));
        Ok(())
    }

    /// Builder-style [`ModelRegistry::register`].
    ///
    /// # Errors
    ///
    /// As for [`ModelRegistry::register`].
    pub fn with_model(
        self,
        name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<Self, ServeError> {
        self.register(name, defense, engine)?;
        Ok(self)
    }

    /// Retires a model name. Connections already pinned to the slot keep
    /// serving (they drain away as their clients disconnect); new handshakes
    /// for the name are refused.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown name, or for the default model —
    /// legacy clients depend on it, so it can be swapped but never removed.
    pub fn remove(&self, name: &str) -> Result<(), ServeError> {
        if name == self.default_name {
            return Err(ServeError::Registry(format!(
                "the default model {name:?} cannot be removed (swap it instead)"
            )));
        }
        let mut slots = self.slots.write().expect("registry lock is never poisoned");
        if slots.remove(name).is_none() {
            return Err(ServeError::Registry(format!(
                "model {name:?} is not registered"
            )));
        }
        Ok(())
    }

    /// Replaces the primary version of a live model slot. Requests already
    /// submitted drain on the old engine; every request arriving after the
    /// swap is served by the new one. Any installed canary is cleared — it
    /// was staged against the version that just left.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown name, an invalid engine
    /// configuration, or a replacement that is not handshake-compatible
    /// with the current primary (label, ensemble size, selected count and
    /// head shape must match — connected clients verified those at hello
    /// time).
    pub fn swap(
        &self,
        name: &str,
        version: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<(), ServeError> {
        let slot = self.require(name)?;
        check_compatible(&slot.primary_engine(), defense.as_ref(), name)?;
        let engine = InferenceEngine::shared(defense, engine).map_err(ServeError::Defense)?;
        let mut state = slot
            .state
            .write()
            .expect("model slot lock is never poisoned");
        // Displace rather than drop-in-place: tearing the old engine down
        // joins its workers, which must wait for in-flight requests — that
        // happens on whichever serving thread releases the last pin, never
        // here under the slot lock.
        let displaced = std::mem::replace(
            &mut state.primary,
            ModelVersion {
                version: version.into(),
                engine,
            },
        );
        let displaced_canary = state.canary.take();
        drop(state);
        drop(displaced_canary);
        drop(displaced);
        Ok(())
    }

    /// Installs (or replaces) a canary version under `name`, receiving
    /// `percent` of the slot's traffic (deterministically per request).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown name, a percentage outside `1..=99`,
    /// an invalid engine configuration, or a canary that is not
    /// handshake-compatible with the slot's primary.
    pub fn set_canary(
        &self,
        name: &str,
        version: impl Into<String>,
        percent: u8,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<(), ServeError> {
        if !(1..=99).contains(&percent) {
            return Err(ServeError::Registry(format!(
                "canary percentage must be in 1..=99, got {percent} \
                 (0% is no canary, 100% is a swap)"
            )));
        }
        let slot = self.require(name)?;
        check_compatible(&slot.primary_engine(), defense.as_ref(), name)?;
        let engine = InferenceEngine::shared(defense, engine).map_err(ServeError::Defense)?;
        let mut state = slot
            .state
            .write()
            .expect("model slot lock is never poisoned");
        let displaced = state.canary.replace(Canary {
            version: ModelVersion {
                version: version.into(),
                engine,
            },
            percent,
        });
        drop(state);
        drop(displaced);
        Ok(())
    }

    /// Promotes the canary to primary: the canary engine (with its warm
    /// caches and counters) becomes the slot's primary and the canary slot
    /// empties. The outgoing primary drains exactly like a swapped-out
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown name or a slot with no canary.
    pub fn promote(&self, name: &str) -> Result<(), ServeError> {
        let slot = self.require(name)?;
        let mut state = slot
            .state
            .write()
            .expect("model slot lock is never poisoned");
        match state.canary.take() {
            Some(canary) => {
                let displaced = std::mem::replace(&mut state.primary, canary.version);
                drop(state);
                drop(displaced);
                Ok(())
            }
            None => Err(ServeError::Registry(format!(
                "model {name:?} has no canary to promote"
            ))),
        }
    }

    /// Rolls a canary back: removes it (if any) and routes all traffic to
    /// the primary again.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown name.
    pub fn clear_canary(&self, name: &str) -> Result<(), ServeError> {
        let slot = self.require(name)?;
        let displaced = slot
            .state
            .write()
            .expect("model slot lock is never poisoned")
            .canary
            .take();
        drop(displaced);
        Ok(())
    }

    fn require(&self, name: &str) -> Result<Arc<ModelSlot>, ServeError> {
        self.get(name)
            .ok_or_else(|| ServeError::Registry(format!("model {name:?} is not registered")))
    }

    /// Resolves a handshake's (optional) model request to the slot serving
    /// it; `None` requests the default model. Returns `None` for a name this
    /// registry does not serve.
    pub fn resolve(&self, requested: Option<&str>) -> Option<Arc<ModelSlot>> {
        self.get(requested.unwrap_or(&self.default_name))
    }

    /// The slot serving `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<ModelSlot>> {
        self.slots
            .read()
            .expect("registry lock is never poisoned")
            .get(name)
            .map(Arc::clone)
    }

    /// The name legacy (pre-v3) connections and nameless hellos resolve to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The engine currently serving the default model's primary version.
    pub fn default_engine(&self) -> Arc<InferenceEngine<dyn Defense>> {
        self.get(&self.default_name)
            .expect("the constructor registers the default model and remove() refuses it")
            .primary_engine()
    }

    /// Registered model names, in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.slots
            .read()
            .expect("registry lock is never poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered models (always at least 1).
    pub fn len(&self) -> usize {
        self.slots
            .read()
            .expect("registry lock is never poisoned")
            .len()
    }

    /// Whether the registry is empty — never true, the constructor requires
    /// a default model; provided because clippy expects `is_empty` next to
    /// `len`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-version engine counters, in sorted name order (a slot with a
    /// canary contributes two entries).
    pub fn stats(&self) -> Vec<ModelStats> {
        let slots: Vec<Arc<ModelSlot>> = self
            .slots
            .read()
            .expect("registry lock is never poisoned")
            .values()
            .map(Arc::clone)
            .collect();
        slots.iter().flat_map(|slot| slot.stats()).collect()
    }
}

/// The handshake-compatibility gate for swaps and canaries: connected
/// clients cross-checked the ack's label / N / P against their local replica
/// and validate response shapes against the head output, so a version that
/// changes any of those must be a new model *name*.
fn check_compatible(
    current: &Arc<InferenceEngine<dyn Defense>>,
    replacement: &dyn Defense,
    name: &str,
) -> Result<(), ServeError> {
    let current = current.defense();
    let mismatches = [
        ("label", current.label() != replacement.label()),
        (
            "ensemble size",
            current.ensemble_size() != replacement.ensemble_size(),
        ),
        (
            "selected count",
            current.selected_count() != replacement.selected_count(),
        ),
        (
            "head output shape",
            current.config().head_output_shape() != replacement.config().head_output_shape(),
        ),
    ];
    if let Some((what, _)) = mismatches.iter().find(|(_, differs)| *differs) {
        return Err(ServeError::Registry(format!(
            "replacement for model {name:?} changes its {what}; connected clients verified that \
             at handshake time — register an incompatible model under a new name instead"
        )));
    }
    Ok(())
}

/// Where a served model comes from: a deterministic demo-pipeline spec
/// (`N,P,SEED[,int8]`) or a binary model artifact file exported by
/// `export_model`.
///
/// The [`std::fmt::Display`] form is the canonical *version tag* the
/// registry records for the model, which is what makes manifest
/// reconciliation idempotent: a model is re-swapped only when its source
/// text changes. Artifact edits therefore belong in a *new file name* —
/// which versioned artifacts want anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// Build [`crate::demo_pipeline`]`(n, p, seed)`, quantized if `int8`.
    Demo {
        /// Ensemble size `N`.
        n: usize,
        /// Secretly selected count `P`.
        p: usize,
        /// Weight seed shared by server and replica.
        seed: u64,
        /// Whether to serve the int8-quantized pipeline.
        int8: bool,
    },
    /// Load a binary model artifact from this path.
    Artifact(PathBuf),
}

impl std::fmt::Display for ModelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelSource::Demo { n, p, seed, int8 } => {
                write!(f, "{n},{p},{seed}")?;
                if *int8 {
                    write!(f, ",int8")?;
                }
                Ok(())
            }
            ModelSource::Artifact(path) => write!(f, "{}", path.display()),
        }
    }
}

impl ModelSource {
    /// Parses a source: text containing a comma is a `N,P,SEED[,int8]` demo
    /// spec; anything else names an artifact file.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] for a malformed demo spec or an
    /// empty path.
    pub fn parse(raw: &str) -> Result<Self, ServeError> {
        let bad = |why: &str| {
            ServeError::Registry(format!(
                "bad model source {raw:?}: {why} (expected N,P,SEED[,int8] or an artifact path)"
            ))
        };
        if raw.is_empty() {
            return Err(bad("empty source"));
        }
        if !raw.contains(',') {
            return Ok(ModelSource::Artifact(PathBuf::from(raw)));
        }
        let fields: Vec<&str> = raw.split(',').collect();
        let int8 = match fields.as_slice() {
            [_, _, _] => false,
            [_, _, _, "int8"] => true,
            _ => return Err(bad("expected 3 fields, or 4 ending in 'int8'")),
        };
        let n = fields[0].parse().map_err(|_| bad("N is not a number"))?;
        let p = fields[1].parse().map_err(|_| bad("P is not a number"))?;
        let seed = fields[2].parse().map_err(|_| bad("SEED is not a number"))?;
        Ok(ModelSource::Demo { n, p, seed, int8 })
    }

    /// Builds the pipeline this source describes: the deterministic demo
    /// pipeline (see [`crate::demo_pipeline`]), or the model reconstructed
    /// from the named artifact file.
    ///
    /// # Errors
    ///
    /// Returns an error if the demo spec is not a valid selection, or if the
    /// artifact cannot be read, fails its checksum, or does not describe a
    /// buildable model.
    pub fn build(&self) -> Result<Arc<dyn Defense>, ServeError> {
        match self {
            ModelSource::Demo { n, p, seed, int8 } => {
                let pipeline = Arc::new(crate::demo_pipeline(*n, *p, *seed)?);
                Ok(if *int8 {
                    Arc::new(QuantizedDefense::quantize(pipeline))
                } else {
                    pipeline
                })
            }
            ModelSource::Artifact(path) => {
                let artifact = ModelArtifact::read_from_file(path)
                    .map_err(|e| ServeError::Registry(e.to_string()))?;
                load_defense(&artifact).map_err(|e| ServeError::Registry(e.to_string()))
            }
        }
    }
}

/// A parsed `--model name=SOURCE` flag (or manifest line): everything
/// `serve_defense` (or a client building the matching replica) needs to
/// construct one model and register it under `name`.
///
/// # Examples
///
/// ```
/// use ensembler_serve::{ModelSource, ModelSpec};
///
/// let spec = ModelSpec::parse("alpha=3,2,17")?;
/// assert_eq!(spec.name, "alpha");
/// assert_eq!(
///     spec.source,
///     ModelSource::Demo { n: 3, p: 2, seed: 17, int8: false }
/// );
/// let spec = ModelSpec::parse("beta=2,1,9,int8")?;
/// // The spec builds the pipeline it describes.
/// let defense = spec.build()?;
/// assert_eq!(defense.ensemble_size(), 2);
/// assert!(defense.label().ends_with("+int8"));
/// // A source without commas names an artifact file.
/// let spec = ModelSpec::parse("gamma=models/gamma-2026-08.bin")?;
/// assert!(matches!(spec.source, ModelSource::Artifact(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name the model is served under.
    pub name: String,
    /// Where the served pipeline comes from.
    pub source: ModelSource,
}

impl ModelSpec {
    /// Parses `name=N,P,SEED[,int8]` or `name=path/to/artifact.bin`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] when the spec does not match that
    /// shape.
    pub fn parse(raw: &str) -> Result<Self, ServeError> {
        let (name, rest) = raw.split_once('=').ok_or_else(|| {
            ServeError::Registry(format!(
                "bad model spec {raw:?}: missing '=' (expected name=N,P,SEED[,int8] or name=artifact.bin)"
            ))
        })?;
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(ServeError::Registry(format!(
                "bad model spec {raw:?}: empty or whitespace model name"
            )));
        }
        Ok(Self {
            name: name.to_string(),
            source: ModelSource::parse(rest)?,
        })
    }

    /// Builds the pipeline this spec describes (see [`ModelSource::build`]).
    ///
    /// # Errors
    ///
    /// As for [`ModelSource::build`].
    pub fn build(&self) -> Result<Arc<dyn Defense>, ServeError> {
        self.source.build()
    }

    /// The canonical version tag for this spec's source.
    pub fn version(&self) -> String {
        self.source.to_string()
    }
}

/// A parsed `--canary name=SOURCE@PCT%` flag (or manifest line): a second
/// version to serve under an existing model name, taking `percent` of its
/// traffic.
///
/// # Examples
///
/// ```
/// use ensembler_serve::CanarySpec;
///
/// let canary = CanarySpec::parse("alpha=3,2,99@25%")?;
/// assert_eq!((canary.spec.name.as_str(), canary.percent), ("alpha", 25));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanarySpec {
    /// The model name and canary source.
    pub spec: ModelSpec,
    /// Share of the model's traffic the canary receives, in percent.
    pub percent: u8,
}

impl CanarySpec {
    /// Parses `name=SOURCE@PCT%` (the `%` is optional).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] for a malformed spec or a percentage
    /// outside `1..=99`.
    pub fn parse(raw: &str) -> Result<Self, ServeError> {
        let bad = |why: &str| {
            ServeError::Registry(format!(
                "bad canary spec {raw:?}: {why} (expected name=SOURCE@PCT%)"
            ))
        };
        let (spec, percent) = raw.rsplit_once('@').ok_or_else(|| bad("missing '@'"))?;
        let percent: u8 = percent
            .strip_suffix('%')
            .unwrap_or(percent)
            .parse()
            .map_err(|_| bad("percentage is not a number"))?;
        if !(1..=99).contains(&percent) {
            return Err(bad("percentage must be in 1..=99"));
        }
        Ok(Self {
            spec: ModelSpec::parse(spec)?,
            percent,
        })
    }
}

/// A parsed model manifest: the desired set of served models (and canaries)
/// a running server should converge to.
///
/// The format is line-oriented: blank lines and `#` comments are skipped,
/// every other line is a [`ModelSpec`] (`name=SOURCE`) or, with an `@PCT%`
/// suffix, a [`CanarySpec`] (`name=SOURCE@PCT%`, which also requires a
/// primary line for `name`). `serve_defense --manifest FILE` watches the
/// file and [reconciles][ModelRegistry::reconcile] the registry whenever it
/// changes — the operator story in `docs/MODEL_ARTIFACTS.md`.
///
/// # Examples
///
/// ```
/// use ensembler_serve::Manifest;
///
/// let manifest = Manifest::parse(
///     "# the fleet\n\
///      default=4,2,17\n\
///      alpha=models/alpha-v3.bin\n\
///      alpha=models/alpha-v4.bin@10%\n",
/// )?;
/// assert_eq!(manifest.models.len(), 2);
/// assert_eq!(manifest.canaries.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Primary version per model name, in file order.
    pub models: Vec<ModelSpec>,
    /// Canary versions, in file order.
    pub canaries: Vec<CanarySpec>,
}

impl Manifest {
    /// Parses a manifest file's text.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] for an unparsable line, a duplicate
    /// model or canary name, or a canary without a primary line.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let mut manifest = Manifest::default();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let context =
                |e: ServeError| ServeError::Registry(format!("manifest line {}: {e}", idx + 1));
            if line.contains('@') {
                manifest
                    .canaries
                    .push(CanarySpec::parse(line).map_err(context)?);
            } else {
                manifest
                    .models
                    .push(ModelSpec::parse(line).map_err(context)?);
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for spec in &manifest.models {
            if !seen.insert(spec.name.as_str()) {
                return Err(ServeError::Registry(format!(
                    "manifest lists model {:?} twice",
                    spec.name
                )));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for canary in &manifest.canaries {
            if !seen.insert(canary.spec.name.as_str()) {
                return Err(ServeError::Registry(format!(
                    "manifest lists two canaries for model {:?}",
                    canary.spec.name
                )));
            }
            if !manifest
                .models
                .iter()
                .any(|spec| spec.name == canary.spec.name)
            {
                return Err(ServeError::Registry(format!(
                    "manifest canary for {:?} has no primary line",
                    canary.spec.name
                )));
            }
        }
        Ok(manifest)
    }
}

impl ModelRegistry {
    /// Converges the registry to a [`Manifest`]: registers missing models,
    /// swaps models whose primary version tag differs, installs / replaces /
    /// clears canaries to match, and removes models (other than the default)
    /// the manifest no longer lists. Idempotent — reconciling an unchanged
    /// manifest is a no-op.
    ///
    /// Returns one human-readable line per action taken (empty = already
    /// converged), for the operator log.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered (a model that fails to build, an
    /// incompatible swap, …). Actions already applied stay applied — every
    /// individual action is atomic, so a partially applied manifest is a
    /// valid intermediate state and the next reconcile retries the rest.
    pub fn reconcile(
        &self,
        manifest: &Manifest,
        engine: EngineConfig,
    ) -> Result<Vec<String>, ServeError> {
        let mut actions = Vec::new();
        for spec in &manifest.models {
            let version = spec.version();
            match self.get(&spec.name) {
                None => {
                    self.register_version(spec.name.clone(), &version, spec.build()?, engine)?;
                    actions.push(format!("registered model {} at {version}", spec.name));
                }
                Some(slot) if slot.primary_version() != version => {
                    self.swap(&spec.name, &version, spec.build()?, engine)?;
                    actions.push(format!("swapped model {} to {version}", spec.name));
                }
                Some(_) => {}
            }
        }
        for canary in &manifest.canaries {
            let name = &canary.spec.name;
            let version = canary.spec.version();
            let current = self.get(name).and_then(|slot| slot.canary());
            if current != Some((version.clone(), canary.percent)) {
                self.set_canary(name, &version, canary.percent, canary.spec.build()?, engine)?;
                actions.push(format!(
                    "canary on model {name}: {version} at {}%",
                    canary.percent
                ));
            }
        }
        for name in self.names() {
            let listed = manifest.models.iter().any(|spec| spec.name == name);
            if !listed && name != self.default_name() {
                self.remove(&name)?;
                actions.push(format!("removed model {name}"));
                continue;
            }
            let has_canary_line = manifest.canaries.iter().any(|c| c.spec.name == name);
            if !has_canary_line && self.get(&name).is_some_and(|slot| slot.canary().is_some()) {
                self.clear_canary(&name)?;
                actions.push(format!("cleared canary on model {name}"));
            }
        }
        Ok(actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo_pipeline;

    fn demo(n: usize, p: usize, seed: u64) -> Arc<dyn Defense> {
        Arc::new(demo_pipeline(n, p, seed).unwrap())
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let registry =
            ModelRegistry::new("default", demo(2, 1, 1), EngineConfig::default()).unwrap();
        for bad in ["", "two words", "a=b"] {
            let err = registry
                .register(bad, demo(2, 1, 2), EngineConfig::default())
                .unwrap_err();
            assert!(matches!(err, ServeError::Registry(_)), "{bad:?}: {err}");
        }
        let err = registry
            .register("default", demo(2, 1, 3), EngineConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
    }

    #[test]
    fn resolution_prefers_the_requested_name_and_falls_back_to_default() {
        let registry = ModelRegistry::new("main", demo(2, 1, 4), EngineConfig::default())
            .unwrap()
            .with_model("aux", demo(3, 1, 5), EngineConfig::default())
            .unwrap();
        assert_eq!(registry.resolve(None).unwrap().name(), "main");
        assert_eq!(registry.resolve(Some("aux")).unwrap().name(), "aux");
        assert!(registry.resolve(Some("nope")).is_none());
        assert_eq!(registry.names(), vec!["aux", "main"]);
        assert_eq!(registry.default_engine().defense().ensemble_size(), 2);
        assert!(!registry.is_empty());
    }

    #[test]
    fn stats_cover_every_model_and_version() {
        let registry = ModelRegistry::new("a", demo(2, 1, 6), EngineConfig::default())
            .unwrap()
            .with_model("b", demo(2, 1, 7), EngineConfig::default())
            .unwrap();
        let stats = registry.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].model, "a");
        assert_eq!(stats[1].model, "b");
        assert_eq!(stats[0].engine.requests_served, 0);
        assert_eq!(stats[0].role, VersionRole::Primary);

        registry
            .set_canary("a", "canary-v1", 10, demo(2, 1, 8), EngineConfig::default())
            .unwrap();
        let stats = registry.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[1].model, "a");
        assert_eq!(stats[1].role, VersionRole::Canary);
        assert_eq!(stats[1].version, "canary-v1");
    }

    #[test]
    fn swap_replaces_the_primary_without_a_mut_registry() {
        let registry = ModelRegistry::new("m", demo(2, 1, 10), EngineConfig::default()).unwrap();
        let before = registry.get("m").unwrap().primary_engine();
        registry
            .swap("m", "2,1,11", demo(2, 1, 11), EngineConfig::default())
            .unwrap();
        let slot = registry.get("m").unwrap();
        assert_eq!(slot.primary_version(), "2,1,11");
        // The old engine is still alive for whoever holds it (drain), but
        // the slot routes to the new one.
        assert!(!Arc::ptr_eq(&before, &slot.primary_engine()));
    }

    #[test]
    fn swap_enforces_handshake_compatibility() {
        let registry = ModelRegistry::new("m", demo(2, 1, 12), EngineConfig::default()).unwrap();
        for (incompatible, what) in [
            (demo(3, 1, 12), "ensemble size"),
            (demo(2, 2, 12), "selected count"),
        ] {
            let err = registry
                .swap("m", "bad", incompatible, EngineConfig::default())
                .unwrap_err();
            assert!(err.to_string().contains(what), "{what}: {err}");
        }
        let err = registry
            .swap("missing", "v", demo(2, 1, 13), EngineConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("not registered"), "{err}");
    }

    #[test]
    fn canary_routing_is_deterministic_and_promotable() {
        let registry = ModelRegistry::new("m", demo(2, 1, 14), EngineConfig::default()).unwrap();
        assert!(registry.get("m").unwrap().canary().is_none());
        registry
            .set_canary("m", "next", 30, demo(2, 1, 15), EngineConfig::default())
            .unwrap();
        let slot = registry.get("m").unwrap();
        assert_eq!(slot.canary(), Some(("next".to_string(), 30)));

        // Deterministic: the same key always routes to the same version, and
        // exactly the keys with key % 100 < 30 hit the canary.
        for key in 0..200u64 {
            let (_, role) = slot.engine_for(key);
            let expected = if key % 100 < 30 {
                VersionRole::Canary
            } else {
                VersionRole::Primary
            };
            assert_eq!(role, expected, "key {key}");
        }

        registry.promote("m").unwrap();
        let slot = registry.get("m").unwrap();
        assert_eq!(slot.primary_version(), "next");
        assert!(slot.canary().is_none());
        assert!(registry.promote("m").is_err(), "no canary left to promote");
    }

    #[test]
    fn canary_validation_and_rollback() {
        let registry = ModelRegistry::new("m", demo(2, 1, 16), EngineConfig::default()).unwrap();
        for percent in [0u8, 100] {
            assert!(registry
                .set_canary("m", "x", percent, demo(2, 1, 17), EngineConfig::default())
                .is_err());
        }
        assert!(registry
            .set_canary("m", "x", 10, demo(3, 1, 17), EngineConfig::default())
            .is_err());
        registry
            .set_canary("m", "x", 10, demo(2, 1, 17), EngineConfig::default())
            .unwrap();
        registry.clear_canary("m").unwrap();
        assert!(registry.get("m").unwrap().canary().is_none());
        // Swapping also clears a staged canary.
        registry
            .set_canary("m", "x", 10, demo(2, 1, 17), EngineConfig::default())
            .unwrap();
        registry
            .swap("m", "v2", demo(2, 1, 18), EngineConfig::default())
            .unwrap();
        assert!(registry.get("m").unwrap().canary().is_none());
    }

    #[test]
    fn remove_refuses_the_default_model() {
        let registry = ModelRegistry::new("main", demo(2, 1, 19), EngineConfig::default())
            .unwrap()
            .with_model("aux", demo(2, 1, 20), EngineConfig::default())
            .unwrap();
        assert!(registry.remove("main").is_err());
        assert!(registry.remove("missing").is_err());
        registry.remove("aux").unwrap();
        assert_eq!(registry.names(), vec!["main"]);
    }

    #[test]
    fn model_specs_reject_malformed_input() {
        for bad in [
            "noequals",
            "=2,1,3",
            "x=2,1",
            "x=2,1,3,f16",
            "x=a,1,3",
            "x=2,b,3",
            "x=2,1,c",
            "x=2,1,3,int8,extra",
            "x=",
        ] {
            assert!(ModelSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn model_specs_build_matching_pipelines() {
        let spec = ModelSpec::parse("m=3,2,11").unwrap();
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.ensemble_size(), 3);
        assert_eq!(a.selected_count(), 2);
        // Deterministic: two builds of the same spec agree bit for bit.
        let images = ensembler_tensor::Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(a.predict(&images).unwrap(), b.predict(&images).unwrap());
        // The version tag round-trips the source text.
        assert_eq!(spec.version(), "3,2,11");
        assert_eq!(
            ModelSpec::parse("m=2,1,9,int8").unwrap().version(),
            "2,1,9,int8"
        );
    }

    #[test]
    fn artifact_sources_load_from_disk() {
        let pipeline = demo_pipeline(2, 1, 21).unwrap();
        let artifact = ensembler::artifact::save_pipeline(
            &pipeline,
            "m",
            ensembler_nn::ArtifactPrecision::F32,
        );
        let dir = std::env::temp_dir().join("ensembler-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m-v1.bin");
        artifact.write_to_file(&path).unwrap();

        let spec = ModelSpec::parse(&format!("m={}", path.display())).unwrap();
        let loaded = spec.build().unwrap();
        let images = ensembler_tensor::Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(
            loaded.predict(&images).unwrap(),
            pipeline.predict(&images).unwrap()
        );

        // A missing or corrupt artifact is a typed registry error.
        assert!(ModelSpec::parse("m=missing.bin").unwrap().build().is_err());
        std::fs::write(dir.join("bad.bin"), b"not an artifact").unwrap();
        let err = ModelSpec::parse(&format!("m={}", dir.join("bad.bin").display()))
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::Registry(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifests_parse_and_reconcile_idempotently() {
        let registry =
            ModelRegistry::new("default", demo(4, 2, 17), EngineConfig::default()).unwrap();
        let manifest = Manifest::parse(
            "# two models, one canary\n\
             default=4,2,17\n\
             alpha=2,1,5\n\
             alpha=2,1,6@20%\n",
        )
        .unwrap();
        // Three actions: the default (registered at "v0") converges to its
        // manifest version, alpha is registered, alpha's canary installed.
        let actions = registry
            .reconcile(&manifest, EngineConfig::default())
            .unwrap();
        assert_eq!(actions.len(), 3, "{actions:?}");
        assert_eq!(registry.names(), vec!["alpha", "default"]);
        assert_eq!(registry.get("default").unwrap().primary_version(), "4,2,17");
        assert_eq!(
            registry.get("alpha").unwrap().canary(),
            Some(("2,1,6".to_string(), 20))
        );
        // Idempotent: the same manifest converges to nothing.
        assert!(registry
            .reconcile(&manifest, EngineConfig::default())
            .unwrap()
            .is_empty());

        // Promote by editing the manifest: canary source becomes primary.
        let promoted = Manifest::parse("default=4,2,17\nalpha=2,1,6\n").unwrap();
        // One action: the swap to the canary's source clears the canary too.
        let actions = registry
            .reconcile(&promoted, EngineConfig::default())
            .unwrap();
        assert_eq!(actions.len(), 1, "{actions:?}");
        let slot = registry.get("alpha").unwrap();
        assert_eq!(slot.primary_version(), "2,1,6");
        assert!(slot.canary().is_none());

        // Dropping the model removes it; the default stays.
        let shrunk = Manifest::parse("default=4,2,17\n").unwrap();
        registry
            .reconcile(&shrunk, EngineConfig::default())
            .unwrap();
        assert_eq!(registry.names(), vec!["default"]);

        for bad in [
            "default=4,2,17\ndefault=4,2,18\n",    // duplicate primary
            "a=2,1,5@10%\n",                       // canary without primary
            "a=2,1,5\na=2,1,6@10%\na=2,1,7@20%\n", // duplicate canary
            "what even is this\n",                 // unparsable line
        ] {
            assert!(Manifest::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn canary_specs_parse_and_validate() {
        let canary = CanarySpec::parse("m=2,1,9,int8@10%").unwrap();
        assert_eq!(canary.percent, 10);
        assert_eq!(canary.spec.version(), "2,1,9,int8");
        let canary = CanarySpec::parse("m=model.bin@5").unwrap();
        assert_eq!(canary.percent, 5);
        for bad in [
            "m=2,1,9",
            "m=2,1,9@0%",
            "m=2,1,9@100%",
            "m=2,1,9@x%",
            "=x@5%",
        ] {
            assert!(CanarySpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn route_keys_are_stable_and_spread() {
        let a = route_key([1u8, 2, 3].into_iter());
        assert_eq!(a, route_key([1u8, 2, 3].into_iter()));
        assert_ne!(a, route_key([1u8, 2, 4].into_iter()));
        // A crude spread check: over 1000 distinct payloads, a 10% split
        // lands within a few points of 10%.
        let hits = (0..1000u32)
            .filter(|i| route_key(i.to_le_bytes().into_iter()) % 100 < 10)
            .count();
        assert!((50..200).contains(&hits), "10% split routed {hits}/1000");
    }
}
