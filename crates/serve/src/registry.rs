//! [`ModelRegistry`]: the model-name → pipeline map behind a multi-model
//! [`DefenseServer`](crate::DefenseServer).
//!
//! One server process hosts any number of [`Defense`] pipelines, each behind
//! its own coalescing [`InferenceEngine`]. The protocol-v3 handshake carries
//! the model name a client wants; legacy (v1/v2) clients, which cannot name
//! a model, are pinned to the registry's **default** model, so a registry
//! with one model behaves exactly like the single-model servers of earlier
//! protocol versions.
//!
//! Engines are per model on purpose: requests for the same model coalesce
//! into shared mini-batches across connections, while requests for different
//! models never meet in a queue (they could not be stacked into one batch
//! anyway, and a slow model must not add latency to a fast one).

use crate::error::ServeError;
use ensembler::{Defense, EngineConfig, EngineStats, InferenceEngine, QuantizedDefense};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A snapshot of one registered model's serving counters, as reported inside
/// [`ServerStats`](crate::ServerStats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// The registry name of the model.
    pub model: String,
    /// The counters of the engine serving it (requests, batches, queue
    /// depth).
    pub engine: EngineStats,
}

/// Maps model names to served pipelines, one [`InferenceEngine`] per model.
///
/// The registry is immutable once the server binds: connections resolve
/// their model at handshake time and hold the engine for their lifetime, so
/// there is no lock on the request path.
///
/// # Examples
///
/// Two models in one registry — connections that do not name a model get
/// `"default"`:
///
/// ```
/// use ensembler::EngineConfig;
/// use ensembler_serve::{demo_pipeline, ModelRegistry};
/// use std::sync::Arc;
///
/// let registry = ModelRegistry::new(
///     "default",
///     Arc::new(demo_pipeline(2, 1, 7)?),
///     EngineConfig::default(),
/// )?
/// .with_model("alpha", Arc::new(demo_pipeline(3, 2, 8)?), EngineConfig::default())?;
///
/// assert_eq!(registry.len(), 2);
/// assert_eq!(registry.resolve(None).unwrap().0, "default");
/// assert_eq!(registry.resolve(Some("alpha")).unwrap().0, "alpha");
/// assert!(registry.resolve(Some("missing")).is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    default_name: String,
    models: BTreeMap<String, Arc<InferenceEngine<dyn Defense>>>,
}

impl ModelRegistry {
    /// Creates a registry whose default model is `default_name` serving
    /// `defense` through an engine configured by `engine`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid model name or engine configuration.
    pub fn new(
        default_name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<Self, ServeError> {
        let default_name = default_name.into();
        let mut registry = Self {
            default_name: default_name.clone(),
            models: BTreeMap::new(),
        };
        registry.register(default_name, defense, engine)?;
        Ok(registry)
    }

    /// Registers one more model under `name`.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is empty, contains whitespace or `=` (the
    /// `--model name=spec` flag separator), is already registered, or the
    /// engine configuration is invalid.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        if name.is_empty() || name.contains(char::is_whitespace) || name.contains('=') {
            return Err(ServeError::Registry(format!(
                "invalid model name {name:?}: names must be non-empty and free of whitespace and '='"
            )));
        }
        if self.models.contains_key(&name) {
            return Err(ServeError::Registry(format!(
                "model {name:?} is already registered"
            )));
        }
        let engine = InferenceEngine::shared(defense, engine).map_err(ServeError::Defense)?;
        self.models.insert(name, engine);
        Ok(())
    }

    /// Builder-style [`ModelRegistry::register`].
    ///
    /// # Errors
    ///
    /// As for [`ModelRegistry::register`].
    pub fn with_model(
        mut self,
        name: impl Into<String>,
        defense: Arc<dyn Defense>,
        engine: EngineConfig,
    ) -> Result<Self, ServeError> {
        self.register(name, defense, engine)?;
        Ok(self)
    }

    /// Resolves a handshake's (optional) model request to the canonical name
    /// and the engine serving it; `None` requests the default model.
    /// Returns `None` for a name this registry does not serve.
    pub fn resolve(
        &self,
        requested: Option<&str>,
    ) -> Option<(&str, &Arc<InferenceEngine<dyn Defense>>)> {
        let name = requested.unwrap_or(&self.default_name);
        self.models
            .get_key_value(name)
            .map(|(name, engine)| (name.as_str(), engine))
    }

    /// The engine serving `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&Arc<InferenceEngine<dyn Defense>>> {
        self.models.get(name)
    }

    /// The name legacy (pre-v3) connections and nameless hellos resolve to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The engine serving the default model.
    pub fn default_engine(&self) -> &Arc<InferenceEngine<dyn Defense>> {
        self.models
            .get(&self.default_name)
            .expect("the constructor registers the default model")
    }

    /// Registered model names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.models.keys().map(String::as_str)
    }

    /// Number of registered models (always at least 1).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty — never true, the constructor requires
    /// a default model; provided because clippy expects `is_empty` next to
    /// `len`.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Per-model engine counters, in sorted name order.
    pub fn stats(&self) -> Vec<ModelStats> {
        self.models
            .iter()
            .map(|(name, engine)| ModelStats {
                model: name.clone(),
                engine: engine.stats(),
            })
            .collect()
    }
}

/// A parsed `--model name=N,P,SEED[,int8]` flag: everything `serve_defense`
/// (or a client building the matching replica) needs to construct one
/// deterministic demo pipeline and register it under `name`.
///
/// # Examples
///
/// ```
/// use ensembler_serve::ModelSpec;
///
/// let spec = ModelSpec::parse("alpha=3,2,17")?;
/// assert_eq!(
///     (spec.name.as_str(), spec.n, spec.p, spec.seed, spec.int8),
///     ("alpha", 3, 2, 17, false)
/// );
/// let spec = ModelSpec::parse("beta=2,1,9,int8")?;
/// assert!(spec.int8);
/// // The spec builds the pipeline it describes.
/// let defense = spec.build()?;
/// assert_eq!(defense.ensemble_size(), 2);
/// assert!(defense.label().ends_with("+int8"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Registry name the model is served under.
    pub name: String,
    /// Ensemble size `N`.
    pub n: usize,
    /// Secretly selected count `P`.
    pub p: usize,
    /// Weight seed shared by server and replica.
    pub seed: u64,
    /// Whether to serve the int8-quantized pipeline.
    pub int8: bool,
}

impl ModelSpec {
    /// Parses `name=N,P,SEED` or `name=N,P,SEED,int8`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] when the spec does not match that
    /// shape.
    pub fn parse(raw: &str) -> Result<Self, ServeError> {
        let bad = |why: &str| {
            ServeError::Registry(format!(
                "bad model spec {raw:?}: {why} (expected name=N,P,SEED[,int8])"
            ))
        };
        let (name, rest) = raw.split_once('=').ok_or_else(|| bad("missing '='"))?;
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(bad("empty or whitespace model name"));
        }
        let fields: Vec<&str> = rest.split(',').collect();
        let int8 = match fields.as_slice() {
            [_, _, _] => false,
            [_, _, _, "int8"] => true,
            _ => return Err(bad("expected 3 fields, or 4 ending in 'int8'")),
        };
        let n = fields[0].parse().map_err(|_| bad("N is not a number"))?;
        let p = fields[1].parse().map_err(|_| bad("P is not a number"))?;
        let seed = fields[2].parse().map_err(|_| bad("SEED is not a number"))?;
        Ok(Self {
            name: name.to_string(),
            n,
            p,
            seed,
            int8,
        })
    }

    /// Builds the deterministic demo pipeline this spec describes (see
    /// [`crate::demo_pipeline`]), quantized when the spec says `int8`.
    ///
    /// # Errors
    ///
    /// Returns an error if `P` is not a valid selection from `N` networks.
    pub fn build(&self) -> Result<Arc<dyn Defense>, ServeError> {
        let pipeline = Arc::new(crate::demo_pipeline(self.n, self.p, self.seed)?);
        Ok(if self.int8 {
            Arc::new(QuantizedDefense::quantize(pipeline))
        } else {
            pipeline
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo_pipeline;

    fn demo(n: usize, p: usize, seed: u64) -> Arc<dyn Defense> {
        Arc::new(demo_pipeline(n, p, seed).unwrap())
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let mut registry =
            ModelRegistry::new("default", demo(2, 1, 1), EngineConfig::default()).unwrap();
        for bad in ["", "two words", "a=b"] {
            let err = registry
                .register(bad, demo(2, 1, 2), EngineConfig::default())
                .unwrap_err();
            assert!(matches!(err, ServeError::Registry(_)), "{bad:?}: {err}");
        }
        let err = registry
            .register("default", demo(2, 1, 3), EngineConfig::default())
            .unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
    }

    #[test]
    fn resolution_prefers_the_requested_name_and_falls_back_to_default() {
        let registry = ModelRegistry::new("main", demo(2, 1, 4), EngineConfig::default())
            .unwrap()
            .with_model("aux", demo(3, 1, 5), EngineConfig::default())
            .unwrap();
        assert_eq!(registry.resolve(None).unwrap().0, "main");
        assert_eq!(registry.resolve(Some("aux")).unwrap().0, "aux");
        assert!(registry.resolve(Some("nope")).is_none());
        assert_eq!(registry.names().collect::<Vec<_>>(), vec!["aux", "main"]);
        assert_eq!(registry.default_engine().defense().ensemble_size(), 2);
        assert!(!registry.is_empty());
    }

    #[test]
    fn stats_cover_every_model() {
        let registry = ModelRegistry::new("a", demo(2, 1, 6), EngineConfig::default())
            .unwrap()
            .with_model("b", demo(2, 1, 7), EngineConfig::default())
            .unwrap();
        let stats = registry.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].model, "a");
        assert_eq!(stats[1].model, "b");
        assert_eq!(stats[0].engine.requests_served, 0);
    }

    #[test]
    fn model_specs_reject_malformed_input() {
        for bad in [
            "noequals",
            "=2,1,3",
            "x=2,1",
            "x=2,1,3,f16",
            "x=a,1,3",
            "x=2,b,3",
            "x=2,1,c",
            "x=2,1,3,int8,extra",
        ] {
            assert!(ModelSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn model_specs_build_matching_pipelines() {
        let spec = ModelSpec::parse("m=3,2,11").unwrap();
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.ensemble_size(), 3);
        assert_eq!(a.selected_count(), 2);
        // Deterministic: two builds of the same spec agree bit for bit.
        let images = ensembler_tensor::Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(a.predict(&images).unwrap(), b.predict(&images).unwrap());
    }
}
