//! Networked split-inference serving for the Ensembler reproduction.
//!
//! The paper's threat model is inherently networked: a trusted edge client
//! computes `M_c,h(x) + N(0, σ)` locally and ships the noised features to an
//! untrusted cloud server, which evaluates all `N` ensemble bodies and
//! returns their feature maps. This crate makes that boundary real:
//!
//! * [`protocol`] — a versioned, length-framed binary protocol (magic,
//!   version, message enum, CRC-32 checksums, exhaustive decode-error
//!   handling), specified byte-for-byte in `docs/WIRE_PROTOCOL.md`.
//!   Protocol v3 adds a model name to the handshake; protocol v4 adds the
//!   sub-range requests a scatter-gather shard router fans out; protocol v5
//!   adds a per-frame request id so one connection carries many concurrent
//!   in-flight requests with out-of-order responses;
//! * [`ModelRegistry`] — the model-name → pipeline map of a multi-model
//!   server: one `Arc<dyn Defense>` plus one coalescing
//!   [`ensembler::InferenceEngine`] per registered model *version*, with a
//!   default model for legacy clients. Since PR 8 the registry is mutable on
//!   a live server — [`ModelRegistry::swap`] hot-reloads a model with zero
//!   dropped requests and [`ModelRegistry::set_canary`] splits its traffic
//!   with a second version deterministically (`docs/MODEL_ARTIFACTS.md`
//!   covers the artifact files and the rollout lifecycle);
//! * [`DefenseServer`] — a multi-threaded TCP server over a registry:
//!   per-connection reader threads feed the pinned model's shared engine,
//!   so single-image requests from different connections coalesce into
//!   joint mini-batches. Admission control ([`AdmissionConfig`]) bounds
//!   in-flight requests and bytes per connection and per server, answering
//!   over-budget work with typed `Overloaded` frames instead of queueing
//!   it, and [`DefenseServer::shutdown`] drains in-flight batches before
//!   stopping;
//! * [`RemoteDefense`] — a client that implements [`ensembler::Defense`] by
//!   sending the `server_outputs` stage over the wire (optionally pinned to
//!   a named model via [`RemoteDefense::connect_model`]), so every existing
//!   attack, benchmark, latency and example path runs unchanged against a
//!   genuinely remote server;
//! * two binaries, `serve_defense` (with a repeatable `--model name=spec`
//!   flag) and `remote_client`, for running the two halves as separate OS
//!   processes.
//!
//! The request sequence and the crate's place in the workspace are drawn out
//! in `docs/ARCHITECTURE.md`; `docs/SERVING.md` is the operator guide.
//!
//! # Examples
//!
//! A complete loopback deployment in one process:
//!
//! ```
//! use ensembler::Defense;
//! use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServerConfig};
//! use ensembler_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 42)?);
//! let server = DefenseServer::bind(
//!     Arc::clone(&pipeline),
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//! )?;
//! let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?;
//!
//! let images = Tensor::ones(&[1, 3, 16, 16]);
//! // The networked pipeline is bit-identical to the in-process one.
//! assert_eq!(remote.predict(&images)?, pipeline.predict(&images)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod cli;
pub mod client;
pub mod error;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{CompletionSlots, RemoteDefense};
pub use error::ServeError;
pub use protocol::{
    ErrorCode, Hello, HelloAck, Message, MessageType, TaggedMessage, WireError, WIRE_OVERHEAD,
};
pub use registry::{
    CanarySpec, Manifest, ModelRegistry, ModelSlot, ModelSource, ModelSpec, ModelStats, VersionRole,
};
pub use server::{AdmissionConfig, DefenseServer, ServerConfig, ServerStats, ShardStats};

use ensembler::{EnsemblerError, EnsemblerPipeline, Selector};
use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
use ensembler_nn::FixedNoise;
use ensembler_tensor::Rng;

/// Builds a deterministic (untrained) Ensembler pipeline with `n` server
/// bodies of which `p` are secretly selected, on the CIFAR-10-like backbone.
///
/// Both `serve_defense` and `remote_client` construct their pipeline through
/// this function, so two processes given the same `(n, p, seed)` hold
/// bit-identical weights — the same weight-distribution role a checkpoint
/// file would play in a real deployment, without shipping one.
///
/// # Errors
///
/// Returns an error if `p` is not a valid selection from `n` networks.
pub fn demo_pipeline(n: usize, p: usize, seed: u64) -> Result<EnsemblerPipeline, EnsemblerError> {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(seed);
    let head = build_head(&config, &mut rng);
    let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
    let bodies = (0..n).map(|_| build_body(&config, &mut rng)).collect();
    let selector = Selector::random(n, p, &mut rng)?;
    let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
    EnsemblerPipeline::new(config, head, noise, bodies, selector, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler::Defense;

    #[test]
    fn demo_pipeline_is_deterministic_in_the_seed() {
        let a = demo_pipeline(3, 2, 9).unwrap();
        let b = demo_pipeline(3, 2, 9).unwrap();
        let images = ensembler_tensor::Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(a.predict(&images).unwrap(), b.predict(&images).unwrap());
        assert_eq!(a.ensemble_size(), 3);
        assert_eq!(a.selected_count(), 2);
    }

    #[test]
    fn demo_pipeline_rejects_invalid_selections() {
        assert!(demo_pipeline(2, 3, 0).is_err());
    }
}
