//! Client-side result cache for [`crate::RemoteDefense`]: a bounded LRU over
//! the `server_outputs` exchanges, keyed by an exact input fingerprint.
//!
//! Caching a *stochastic* defense sounds unsound, but this stack earned the
//! right in PR 1: every dropout mask and noise draw is derived from the
//! pipeline seed plus a fingerprint of the input, so evaluating the same
//! transmitted features twice produces bit-identical maps *by construction*
//! (the conformance suite pins it). A duplicate request is therefore pure
//! waste — wire bytes, server GEMMs, coalescer occupancy — and a client may
//! answer it locally without changing a single bit of any response.
//!
//! The key is the full byte encoding of the request (message kind, body
//! range, tensor shape, raw data bits), not a truncated hash, so two
//! different inputs can never alias an entry and the bit-exactness guarantee
//! is unconditional. Capacity is bounded; eviction is least-recently-used;
//! every lookup outcome is counted in [`CacheStats`], the client-side
//! sibling of [`crate::ServerStats`].
//!
//! One honest caveat, spelled out in `docs/SERVING.md`: the cache memoizes
//! *a deployment*, and a hot swap ([`crate::ModelRegistry::swap`]) changes
//! the deployment. A client that knows a reload happened should call
//! [`ResultCache::clear`] (via `RemoteDefense::clear_result_cache`) or
//! reconnect; the serving tier never invalidates client caches for you.

use ensembler_tensor::{QTensorBatch, Tensor};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Snapshot of a [`ResultCache`]'s counters — the client-side analogue of
/// [`crate::ServerStats`], surfaced by the load harness and `load_gen`'s
/// `--cache` mode.
///
/// # Examples
///
/// ```
/// use ensembler_serve::cache::ResultCache;
///
/// let cache = ResultCache::new(2);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
/// assert_eq!(stats.capacity, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to go to the server.
    pub misses: u64,
    /// Responses stored (one per miss that completed successfully).
    pub insertions: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Entries resident at snapshot time.
    pub entries: usize,
    /// The configured capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, `0.0` when nothing has
    /// been looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line human summary, as printed by `load_gen --cache`.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses ({:.1}% hit rate) | {}/{} entries, {} evicted",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.capacity,
            self.evictions,
        )
    }
}

/// A cached response: whichever map type the exchange that produced it
/// returned. The key encodes the request kind, so a lookup can never see the
/// wrong variant.
#[derive(Debug, Clone)]
pub(crate) enum CachedMaps {
    /// Maps from an `f32` exchange (`server_outputs` / `_range`).
    F32(Vec<Tensor>),
    /// Maps from a quantized exchange (`server_outputs_quantized` /
    /// `_range_q`).
    Quantized(Vec<QTensorBatch>),
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Exact request fingerprint → (recency tick, response).
    entries: HashMap<Arc<[u8]>, (u64, CachedMaps)>,
    /// Recency tick → key, ascending = least recently used first.
    recency: BTreeMap<u64, Arc<[u8]>>,
    next_tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// Bounded LRU result cache. See the [module docs](self) for when caching a
/// defense is sound and when it must be cleared.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// An empty cache bounded at `capacity` entries (`capacity >= 1`;
    /// a zero capacity is clamped to 1 rather than building a cache that can
    /// never hold anything).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Looks `key` up, bumping its recency and counting a hit or miss.
    pub(crate) fn get(&self, key: &[u8]) -> Option<CachedMaps> {
        let mut inner = self.inner.lock().expect("cache mutex");
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let Some((old_tick, value)) = inner.entries.get_mut(key) else {
            inner.misses += 1;
            return None;
        };
        let prev = std::mem::replace(old_tick, tick);
        let value = value.clone();
        let shared = inner.recency.remove(&prev).expect("recency entry");
        inner.recency.insert(tick, shared);
        inner.hits += 1;
        Some(value)
    }

    /// Stores `value` under `key`, evicting the least-recently-used entry if
    /// the cache is full. Re-inserting an existing key refreshes its value
    /// and recency without evicting.
    pub(crate) fn insert(&self, key: Vec<u8>, value: CachedMaps) {
        let mut inner = self.inner.lock().expect("cache mutex");
        let tick = inner.next_tick;
        inner.next_tick += 1;
        if let Some((old_tick, slot)) = inner.entries.get_mut(key.as_slice()) {
            let prev = std::mem::replace(old_tick, tick);
            *slot = value;
            let shared = inner.recency.remove(&prev).expect("recency entry");
            inner.recency.insert(tick, shared);
            return;
        }
        if inner.entries.len() >= self.capacity {
            // BTreeMap iterates ascending, so the first tick is the LRU.
            let (&lru_tick, _) = inner.recency.iter().next().expect("non-empty recency");
            let lru_key = inner.recency.remove(&lru_tick).expect("lru entry");
            inner.entries.remove(lru_key.as_ref());
            inner.evictions += 1;
        }
        let shared: Arc<[u8]> = key.into();
        inner.entries.insert(Arc::clone(&shared), (tick, value));
        inner.recency.insert(tick, shared);
        inner.insertions += 1;
    }

    /// Drops every entry (counters survive). Call after a known server-side
    /// model reload — memoized responses describe the *old* version.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache mutex");
        inner.entries.clear();
        inner.recency.clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache mutex");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

/// Builds the exact fingerprint of an `f32` exchange: kind tag, body range,
/// shape, then the raw data bits. `server_outputs` is keyed as the full range
/// `0..n`, so it shares entries with an equivalent `server_outputs_range`.
pub(crate) fn f32_key(lo: usize, hi: usize, transmitted: &Tensor) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 + transmitted.data().len() * 4);
    key.push(0x01);
    push_range_and_shape(&mut key, lo, hi, transmitted.shape());
    for v in transmitted.data() {
        key.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    key
}

/// The quantized sibling of [`f32_key`]: covers the per-sample scales and
/// the int8 payload.
pub(crate) fn quantized_key(lo: usize, hi: usize, transmitted: &QTensorBatch) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 + transmitted.data().len());
    key.push(0x02);
    push_range_and_shape(&mut key, lo, hi, transmitted.shape());
    for s in transmitted.scales() {
        key.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    key.extend_from_slice(bytemuck_i8(transmitted.data()));
    key
}

fn push_range_and_shape(key: &mut Vec<u8>, lo: usize, hi: usize, shape: &[usize]) {
    key.extend_from_slice(&(lo as u64).to_le_bytes());
    key.extend_from_slice(&(hi as u64).to_le_bytes());
    key.push(shape.len() as u8);
    for &dim in shape {
        key.extend_from_slice(&(dim as u64).to_le_bytes());
    }
}

/// Reinterprets an `i8` slice as bytes (safe: same size and alignment).
fn bytemuck_i8(data: &[i8]) -> &[u8] {
    // SAFETY: i8 and u8 have identical layout; the slice covers the same
    // memory with the same length.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps(tag: f32) -> CachedMaps {
        CachedMaps::F32(vec![Tensor::full(&[1, 2], tag)])
    }

    fn tensor_of(maps: &CachedMaps) -> &Tensor {
        match maps {
            CachedMaps::F32(maps) => &maps[0],
            CachedMaps::Quantized(_) => panic!("expected f32 maps"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(vec![1], maps(1.0));
        cache.insert(vec![2], maps(2.0));
        // Touch key 1 so key 2 becomes the LRU.
        assert!(cache.get(&[1]).is_some());
        cache.insert(vec![3], maps(3.0));
        assert!(cache.get(&[2]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&[1]).is_some());
        assert!(cache.get(&[3]).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let cache = ResultCache::new(2);
        cache.insert(vec![1], maps(1.0));
        cache.insert(vec![2], maps(2.0));
        cache.insert(vec![1], maps(9.0));
        assert_eq!(cache.stats().evictions, 0);
        let got = cache.get(&[1]).expect("refreshed entry");
        assert_eq!(tensor_of(&got).data()[0], 9.0);
        // Key 2 is now LRU despite being inserted later.
        cache.insert(vec![3], maps(3.0));
        assert!(cache.get(&[2]).is_none());
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = ResultCache::new(4);
        cache.insert(vec![1], maps(1.0));
        assert!(cache.get(&[1]).is_some());
        cache.clear();
        assert!(cache.get(&[1]).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let cache = ResultCache::new(0);
        cache.insert(vec![1], maps(1.0));
        assert!(cache.get(&[1]).is_some());
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn keys_cover_kind_range_shape_and_bits() {
        let t = Tensor::full(&[2, 3], 0.5);
        let base = f32_key(0, 4, &t);
        assert_ne!(base, f32_key(1, 4, &t), "range must be part of the key");
        assert_ne!(
            base,
            f32_key(0, 4, &Tensor::full(&[3, 2], 0.5)),
            "shape must be part of the key"
        );
        assert_ne!(
            base,
            f32_key(0, 4, &Tensor::full(&[2, 3], -0.5)),
            "data bits must be part of the key"
        );
        let q = QTensorBatch::quantize_batch(&t);
        assert_ne!(
            base,
            quantized_key(0, 4, &q),
            "f32 and quantized exchanges must never alias"
        );
        // -0.0 and 0.0 compare equal as floats but are different bit
        // patterns, hence different inputs to a fingerprint-seeded defense.
        assert_ne!(
            f32_key(0, 1, &Tensor::full(&[1], 0.0)),
            f32_key(0, 1, &Tensor::full(&[1], -0.0)),
        );
    }
}
