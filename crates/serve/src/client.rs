//! [`RemoteDefense`]: the trusted-edge half of the paper's deployment — a
//! [`Defense`] whose `server_outputs` stage travels over TCP to a
//! [`crate::DefenseServer`] instead of running in-process.

use crate::error::ServeError;
use crate::protocol::{
    read_message, write_message, Hello, HelloAck, Message, DEFAULT_MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
};
use ensembler::{Defense, EnsemblerError};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_tensor::Tensor;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;

/// A [`Defense`] implementation that keeps the client-side stages
/// ([`Defense::client_features`], [`Defense::classify`]) on a local replica
/// and ships the transmitted features to a remote [`crate::DefenseServer`]
/// for the [`Defense::server_outputs`] stage — the actual deployment
/// boundary of the paper's threat model.
///
/// The local replica provides the head, the secret selector and the tail
/// (and, for attack experiments, [`Defense::server_bodies`] — under the
/// threat model the adversary *is* the server and owns those weights
/// anyway). At connect time the handshake cross-checks the replica's label,
/// `N` and `P` against what the server reports, so a client pointed at the
/// wrong deployment fails fast instead of silently misclassifying.
///
/// Because every existing consumer — attacks, benchmarks, the latency model,
/// the engine — programs against `&dyn Defense`, swapping an in-process
/// pipeline for a `RemoteDefense` requires no change anywhere else.
///
/// # Examples
///
/// See [`crate::DefenseServer`] for a complete loopback round trip.
#[derive(Debug)]
pub struct RemoteDefense {
    local: std::sync::Arc<dyn Defense>,
    stream: Mutex<TcpStream>,
    peer: HelloAck,
    max_payload_bytes: u32,
}

impl RemoteDefense {
    /// Connects to a [`crate::DefenseServer`] at `addr`, performs the version
    /// handshake and validates that the server's pipeline matches the local
    /// replica.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection or handshake fails, the server
    /// speaks no shared protocol version, or the server-reported pipeline
    /// (label, `N`, `P`) disagrees with the local replica.
    pub fn connect(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_message(
            &mut stream,
            &Message::Hello(Hello {
                max_version: PROTOCOL_VERSION,
            }),
        )?;
        let peer = match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES)? {
            Message::HelloAck(ack) => ack,
            Message::Error(wire) => return Err(ServeError::Remote(wire)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected HelloAck, got {:?}",
                    other.message_type()
                )))
            }
        };
        if peer.version == 0 || peer.version > PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion {
                offered: peer.version,
                supported: PROTOCOL_VERSION,
            });
        }
        if peer.label != local.label()
            || peer.ensemble_size as usize != local.ensemble_size()
            || peer.selected_count as usize != local.selected_count()
        {
            return Err(ServeError::Protocol(format!(
                "server pipeline ({} N={} P={}) does not match the local replica ({} N={} P={})",
                peer.label,
                peer.ensemble_size,
                peer.selected_count,
                local.label(),
                local.ensemble_size(),
                local.selected_count()
            )));
        }
        Ok(Self {
            local,
            stream: Mutex::new(stream),
            peer,
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
        })
    }

    /// The protocol version negotiated with the server.
    pub fn negotiated_version(&self) -> u16 {
        self.peer.version
    }

    /// The pipeline description the server reported at handshake time.
    pub fn peer_label(&self) -> &str {
        &self.peer.label
    }

    /// One request/response exchange on the shared connection.
    fn exchange(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, ServeError> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
        write_message(
            &mut *stream,
            &Message::ServerOutputsRequest {
                transmitted: transmitted.clone(),
            },
        )?;
        match read_message(&mut *stream, self.max_payload_bytes)? {
            Message::ServerOutputsResponse { maps } => Ok(maps),
            Message::Error(wire) => Err(ServeError::Remote(wire)),
            other => Err(ServeError::Protocol(format!(
                "expected ServerOutputsResponse, got {:?}",
                other.message_type()
            ))),
        }
    }
}

impl Defense for RemoteDefense {
    fn config(&self) -> &ResNetConfig {
        self.local.config()
    }

    fn label(&self) -> &str {
        self.local.label()
    }

    /// The local replica's bodies. Under the threat model the adversary owns
    /// the server weights, so attack experiments read them from here exactly
    /// as they would from an in-process pipeline.
    fn server_bodies(&self) -> &[Sequential] {
        self.local.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.local.selected_count()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.local.client_features(images)
    }

    /// Ships the transmitted features to the remote server and returns the
    /// `N` per-network feature maps it sends back.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        let maps = self.exchange(transmitted)?;
        if maps.len() != self.local.ensemble_size() {
            return Err(EnsemblerError::Transport(format!(
                "server returned {} maps for an ensemble of {}",
                maps.len(),
                self.local.ensemble_size()
            )));
        }
        Ok(maps)
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.local.classify(server_maps)
    }
}
