//! [`RemoteDefense`]: the trusted-edge half of the paper's deployment — a
//! [`Defense`] whose `server_outputs` stage travels over TCP to a
//! [`crate::DefenseServer`] instead of running in-process.

use crate::cache::{f32_key, quantized_key, CacheStats, CachedMaps, ResultCache};
use crate::error::ServeError;
use crate::protocol::{
    read_message, read_tagged, write_message, write_tagged, Hello, HelloAck, Message, WireError,
    DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION, TAGGED_WIRE_VERSION,
};
use ensembler::{Defense, EnsemblerError, Precision};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_tensor::{QTensorBatch, Tensor};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-request completion routing for a multiplexed connection: each
/// in-flight request registers a slot under its request id, and the
/// demultiplexer thread completes the slot whose id the response frame
/// echoes.
///
/// Misuse is a typed error, never a panic or a misroute: registering a
/// duplicate id fails, completing an unknown id fails (the demultiplexer
/// treats that as a broken peer and fails the connection), and once the
/// connection has failed every further registration is refused with the
/// stored reason.
#[derive(Debug, Default)]
pub struct CompletionSlots {
    inner: Mutex<SlotsInner>,
}

#[derive(Debug, Default)]
struct SlotsInner {
    waiting: HashMap<u64, Sender<Result<Message, ServeError>>>,
    failure: Option<ConnectionFailure>,
}

/// Why a multiplexed connection died, preserved with its type: a
/// server-reported error frame stays a [`ServeError::Remote`] (so callers
/// can match on its [`crate::ErrorCode`] — e.g. `Overloaded` from a
/// draining server means "retry elsewhere"), everything else is a
/// [`ServeError::Protocol`].
#[derive(Debug, Clone)]
enum ConnectionFailure {
    Remote(WireError),
    Protocol(String),
}

impl ConnectionFailure {
    fn to_error(&self) -> ServeError {
        match self {
            ConnectionFailure::Remote(wire) => ServeError::Remote(wire.clone()),
            ConnectionFailure::Protocol(reason) => {
                ServeError::Protocol(format!("multiplexed connection failed: {reason}"))
            }
        }
    }
}

impl CompletionSlots {
    /// An empty slot table for a fresh connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new in-flight request under `id` and returns the receiver
    /// its response will arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] if `id` is already in flight, or if
    /// the connection has already failed ([`CompletionSlots::fail_all`]).
    pub fn register(&self, id: u64) -> Result<Receiver<Result<Message, ServeError>>, ServeError> {
        let mut inner = self
            .inner
            .lock()
            .map_err(|_| ServeError::Protocol("completion slots mutex poisoned".to_string()))?;
        if let Some(failure) = &inner.failure {
            return Err(failure.to_error());
        }
        if inner.waiting.contains_key(&id) {
            return Err(ServeError::Protocol(format!(
                "request id {id} is already in flight"
            )));
        }
        let (send, receive) = channel();
        inner.waiting.insert(id, send);
        Ok(receive)
    }

    /// Delivers `result` to the request registered under `id` and frees the
    /// slot. A requester that gave up (dropped its receiver) is skipped
    /// silently.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] when no request with this id is in
    /// flight — a response for an unknown (or already-answered) id must
    /// never be routed anywhere.
    pub fn complete(&self, id: u64, result: Result<Message, ServeError>) -> Result<(), ServeError> {
        let sender = self
            .inner
            .lock()
            .map_err(|_| ServeError::Protocol("completion slots mutex poisoned".to_string()))?
            .waiting
            .remove(&id);
        match sender {
            Some(sender) => {
                let _ = sender.send(result);
                Ok(())
            }
            None => Err(ServeError::Protocol(format!(
                "response for unknown request id {id}"
            ))),
        }
    }

    /// Drops the slot registered under `id` without answering it — what a
    /// sender does when its request never made it onto the wire.
    pub fn forget(&self, id: u64) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.waiting.remove(&id);
        }
    }

    /// Fails every in-flight request with a typed error and refuses all
    /// future registrations with the same reason — the terminal transition a
    /// demultiplexer takes when the connection itself breaks.
    pub fn fail_all(&self, reason: &str) {
        self.fail_all_with(ConnectionFailure::Protocol(reason.to_string()));
    }

    /// [`CompletionSlots::fail_all`] for a connection-level error frame the
    /// *server* reported: in-flight and future requests fail with
    /// [`ServeError::Remote`], keeping the server's typed [`crate::ErrorCode`]
    /// (a draining server's `Overloaded`, say) instead of flattening it into
    /// a string.
    pub fn fail_all_remote(&self, error: WireError) {
        self.fail_all_with(ConnectionFailure::Remote(error));
    }

    fn fail_all_with(&self, failure: ConnectionFailure) {
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        inner.failure = Some(failure.clone());
        for (_, sender) in inner.waiting.drain() {
            let _ = sender.send(Err(failure.to_error()));
        }
    }

    /// Number of requests currently awaiting their response.
    pub fn in_flight(&self) -> usize {
        self.inner
            .lock()
            .map(|inner| inner.waiting.len())
            .unwrap_or(0)
    }
}

/// The multiplexed transport of a protocol-v5 connection: writers tag each
/// request with a fresh id and park on a completion slot; one demultiplexer
/// thread reads every response frame and routes it to the slot its id names.
#[derive(Debug)]
struct Mux {
    writer: Mutex<TcpStream>,
    slots: Arc<CompletionSlots>,
    next_id: AtomicU64,
    demux: Option<JoinHandle<()>>,
}

impl Mux {
    fn start(stream: TcpStream, max_payload_bytes: u32) -> Result<Self, ServeError> {
        let mut read_half = stream.try_clone()?;
        let slots = Arc::new(CompletionSlots::new());
        let demux_slots = Arc::clone(&slots);
        let demux = std::thread::spawn(move || {
            demux_loop(&mut read_half, &demux_slots, max_payload_bytes);
        });
        Ok(Self {
            writer: Mutex::new(stream),
            slots,
            next_id: AtomicU64::new(1),
            demux: Some(demux),
        })
    }

    /// One pipelined request/response exchange: register a slot, write the
    /// tagged request (briefly holding the write lock), then block on the
    /// slot while other callers' requests and responses interleave freely.
    fn call(&self, request: &Message) -> Result<Message, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let receiver = self.slots.register(id)?;
        {
            let mut writer = self
                .writer
                .lock()
                .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
            if let Err(error) = write_tagged(&mut *writer, request, Some(id)) {
                self.slots.forget(id);
                return Err(error);
            }
        }
        receiver.recv().map_err(|_| {
            ServeError::Protocol(
                "multiplexed connection closed while awaiting a response".to_string(),
            )
        })?
    }
}

impl Drop for Mux {
    fn drop(&mut self) {
        // Shutting the socket down unblocks the demultiplexer's read; it
        // fails any stragglers and exits, and the join below reaps it.
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.demux.take() {
            let _ = handle.join();
        }
    }
}

/// The demultiplexer: reads frames until the connection dies. Tagged frames
/// complete the slot their id names (a tagged `Error` frame too — it fails
/// only that one request). An untagged frame or an unknown id is a protocol
/// breach by the peer and fails the whole connection, as does any read
/// error.
fn demux_loop(read_half: &mut TcpStream, slots: &CompletionSlots, max_payload_bytes: u32) {
    loop {
        match read_tagged(read_half, max_payload_bytes) {
            Ok(tagged) => match tagged.request_id {
                Some(id) => {
                    if slots.complete(id, Ok(tagged.message)).is_err() {
                        slots.fail_all(&format!("server answered unknown request id {id}"));
                        return;
                    }
                }
                None => {
                    match tagged.message {
                        // The server's typed report (e.g. `Overloaded` from a
                        // draining server) must survive to every caller as a
                        // `ServeError::Remote`, not a flattened string.
                        Message::Error(wire) => slots.fail_all_remote(wire),
                        other => slots.fail_all(&format!(
                            "unexpected untagged {:?} on a multiplexed connection",
                            other.message_type()
                        )),
                    }
                    return;
                }
            },
            Err(error) => {
                slots.fail_all(&format!("connection lost: {error}"));
                return;
            }
        }
    }
}

/// How a [`RemoteDefense`] talks to its server: lockstep (one request, then
/// its response — protocol v1–v4) or multiplexed over tagged frames
/// (protocol v5).
#[derive(Debug)]
enum Transport {
    /// Pre-v5 request/response in lockstep under one connection lock.
    Lockstep(Mutex<TcpStream>),
    /// Tagged, pipelined exchanges sharing one socket.
    Mux(Mux),
}

/// A [`Defense`] implementation that keeps the client-side stages
/// ([`Defense::client_features`], [`Defense::classify`]) on a local replica
/// and ships the transmitted features to a remote [`crate::DefenseServer`]
/// for the [`Defense::server_outputs`] stage — the actual deployment
/// boundary of the paper's threat model.
///
/// The local replica provides the head, the secret selector and the tail
/// (and, for attack experiments, [`Defense::server_bodies`] — under the
/// threat model the adversary *is* the server and owns those weights
/// anyway). At connect time the handshake cross-checks the replica's label,
/// `N` and `P` against what the server reports, so a client pointed at the
/// wrong deployment fails fast instead of silently misclassifying.
///
/// Because every existing consumer — attacks, benchmarks, the latency model,
/// the engine — programs against `&dyn Defense`, swapping an in-process
/// pipeline for a `RemoteDefense` requires no change anywhere else.
///
/// On a protocol-v5 connection the transport is *multiplexed*: every request
/// frame carries a fresh id, a demultiplexer thread routes each (possibly
/// out-of-order) response to the caller that sent its request, and many
/// threads can have requests in flight on the one socket concurrently. A
/// server-reported typed error (e.g. `Overloaded`) fails only the request it
/// is tagged with — the connection and its other in-flight requests carry
/// on. Connections that negotiate v4 or below keep the original lockstep
/// one-request-then-its-response discipline.
///
/// # Examples
///
/// See [`crate::DefenseServer`] for a complete loopback round trip.
#[derive(Debug)]
pub struct RemoteDefense {
    local: std::sync::Arc<dyn Defense>,
    transport: Transport,
    peer: HelloAck,
    max_payload_bytes: u32,
    cache: Option<ResultCache>,
}

impl RemoteDefense {
    /// Connects to a [`crate::DefenseServer`] at `addr`, performs the version
    /// handshake and validates that the server's pipeline matches the local
    /// replica.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection or handshake fails, the server
    /// speaks no shared protocol version, or the server-reported pipeline
    /// (label, `N`, `P`) disagrees with the local replica.
    pub fn connect(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, PROTOCOL_VERSION, None)
    }

    /// Connects to a multi-model [`crate::DefenseServer`] and requests the
    /// registered model `model` — the protocol-v3 connect path.
    ///
    /// The hello travels in a version-3 frame carrying the model name; the
    /// server resolves it in its registry, pins the connection to that
    /// model's engine and echoes the resolved name in the ack, which this
    /// constructor cross-checks along with the usual label/`N`/`P` replica
    /// validation. A nameless [`RemoteDefense::connect`] gets the server's
    /// default model instead.
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::connect`], plus a typed
    /// [`crate::ErrorCode::UnknownModel`] report (surfaced as
    /// [`ServeError::Remote`]) when the server does not serve `model`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler::{Defense, EngineConfig};
    /// use ensembler_serve::{demo_pipeline, DefenseServer, ModelRegistry, RemoteDefense, ServerConfig};
    /// use ensembler_tensor::Tensor;
    /// use std::sync::Arc;
    ///
    /// // One process, two models.
    /// let alpha: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 5)?);
    /// let beta: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 6)?);
    /// let registry = ModelRegistry::new("alpha", Arc::clone(&alpha), EngineConfig::default())?
    ///     .with_model("beta", Arc::clone(&beta), EngineConfig::default())?;
    /// let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", ServerConfig::default())?;
    ///
    /// // A v3 client picks its model by name and gets bit-identical results.
    /// let remote = RemoteDefense::connect_model(Arc::clone(&beta), server.local_addr(), "beta")?;
    /// assert_eq!(remote.model(), Some("beta"));
    /// let images = Tensor::ones(&[1, 3, 16, 16]);
    /// assert_eq!(remote.predict(&images)?, beta.predict(&images)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn connect_model(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        model: &str,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, PROTOCOL_VERSION, Some(model.to_string()))
    }

    /// [`RemoteDefense::connect`] with an explicit cap on the protocol
    /// version offered in the handshake.
    ///
    /// Capping at 1 reproduces a legacy client: the connection negotiates
    /// down and every exchange travels in `f32` frames, which is also the
    /// compatibility path an int8 replica takes against a v1 server (the
    /// quantize→dequantize round trips are part of the int8 pipeline's own
    /// semantics, so even the f32-framed exchange stays bit-exact).
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::connect`], plus an error for a zero or
    /// unsupported `max_version`.
    pub fn connect_with_max_version(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        max_version: u16,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, max_version, None)
    }

    fn connect_inner(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        max_version: u16,
        model: Option<String>,
    ) -> Result<Self, ServeError> {
        if max_version == 0 || max_version > PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion {
                offered: max_version,
                supported: PROTOCOL_VERSION,
            });
        }
        if model.is_some() && max_version < 3 {
            return Err(ServeError::Protocol(format!(
                "requesting a model by name needs protocol v3, but the version cap is {max_version}"
            )));
        }
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_message(
            &mut stream,
            &Message::Hello(Hello {
                max_version,
                model: model.clone(),
            }),
        )?;
        let peer = match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES)? {
            Message::HelloAck(ack) => ack,
            Message::Error(wire) => return Err(ServeError::Remote(wire)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected HelloAck, got {:?}",
                    other.message_type()
                )))
            }
        };
        if peer.version == 0 || peer.version > max_version {
            return Err(ServeError::UnsupportedVersion {
                offered: peer.version,
                supported: max_version,
            });
        }
        if model.is_some() && peer.model != model {
            return Err(ServeError::Protocol(format!(
                "requested model {:?} but the server pinned the connection to {:?}",
                model.as_deref().unwrap_or(""),
                peer.model.as_deref().unwrap_or("<unnamed>")
            )));
        }
        if peer.label != local.label()
            || peer.ensemble_size as usize != local.ensemble_size()
            || peer.selected_count as usize != local.selected_count()
        {
            return Err(ServeError::Protocol(format!(
                "server pipeline ({} N={} P={}) does not match the local replica ({} N={} P={})",
                peer.label,
                peer.ensemble_size,
                peer.selected_count,
                local.label(),
                local.ensemble_size(),
                local.selected_count()
            )));
        }
        let transport = if peer.version >= TAGGED_WIRE_VERSION {
            Transport::Mux(Mux::start(stream, DEFAULT_MAX_PAYLOAD_BYTES)?)
        } else {
            Transport::Lockstep(Mutex::new(stream))
        };
        Ok(Self {
            local,
            transport,
            peer,
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
            cache: None,
        })
    }

    /// Attaches a client-side result cache bounded at `capacity` entries: a
    /// repeated `server_outputs` exchange (any kind, any precision) is
    /// answered from memory instead of the wire. Sound because every mask
    /// and noise draw is derived from the pipeline seed plus the input
    /// fingerprint, so duplicate inputs are bit-identical by construction —
    /// see [`crate::cache`] for the guarantee and its one caveat (clear the
    /// cache after a known server-side model reload).
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler::Defense;
    /// use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServerConfig};
    /// use ensembler_tensor::Tensor;
    /// use std::sync::Arc;
    ///
    /// let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 42)?);
    /// let server = DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", ServerConfig::default())?;
    /// let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?
    ///     .with_result_cache(64);
    ///
    /// let images = Tensor::ones(&[1, 3, 16, 16]);
    /// let first = remote.predict(&images)?;
    /// let second = remote.predict(&images)?; // served from the cache
    /// assert_eq!(first, second);
    /// let stats = remote.cache_stats().expect("cache attached");
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn with_result_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ResultCache::new(capacity));
        self
    }

    /// Counters of the attached result cache, `None` when
    /// [`RemoteDefense::with_result_cache`] was never called.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(ResultCache::stats)
    }

    /// Drops every cached response (a no-op without a cache). Call when the
    /// server's model is known to have been reloaded — memoized responses
    /// describe the old version.
    pub fn clear_result_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Runs `fetch` through the result cache under `key`, expecting `f32`
    /// maps; without a cache it is exactly `fetch()`.
    fn cached_f32<E>(
        &self,
        key: Vec<u8>,
        fetch: impl FnOnce(&Self) -> Result<Vec<Tensor>, E>,
    ) -> Result<Vec<Tensor>, E> {
        let Some(cache) = &self.cache else {
            return fetch(self);
        };
        if let Some(CachedMaps::F32(maps)) = cache.get(&key) {
            return Ok(maps);
        }
        let maps = fetch(self)?;
        cache.insert(key, CachedMaps::F32(maps.clone()));
        Ok(maps)
    }

    /// The quantized sibling of [`RemoteDefense::cached_f32`].
    fn cached_quantized<E>(
        &self,
        key: Vec<u8>,
        fetch: impl FnOnce(&Self) -> Result<Vec<QTensorBatch>, E>,
    ) -> Result<Vec<QTensorBatch>, E> {
        let Some(cache) = &self.cache else {
            return fetch(self);
        };
        if let Some(CachedMaps::Quantized(maps)) = cache.get(&key) {
            return Ok(maps);
        }
        let maps = fetch(self)?;
        cache.insert(key, CachedMaps::Quantized(maps.clone()));
        Ok(maps)
    }

    /// The protocol version negotiated with the server.
    pub fn negotiated_version(&self) -> u16 {
        self.peer.version
    }

    /// The pipeline description the server reported at handshake time.
    pub fn peer_label(&self) -> &str {
        &self.peer.label
    }

    /// The registry model name this connection is pinned to, as echoed by
    /// the server — `None` on a legacy or nameless connection (which the
    /// server pins to its default model without naming it).
    pub fn model(&self) -> Option<&str> {
        self.peer.model.as_deref()
    }

    /// Whether this connection ships the `server_outputs` stage in quantized
    /// (protocol-v2) frames: the replica must be an int8 pipeline and the
    /// server must have negotiated version 2.
    pub fn uses_quantized_frames(&self) -> bool {
        self.peer.version >= 2 && self.local.precision() == Precision::Int8
    }

    /// One request/response exchange, dispatched through whichever transport
    /// the handshake negotiated. On a lockstep connection this holds the
    /// connection lock across the write *and* the read; on a multiplexed one
    /// it holds the write lock only long enough to put the tagged request on
    /// the wire, then parks on the request's completion slot, so concurrent
    /// callers pipeline freely.
    ///
    /// A server-reported [`Message::Error`] is returned as
    /// [`ServeError::Remote`] *for this request only* — on a multiplexed
    /// connection it neither tears down the socket nor disturbs other
    /// in-flight requests.
    fn call(&self, request: &Message) -> Result<Message, ServeError> {
        let response = match &self.transport {
            Transport::Lockstep(stream) => {
                let mut stream = stream
                    .lock()
                    .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
                write_message(&mut *stream, request)?;
                read_message(&mut *stream, self.max_payload_bytes)?
            }
            Transport::Mux(mux) => mux.call(request)?,
        };
        match response {
            Message::Error(wire) => Err(ServeError::Remote(wire)),
            other => Ok(other),
        }
    }

    /// One `f32` request/response exchange on the shared connection.
    fn exchange(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, ServeError> {
        match self.call(&Message::ServerOutputsRequest {
            transmitted: transmitted.clone(),
        })? {
            Message::ServerOutputsResponse { maps } => Ok(maps),
            other => Err(ServeError::Protocol(format!(
                "expected ServerOutputsResponse, got {:?}",
                other.message_type()
            ))),
        }
    }

    /// One quantized (protocol-v2) request/response exchange.
    fn exchange_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, ServeError> {
        match self.call(&Message::ServerOutputsRequestQ {
            transmitted: transmitted.clone(),
        })? {
            Message::ServerOutputsResponseQ { maps } => Ok(maps),
            other => Err(ServeError::Protocol(format!(
                "expected ServerOutputsResponseQ, got {:?}",
                other.message_type()
            ))),
        }
    }

    /// One sub-range (protocol-v4) exchange: asks the server to evaluate
    /// only its bodies `lo..hi` and returns the `hi - lo` feature maps —
    /// the per-worker leg of a scatter-gather router.
    ///
    /// # Errors
    ///
    /// Returns an error when the connection negotiated a version below 4,
    /// when the wire exchange fails, when the server reports a typed error
    /// (e.g. an out-of-range `lo..hi`), or when the map count disagrees
    /// with `hi - lo`.
    pub fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, ServeError> {
        self.check_range_version()?;
        self.cached_f32(f32_key(lo, hi, transmitted), |this| {
            let maps = match this.call(&Message::ServerOutputsRequestRange {
                lo: lo as u32,
                hi: hi as u32,
                transmitted: transmitted.clone(),
            })? {
                Message::ServerOutputsResponse { maps } => maps,
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected ServerOutputsResponse, got {:?}",
                        other.message_type()
                    )))
                }
            };
            check_range_map_count(maps.len(), lo, hi)?;
            Ok(maps)
        })
    }

    /// The quantized sibling of [`RemoteDefense::server_outputs_range`]:
    /// ships the range request in int8 frames and returns `hi - lo`
    /// quantized maps.
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::server_outputs_range`].
    pub fn server_outputs_quantized_range(
        &self,
        transmitted: &QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, ServeError> {
        self.check_range_version()?;
        self.cached_quantized(quantized_key(lo, hi, transmitted), |this| {
            let maps = match this.call(&Message::ServerOutputsRequestRangeQ {
                lo: lo as u32,
                hi: hi as u32,
                transmitted: transmitted.clone(),
            })? {
                Message::ServerOutputsResponseQ { maps } => maps,
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected ServerOutputsResponseQ, got {:?}",
                        other.message_type()
                    )))
                }
            };
            check_range_map_count(maps.len(), lo, hi)?;
            Ok(maps)
        })
    }

    fn check_range_version(&self) -> Result<(), ServeError> {
        if self.peer.version < 4 {
            return Err(ServeError::Protocol(format!(
                "sub-range requests need protocol v4, connection negotiated v{}",
                self.peer.version
            )));
        }
        Ok(())
    }

    fn check_map_count(&self, got: usize) -> Result<(), EnsemblerError> {
        if got != self.local.ensemble_size() {
            return Err(EnsemblerError::Transport(format!(
                "server returned {got} maps for an ensemble of {}",
                self.local.ensemble_size()
            )));
        }
        Ok(())
    }
}

/// Validates that a range response carries exactly `hi - lo` maps.
fn check_range_map_count(got: usize, lo: usize, hi: usize) -> Result<(), ServeError> {
    if got != hi - lo {
        return Err(ServeError::Protocol(format!(
            "server returned {got} maps for the body range {lo}..{hi}"
        )));
    }
    Ok(())
}

impl Defense for RemoteDefense {
    fn config(&self) -> &ResNetConfig {
        self.local.config()
    }

    fn label(&self) -> &str {
        self.local.label()
    }

    /// The local replica's bodies. Under the threat model the adversary owns
    /// the server weights, so attack experiments read them from here exactly
    /// as they would from an in-process pipeline.
    fn server_bodies(&self) -> &[Sequential] {
        self.local.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.local.selected_count()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.local.client_features(images)
    }

    fn precision(&self) -> ensembler::Precision {
        self.local.precision()
    }

    /// Ships the transmitted features to the remote server and returns the
    /// `N` per-network feature maps it sends back.
    ///
    /// For an int8 replica on a v2 connection the exchange travels in
    /// quantized frames: the features are quantized per sample exactly as
    /// the in-process [`ensembler::QuantizedDefense`] would quantize them,
    /// and the server evaluates the received bytes directly — so the remote
    /// prediction is bit-identical to the in-process int8 one while the
    /// response frame shrinks to roughly a quarter of its `f32` size.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        // Keyed as the full body range 0..N, so a cached full exchange also
        // answers an equivalent `server_outputs_range(_, 0, N)` and vice
        // versa. On an int8 replica the *dequantized* maps are cached: what
        // this method returns is what a duplicate call must reproduce.
        let key = f32_key(0, self.local.ensemble_size(), transmitted);
        self.cached_f32(key, |this| {
            if this.uses_quantized_frames() {
                let qf = QTensorBatch::quantize_batch(transmitted);
                let qmaps = this.exchange_quantized(&qf)?;
                this.check_map_count(qmaps.len())?;
                return Ok(qmaps.iter().map(QTensorBatch::dequantize).collect());
            }
            let maps = this.exchange(transmitted)?;
            this.check_map_count(maps.len())?;
            Ok(maps)
        })
    }

    /// The quantized stage itself, shipped directly when the connection
    /// speaks v2 (used by engines that coalesce quantized work behind a
    /// remote); on a v1 connection it falls back to `f32` frames around the
    /// wire and re-quantizes the results.
    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        let key = quantized_key(0, self.local.ensemble_size(), transmitted);
        self.cached_quantized(key, |this| {
            if this.peer.version >= 2 {
                let qmaps = this.exchange_quantized(transmitted)?;
                this.check_map_count(qmaps.len())?;
                return Ok(qmaps);
            }
            let maps = this.exchange(&transmitted.dequantize())?;
            this.check_map_count(maps.len())?;
            Ok(maps.iter().map(QTensorBatch::quantize_batch).collect())
        })
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.local.classify(server_maps)
    }
}
