//! [`RemoteDefense`]: the trusted-edge half of the paper's deployment — a
//! [`Defense`] whose `server_outputs` stage travels over TCP to a
//! [`crate::DefenseServer`] instead of running in-process.

use crate::error::ServeError;
use crate::protocol::{
    read_message, write_message, Hello, HelloAck, Message, DEFAULT_MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
};
use ensembler::{Defense, EnsemblerError, Precision};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_tensor::{QTensorBatch, Tensor};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;

/// A [`Defense`] implementation that keeps the client-side stages
/// ([`Defense::client_features`], [`Defense::classify`]) on a local replica
/// and ships the transmitted features to a remote [`crate::DefenseServer`]
/// for the [`Defense::server_outputs`] stage — the actual deployment
/// boundary of the paper's threat model.
///
/// The local replica provides the head, the secret selector and the tail
/// (and, for attack experiments, [`Defense::server_bodies`] — under the
/// threat model the adversary *is* the server and owns those weights
/// anyway). At connect time the handshake cross-checks the replica's label,
/// `N` and `P` against what the server reports, so a client pointed at the
/// wrong deployment fails fast instead of silently misclassifying.
///
/// Because every existing consumer — attacks, benchmarks, the latency model,
/// the engine — programs against `&dyn Defense`, swapping an in-process
/// pipeline for a `RemoteDefense` requires no change anywhere else.
///
/// # Examples
///
/// See [`crate::DefenseServer`] for a complete loopback round trip.
#[derive(Debug)]
pub struct RemoteDefense {
    local: std::sync::Arc<dyn Defense>,
    stream: Mutex<TcpStream>,
    peer: HelloAck,
    max_payload_bytes: u32,
}

impl RemoteDefense {
    /// Connects to a [`crate::DefenseServer`] at `addr`, performs the version
    /// handshake and validates that the server's pipeline matches the local
    /// replica.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection or handshake fails, the server
    /// speaks no shared protocol version, or the server-reported pipeline
    /// (label, `N`, `P`) disagrees with the local replica.
    pub fn connect(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, PROTOCOL_VERSION, None)
    }

    /// Connects to a multi-model [`crate::DefenseServer`] and requests the
    /// registered model `model` — the protocol-v3 connect path.
    ///
    /// The hello travels in a version-3 frame carrying the model name; the
    /// server resolves it in its registry, pins the connection to that
    /// model's engine and echoes the resolved name in the ack, which this
    /// constructor cross-checks along with the usual label/`N`/`P` replica
    /// validation. A nameless [`RemoteDefense::connect`] gets the server's
    /// default model instead.
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::connect`], plus a typed
    /// [`crate::ErrorCode::UnknownModel`] report (surfaced as
    /// [`ServeError::Remote`]) when the server does not serve `model`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler::{Defense, EngineConfig};
    /// use ensembler_serve::{demo_pipeline, DefenseServer, ModelRegistry, RemoteDefense, ServerConfig};
    /// use ensembler_tensor::Tensor;
    /// use std::sync::Arc;
    ///
    /// // One process, two models.
    /// let alpha: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 5)?);
    /// let beta: Arc<dyn Defense> = Arc::new(demo_pipeline(3, 2, 6)?);
    /// let registry = ModelRegistry::new("alpha", Arc::clone(&alpha), EngineConfig::default())?
    ///     .with_model("beta", Arc::clone(&beta), EngineConfig::default())?;
    /// let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", ServerConfig::default())?;
    ///
    /// // A v3 client picks its model by name and gets bit-identical results.
    /// let remote = RemoteDefense::connect_model(Arc::clone(&beta), server.local_addr(), "beta")?;
    /// assert_eq!(remote.model(), Some("beta"));
    /// let images = Tensor::ones(&[1, 3, 16, 16]);
    /// assert_eq!(remote.predict(&images)?, beta.predict(&images)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn connect_model(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        model: &str,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, PROTOCOL_VERSION, Some(model.to_string()))
    }

    /// [`RemoteDefense::connect`] with an explicit cap on the protocol
    /// version offered in the handshake.
    ///
    /// Capping at 1 reproduces a legacy client: the connection negotiates
    /// down and every exchange travels in `f32` frames, which is also the
    /// compatibility path an int8 replica takes against a v1 server (the
    /// quantize→dequantize round trips are part of the int8 pipeline's own
    /// semantics, so even the f32-framed exchange stays bit-exact).
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::connect`], plus an error for a zero or
    /// unsupported `max_version`.
    pub fn connect_with_max_version(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        max_version: u16,
    ) -> Result<Self, ServeError> {
        Self::connect_inner(local, addr, max_version, None)
    }

    fn connect_inner(
        local: std::sync::Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        max_version: u16,
        model: Option<String>,
    ) -> Result<Self, ServeError> {
        if max_version == 0 || max_version > PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion {
                offered: max_version,
                supported: PROTOCOL_VERSION,
            });
        }
        if model.is_some() && max_version < 3 {
            return Err(ServeError::Protocol(format!(
                "requesting a model by name needs protocol v3, but the version cap is {max_version}"
            )));
        }
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_message(
            &mut stream,
            &Message::Hello(Hello {
                max_version,
                model: model.clone(),
            }),
        )?;
        let peer = match read_message(&mut stream, DEFAULT_MAX_PAYLOAD_BYTES)? {
            Message::HelloAck(ack) => ack,
            Message::Error(wire) => return Err(ServeError::Remote(wire)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected HelloAck, got {:?}",
                    other.message_type()
                )))
            }
        };
        if peer.version == 0 || peer.version > max_version {
            return Err(ServeError::UnsupportedVersion {
                offered: peer.version,
                supported: max_version,
            });
        }
        if model.is_some() && peer.model != model {
            return Err(ServeError::Protocol(format!(
                "requested model {:?} but the server pinned the connection to {:?}",
                model.as_deref().unwrap_or(""),
                peer.model.as_deref().unwrap_or("<unnamed>")
            )));
        }
        if peer.label != local.label()
            || peer.ensemble_size as usize != local.ensemble_size()
            || peer.selected_count as usize != local.selected_count()
        {
            return Err(ServeError::Protocol(format!(
                "server pipeline ({} N={} P={}) does not match the local replica ({} N={} P={})",
                peer.label,
                peer.ensemble_size,
                peer.selected_count,
                local.label(),
                local.ensemble_size(),
                local.selected_count()
            )));
        }
        Ok(Self {
            local,
            stream: Mutex::new(stream),
            peer,
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
        })
    }

    /// The protocol version negotiated with the server.
    pub fn negotiated_version(&self) -> u16 {
        self.peer.version
    }

    /// The pipeline description the server reported at handshake time.
    pub fn peer_label(&self) -> &str {
        &self.peer.label
    }

    /// The registry model name this connection is pinned to, as echoed by
    /// the server — `None` on a legacy or nameless connection (which the
    /// server pins to its default model without naming it).
    pub fn model(&self) -> Option<&str> {
        self.peer.model.as_deref()
    }

    /// Whether this connection ships the `server_outputs` stage in quantized
    /// (protocol-v2) frames: the replica must be an int8 pipeline and the
    /// server must have negotiated version 2.
    pub fn uses_quantized_frames(&self) -> bool {
        self.peer.version >= 2 && self.local.precision() == Precision::Int8
    }

    /// One `f32` request/response exchange on the shared connection.
    fn exchange(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, ServeError> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
        write_message(
            &mut *stream,
            &Message::ServerOutputsRequest {
                transmitted: transmitted.clone(),
            },
        )?;
        match read_message(&mut *stream, self.max_payload_bytes)? {
            Message::ServerOutputsResponse { maps } => Ok(maps),
            Message::Error(wire) => Err(ServeError::Remote(wire)),
            other => Err(ServeError::Protocol(format!(
                "expected ServerOutputsResponse, got {:?}",
                other.message_type()
            ))),
        }
    }

    /// One quantized (protocol-v2) request/response exchange.
    fn exchange_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, ServeError> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
        write_message(
            &mut *stream,
            &Message::ServerOutputsRequestQ {
                transmitted: transmitted.clone(),
            },
        )?;
        match read_message(&mut *stream, self.max_payload_bytes)? {
            Message::ServerOutputsResponseQ { maps } => Ok(maps),
            Message::Error(wire) => Err(ServeError::Remote(wire)),
            other => Err(ServeError::Protocol(format!(
                "expected ServerOutputsResponseQ, got {:?}",
                other.message_type()
            ))),
        }
    }

    /// One sub-range (protocol-v4) exchange: asks the server to evaluate
    /// only its bodies `lo..hi` and returns the `hi - lo` feature maps —
    /// the per-worker leg of a scatter-gather router.
    ///
    /// # Errors
    ///
    /// Returns an error when the connection negotiated a version below 4,
    /// when the wire exchange fails, when the server reports a typed error
    /// (e.g. an out-of-range `lo..hi`), or when the map count disagrees
    /// with `hi - lo`.
    pub fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, ServeError> {
        self.check_range_version()?;
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
        write_message(
            &mut *stream,
            &Message::ServerOutputsRequestRange {
                lo: lo as u32,
                hi: hi as u32,
                transmitted: transmitted.clone(),
            },
        )?;
        let maps = match read_message(&mut *stream, self.max_payload_bytes)? {
            Message::ServerOutputsResponse { maps } => maps,
            Message::Error(wire) => return Err(ServeError::Remote(wire)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected ServerOutputsResponse, got {:?}",
                    other.message_type()
                )))
            }
        };
        check_range_map_count(maps.len(), lo, hi)?;
        Ok(maps)
    }

    /// The quantized sibling of [`RemoteDefense::server_outputs_range`]:
    /// ships the range request in int8 frames and returns `hi - lo`
    /// quantized maps.
    ///
    /// # Errors
    ///
    /// As for [`RemoteDefense::server_outputs_range`].
    pub fn server_outputs_quantized_range(
        &self,
        transmitted: &QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, ServeError> {
        self.check_range_version()?;
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| ServeError::Protocol("connection mutex poisoned".to_string()))?;
        write_message(
            &mut *stream,
            &Message::ServerOutputsRequestRangeQ {
                lo: lo as u32,
                hi: hi as u32,
                transmitted: transmitted.clone(),
            },
        )?;
        let maps = match read_message(&mut *stream, self.max_payload_bytes)? {
            Message::ServerOutputsResponseQ { maps } => maps,
            Message::Error(wire) => return Err(ServeError::Remote(wire)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected ServerOutputsResponseQ, got {:?}",
                    other.message_type()
                )))
            }
        };
        check_range_map_count(maps.len(), lo, hi)?;
        Ok(maps)
    }

    fn check_range_version(&self) -> Result<(), ServeError> {
        if self.peer.version < 4 {
            return Err(ServeError::Protocol(format!(
                "sub-range requests need protocol v4, connection negotiated v{}",
                self.peer.version
            )));
        }
        Ok(())
    }

    fn check_map_count(&self, got: usize) -> Result<(), EnsemblerError> {
        if got != self.local.ensemble_size() {
            return Err(EnsemblerError::Transport(format!(
                "server returned {got} maps for an ensemble of {}",
                self.local.ensemble_size()
            )));
        }
        Ok(())
    }
}

/// Validates that a range response carries exactly `hi - lo` maps.
fn check_range_map_count(got: usize, lo: usize, hi: usize) -> Result<(), ServeError> {
    if got != hi - lo {
        return Err(ServeError::Protocol(format!(
            "server returned {got} maps for the body range {lo}..{hi}"
        )));
    }
    Ok(())
}

impl Defense for RemoteDefense {
    fn config(&self) -> &ResNetConfig {
        self.local.config()
    }

    fn label(&self) -> &str {
        self.local.label()
    }

    /// The local replica's bodies. Under the threat model the adversary owns
    /// the server weights, so attack experiments read them from here exactly
    /// as they would from an in-process pipeline.
    fn server_bodies(&self) -> &[Sequential] {
        self.local.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.local.selected_count()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.local.client_features(images)
    }

    fn precision(&self) -> ensembler::Precision {
        self.local.precision()
    }

    /// Ships the transmitted features to the remote server and returns the
    /// `N` per-network feature maps it sends back.
    ///
    /// For an int8 replica on a v2 connection the exchange travels in
    /// quantized frames: the features are quantized per sample exactly as
    /// the in-process [`ensembler::QuantizedDefense`] would quantize them,
    /// and the server evaluates the received bytes directly — so the remote
    /// prediction is bit-identical to the in-process int8 one while the
    /// response frame shrinks to roughly a quarter of its `f32` size.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        if self.uses_quantized_frames() {
            let qf = QTensorBatch::quantize_batch(transmitted);
            let qmaps = self.exchange_quantized(&qf)?;
            self.check_map_count(qmaps.len())?;
            return Ok(qmaps.iter().map(QTensorBatch::dequantize).collect());
        }
        let maps = self.exchange(transmitted)?;
        self.check_map_count(maps.len())?;
        Ok(maps)
    }

    /// The quantized stage itself, shipped directly when the connection
    /// speaks v2 (used by engines that coalesce quantized work behind a
    /// remote); on a v1 connection it falls back to `f32` frames around the
    /// wire and re-quantizes the results.
    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        if self.peer.version >= 2 {
            let qmaps = self.exchange_quantized(transmitted)?;
            self.check_map_count(qmaps.len())?;
            return Ok(qmaps);
        }
        let maps = self.exchange(&transmitted.dequantize())?;
        self.check_map_count(maps.len())?;
        Ok(maps.iter().map(QTensorBatch::quantize_batch).collect())
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.local.classify(server_maps)
    }
}
