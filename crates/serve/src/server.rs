//! The multi-threaded, multi-model TCP [`DefenseServer`]: the untrusted-cloud
//! half of the paper's deployment, serving the
//! [`ensembler::Defense::server_outputs`] stage of every model in a
//! [`ModelRegistry`] over sockets.
//!
//! Each accepted connection gets a reader thread that speaks the framed
//! protocol of [`crate::protocol`]. The handshake pins the connection to one
//! registered model (protocol-v3 clients name it, legacy clients get the
//! default model); single-image requests are fed through that model's shared
//! [`ensembler::InferenceEngine`] queue, so feature maps arriving on
//! *different* connections coalesce into joint mini-batches exactly like
//! local callers do, while pre-batched requests run directly.
//!
//! A connection that negotiates protocol v5 is **multiplexed**: its requests
//! arrive tagged with request ids, the reader submits them to the engine in
//! arrival order (so coalescing keeps batching across the pipeline) and each
//! one is answered by its own completion thread through a shared write half —
//! out of order whenever the work finishes out of order. Connections at v4
//! and below keep the original lockstep one-request-then-its-response loop,
//! byte for byte.
//!
//! Before any request reaches an engine it must pass **admission control**
//! ([`AdmissionConfig`]): a budget on in-flight requests and bytes, per
//! connection and per server. Over-budget work is answered with a typed
//! [`ErrorCode::Overloaded`] frame and never queued, so a misbehaving client
//! degrades into rejections instead of queueing the process into the ground.
//! `docs/SERVING.md` is the operator guide to tuning these budgets.

use crate::error::ServeError;
use crate::protocol::{
    read_message, read_tagged, write_message, write_tagged, ErrorCode, HelloAck, Message,
    TaggedMessage, WireError, DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION, TAGGED_WIRE_VERSION,
};
use crate::registry::{route_key, ModelRegistry, ModelSlot, ModelStats};
use ensembler::{Defense, EngineConfig, InferenceEngine};
use ensembler_tensor::{QTensorBatch, Tensor};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// In-flight budgets enforced before any request may touch an inference
/// queue.
///
/// "In flight" covers a request from the moment it is admitted until its
/// result has been computed (the budget is released just before the
/// response bytes are written, so a client holding its answer already sees
/// the budget freed). Byte budgets count the raw tensor payload of each
/// admitted request (`f32` elements at 4 bytes, quantized elements at
/// 1 byte plus one 4-byte scale per sample).
///
/// On a multiplexed (protocol-v5) connection many requests are in flight at
/// once, so the per-connection *request* budget is what bounds how deep one
/// client may pipeline — and, since each admitted tagged request occupies a
/// completion thread until answered, how many threads one connection can
/// cost the server. The per-connection *byte* budget caps the payload those
/// in-flight requests may hold between them (and therefore the largest
/// single request), independent of the parse-level
/// [`ServerConfig::max_payload_bytes`] cap. On a lockstep (v1–v4)
/// connection the reader still processes requests strictly one at a time,
/// so only the byte budget ever fires there.
///
/// # Examples
///
/// ```
/// use ensembler_serve::AdmissionConfig;
///
/// let default = AdmissionConfig::default();
/// assert!(default.max_inflight_requests >= 1);
///
/// // An operator tightening a small box: at most 8 requests / 8 MiB in
/// // flight across the whole process, 2 MiB per connection.
/// let tight = AdmissionConfig {
///     max_inflight_requests: 8,
///     max_inflight_bytes: 8 << 20,
///     max_connection_inflight_bytes: 2 << 20,
///     ..AdmissionConfig::default()
/// };
/// assert!(tight.max_connection_inflight_bytes < tight.max_inflight_bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Most requests admitted concurrently across the whole server.
    pub max_inflight_requests: u64,
    /// Most admitted-but-unanswered payload bytes across the whole server.
    pub max_inflight_bytes: u64,
    /// Most requests one connection may have in flight (must be ≥ 1).
    pub max_connection_inflight_requests: u64,
    /// Most in-flight payload bytes one connection may hold — effectively
    /// the largest single request a connection can submit.
    pub max_connection_inflight_bytes: u64,
    /// Most connections served concurrently. Each live connection costs one
    /// reader thread plus up to [`ServerConfig::max_payload_bytes`] of
    /// receive buffer *before* per-request admission runs, so this cap is
    /// what actually bounds a thundering herd of sockets; over-limit
    /// connections are answered with an `Overloaded` frame and hung up on.
    pub max_connections: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_inflight_requests: 64,
            max_inflight_bytes: 256 << 20,
            max_connection_inflight_requests: 4,
            max_connection_inflight_bytes: 64 << 20,
            max_connections: 256,
        }
    }
}

/// Tuning knobs of a [`DefenseServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Configuration of the per-model [`InferenceEngine`]s behind the
    /// sockets (used by [`DefenseServer::bind`]; [`ModelRegistry`] callers
    /// configure each engine at registration time).
    pub engine: EngineConfig,
    /// Largest request payload a connection will accept, in bytes.
    pub max_payload_bytes: u32,
    /// How long a reader thread waits for the next frame before closing the
    /// connection (`None` = wait forever). The default (2 minutes) bounds
    /// how long an idle, trickling or half-open peer can pin an OS thread;
    /// a timed-out client simply reconnects.
    pub read_timeout: Option<std::time::Duration>,
    /// How long a response write may block before the connection is closed
    /// (`None` = wait forever). The default (1 minute) bounds how long a
    /// client that stops reading its responses can pin a reader thread —
    /// and therefore how long a draining [`DefenseServer::shutdown`] can be
    /// held up by one misbehaving peer.
    pub write_timeout: Option<std::time::Duration>,
    /// In-flight request/byte budgets enforced before queueing any work.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
            read_timeout: Some(std::time::Duration::from_secs(120)),
            write_timeout: Some(std::time::Duration::from_secs(60)),
            admission: AdmissionConfig::default(),
        }
    }
}

/// A snapshot of everything a server has done and is doing: global counters,
/// the live admission state, and the per-model engine counters.
///
/// # Examples
///
/// ```
/// use ensembler::Defense;
/// use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServerConfig};
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(2, 1, 3)?);
/// let server = DefenseServer::bind(
///     Arc::clone(&pipeline),
///     "127.0.0.1:0",
///     ServerConfig::default(),
/// )?;
/// let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?;
/// remote.predict(&Tensor::ones(&[2, 3, 16, 16]))?;
///
/// let stats = server.stats();
/// assert_eq!(stats.connections_accepted, 1);
/// assert_eq!(stats.requests_served, 1);
/// assert_eq!(stats.requests_rejected, 0);
/// assert_eq!(stats.inflight_requests, 0); // everything answered
/// // One engine per registered model; `bind` registers one model.
/// assert_eq!(stats.per_model.len(), 1);
/// assert_eq!(stats.per_model[0].model, "default");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// TCP connections accepted (including ones that failed the handshake).
    pub connections_accepted: u64,
    /// Request frames answered with a response, over all models.
    pub requests_served: u64,
    /// Requests refused by admission control with an `Overloaded` frame.
    pub requests_rejected: u64,
    /// Error frames sent to clients (rejections included).
    pub errors_sent: u64,
    /// Requests admitted but not yet answered at snapshot time.
    pub inflight_requests: u64,
    /// Payload bytes admitted but not yet answered at snapshot time.
    pub inflight_bytes: u64,
    /// Per-model engine counters (requests, batches, queue depth), sorted by
    /// model name.
    pub per_model: Vec<ModelStats>,
    /// Per-shard router counters. Empty on an ordinary server; the
    /// `shard_router` binary fills one entry per worker from
    /// `ensembler_shard::ShardRouter::shard_stats` when it snapshots its
    /// frontend server.
    pub per_shard: Vec<ShardStats>,
}

/// Counters for one worker of a scatter-gather shard router, as surfaced
/// through [`ServerStats::per_shard`].
///
/// The struct lives here (rather than in the shard crate) so the serving
/// stats type can carry it without a circular dependency; the router crate
/// produces the values.
///
/// # Examples
///
/// ```
/// use ensembler_serve::ShardStats;
///
/// let shard = ShardStats {
///     addr: "10.0.0.7:7000".to_string(),
///     lo: 4,
///     hi: 8,
///     quantized: true,
///     healthy: true,
///     requests: 128,
///     hedges_fired: 3,
///     health_flaps: 1,
/// };
/// assert_eq!(shard.hi - shard.lo, 4); // four bodies placed on this worker
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// The worker's address, as given in the placement.
    pub addr: String,
    /// First server body index placed on this worker (inclusive).
    pub lo: u32,
    /// One past the last server body index placed on this worker.
    pub hi: u32,
    /// Whether the router ships this worker quantized (int8) frames.
    pub quantized: bool,
    /// Whether the worker answered its most recent health probe (or
    /// request).
    pub healthy: bool,
    /// Range requests this worker has answered successfully.
    pub requests: u64,
    /// Hedged duplicate requests fired at this worker after the primary
    /// exchange stayed silent past the hedge threshold.
    pub hedges_fired: u64,
    /// Healthy↔unhealthy transitions observed by the health monitor.
    pub health_flaps: u64,
}

#[derive(Debug, Default)]
struct ServerStatsCells {
    connections: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

#[derive(Debug, Default, Clone, Copy)]
struct InflightCounters {
    requests: u64,
    bytes: u64,
}

/// Shared admission state: the budgets plus the server-wide in-flight
/// counters.
#[derive(Debug)]
struct Admission {
    config: AdmissionConfig,
    inflight: Mutex<InflightCounters>,
}

/// Per-connection in-flight counters. The reader thread is the only
/// admitter, but on a multiplexed connection the *releases* come from
/// per-request completion threads, so the counters are atomics.
#[derive(Debug, Default)]
struct ConnectionBudget {
    requests: AtomicU64,
    bytes: AtomicU64,
}

/// An admitted request's hold on the budgets; dropping it releases them.
/// The permit owns its books (`Arc`s, not borrows) so it can ride into the
/// completion thread of a multiplexed request and release from there.
struct AdmissionPermit {
    admission: Arc<Admission>,
    connection: Arc<ConnectionBudget>,
    bytes: u64,
}

impl Admission {
    fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            inflight: Mutex::new(InflightCounters::default()),
        }
    }

    /// Admits a request of `bytes` payload bytes or explains the refusal.
    fn try_admit(
        self: &Arc<Self>,
        connection: &Arc<ConnectionBudget>,
        bytes: u64,
    ) -> Result<AdmissionPermit, String> {
        let cfg = &self.config;
        // Permanently inadmissible requests are told so first, whatever the
        // transient state: the "outright" wording is the client's signal to
        // split the batch instead of retrying forever.
        if bytes > cfg.max_connection_inflight_bytes {
            return Err(format!(
                "request of {bytes} B exceeds the per-connection in-flight byte budget \
                 ({} B) outright; it will never be admitted — split the batch",
                cfg.max_connection_inflight_bytes
            ));
        }
        if bytes > cfg.max_inflight_bytes {
            return Err(format!(
                "request of {bytes} B exceeds the server in-flight byte budget ({} B) \
                 outright; it will never be admitted — split the batch",
                cfg.max_inflight_bytes
            ));
        }
        if connection.requests.load(Ordering::Relaxed) >= cfg.max_connection_inflight_requests {
            return Err(format!(
                "connection already has {} requests in flight (per-connection budget {})",
                connection.requests.load(Ordering::Relaxed),
                cfg.max_connection_inflight_requests
            ));
        }
        if connection.bytes.load(Ordering::Relaxed) + bytes > cfg.max_connection_inflight_bytes {
            return Err(format!(
                "request of {bytes} B would exceed the per-connection in-flight byte \
                 budget ({} B); retry after earlier requests drain",
                cfg.max_connection_inflight_bytes
            ));
        }
        let mut inflight = self
            .inflight
            .lock()
            .expect("admission mutex is never poisoned");
        if inflight.requests >= cfg.max_inflight_requests {
            return Err(format!(
                "server already has {} requests in flight (budget {})",
                inflight.requests, cfg.max_inflight_requests
            ));
        }
        if inflight.bytes + bytes > cfg.max_inflight_bytes {
            return Err(format!(
                "request of {bytes} B would exceed the server in-flight byte budget \
                 ({} B, {} B already in flight); retry after earlier requests drain",
                cfg.max_inflight_bytes, inflight.bytes
            ));
        }
        inflight.requests += 1;
        inflight.bytes += bytes;
        connection.requests.fetch_add(1, Ordering::Relaxed);
        connection.bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(AdmissionPermit {
            admission: Arc::clone(self),
            connection: Arc::clone(connection),
            bytes,
        })
    }

    fn snapshot(&self) -> InflightCounters {
        *self
            .inflight
            .lock()
            .expect("admission mutex is never poisoned")
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut inflight = self
            .admission
            .inflight
            .lock()
            .expect("admission mutex is never poisoned");
        inflight.requests -= 1;
        inflight.bytes -= self.bytes;
        self.connection.requests.fetch_sub(1, Ordering::Relaxed);
        self.connection
            .bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// The live connections a server has spawned: the reader-thread handles (so
/// a draining shutdown can join them) and a read-half clone of each stream
/// (so it can unblock readers parked in `read`), keyed by connection id.
///
/// A connection removes its own stream clone when it ends — a lingering
/// clone would hold the socket open after the reader exits, so an idle
/// timeout or error would never surface to the client as EOF. The accept
/// loop sweeps finished thread handles on each new connection, so neither
/// vector grows with the lifetime total of connections.
#[derive(Debug, Default)]
struct ConnectionTable {
    streams: Mutex<Vec<(u64, TcpStream)>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnectionTable {
    fn forget_stream(&self, id: u64) {
        self.streams
            .lock()
            .expect("connection table mutex is never poisoned")
            .retain(|(stream_id, _)| *stream_id != id);
    }
}

/// A TCP frontend serving the `server_outputs` stage of every model in a
/// [`ModelRegistry`].
///
/// Binding spawns an accept loop plus one reader thread per connection.
/// [`DefenseServer::shutdown`] drains gracefully: it stops accepting, lets
/// every in-flight request finish and answers it, then joins all connection
/// threads. Merely dropping the server only stops accepting new connections
/// (established connections keep their engines alive until their clients
/// disconnect or time out).
///
/// # Examples
///
/// ```
/// use ensembler::{DefenseKind, SinglePipeline};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_serve::{DefenseServer, RemoteDefense, ServerConfig};
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let pipeline: Arc<dyn ensembler::Defense> = Arc::new(SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::NoDefense,
///     5,
/// )?);
/// let server = DefenseServer::bind(
///     Arc::clone(&pipeline),
///     "127.0.0.1:0",
///     ServerConfig::default(),
/// )?;
///
/// // A remote client with the same client-side replica predicts through the
/// // socket and gets bit-identical logits.
/// let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?;
/// let images = Tensor::ones(&[2, 3, 8, 8]);
/// use ensembler::Defense;
/// assert_eq!(remote.predict(&images)?, pipeline.predict(&images)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DefenseServer {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    stats: Arc<ServerStatsCells>,
    registry: Arc<ModelRegistry>,
    admission: Arc<Admission>,
    connections: Arc<ConnectionTable>,
}

impl DefenseServer {
    /// Binds a single-model server on `addr` (use port 0 for an ephemeral
    /// port): `defense` is registered as the `"default"` model, which is
    /// what every legacy client and every nameless v3 hello resolves to.
    ///
    /// # Errors
    ///
    /// Returns an error if the bind fails or a configuration is invalid.
    pub fn bind(
        defense: Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let registry = ModelRegistry::new("default", defense, config.engine)?;
        Self::bind_registry(registry, addr, config)
    }

    /// Binds a multi-model server on `addr` serving every model in
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bind fails or the admission budgets are
    /// degenerate (a zero budget would reject every request).
    pub fn bind_registry(
        registry: ModelRegistry,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let admission = config.admission;
        if admission.max_inflight_requests == 0
            || admission.max_inflight_bytes == 0
            || admission.max_connection_inflight_requests == 0
            || admission.max_connection_inflight_bytes == 0
            || admission.max_connections == 0
        {
            return Err(ServeError::Registry(
                "admission budgets must all be positive (a zero budget rejects everything)"
                    .to_string(),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(registry);
        let running = Arc::new(AtomicBool::new(true));
        let draining = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStatsCells::default());
        let admission = Arc::new(Admission::new(admission));
        let connections = Arc::new(ConnectionTable::default());

        let accept_running = Arc::clone(&running);
        let accept_draining = Arc::clone(&draining);
        let accept_registry = Arc::clone(&registry);
        let accept_stats = Arc::clone(&stats);
        let accept_admission = Arc::clone(&admission);
        let accept_connections = Arc::clone(&connections);
        let accept_handle = std::thread::spawn(move || {
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if !accept_running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                // The connection cap is what bounds reader threads and
                // pre-admission receive buffers; over-limit peers get a
                // typed rejection and a hangup instead of a reader thread.
                let live = accept_connections
                    .streams
                    .lock()
                    .expect("connection table mutex is never poisoned")
                    .len() as u64;
                if live >= config.admission.max_connections {
                    let stats = Arc::clone(&accept_stats);
                    let limit = config.admission.max_connections;
                    // A short-lived thread, so a peer slow to send its Hello
                    // cannot stall the accept loop.
                    std::thread::spawn(move || reject_connection(stream, &stats, limit));
                    continue;
                }
                let id = next_id;
                next_id += 1;
                // Without a trackable read-half clone a draining shutdown
                // could never unblock this reader, so refuse the connection
                // (the close reads as EOF; the client reconnects).
                let Ok(read_half) = stream.try_clone() else {
                    continue;
                };
                accept_connections
                    .streams
                    .lock()
                    .expect("connection table mutex is never poisoned")
                    .push((id, read_half));
                let registry = Arc::clone(&accept_registry);
                let stats = Arc::clone(&accept_stats);
                let admission = Arc::clone(&accept_admission);
                let draining = Arc::clone(&accept_draining);
                let connections = Arc::clone(&accept_connections);
                let handle = std::thread::spawn(move || {
                    // Connection failures only affect that client; the error
                    // has already been reported over the wire where possible.
                    let _ =
                        serve_connection(stream, &registry, &stats, &admission, &draining, config);
                    // Drop the table's clone too, so the peer sees the
                    // connection actually close.
                    connections.forget_stream(id);
                });
                let mut handles = accept_connections
                    .handles
                    .lock()
                    .expect("connection table mutex is never poisoned");
                handles.retain(|h| !h.is_finished());
                handles.push(handle);
            }
        });

        Ok(Self {
            local_addr,
            running,
            draining,
            accept_handle: Some(accept_handle),
            stats,
            registry,
            admission,
            connections,
        })
    }

    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The model registry this server serves. The registry is mutable from
    /// `&self` — [`ModelRegistry::swap`] / [`ModelRegistry::set_canary`] /
    /// [`ModelRegistry::promote`] reconfigure a *live* server with zero
    /// dropped requests. Returned as the shared handle so a reload thread
    /// (e.g. `serve_defense`'s manifest watcher) can own a clone.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// A snapshot of the serving counters, admission state and per-model
    /// engine counters.
    pub fn stats(&self) -> ServerStats {
        let inflight = self.admission.snapshot();
        ServerStats {
            connections_accepted: self.stats.connections.load(Ordering::Relaxed),
            requests_served: self.stats.requests.load(Ordering::Relaxed),
            requests_rejected: self.stats.rejected.load(Ordering::Relaxed),
            errors_sent: self.stats.errors.load(Ordering::Relaxed),
            inflight_requests: inflight.requests,
            inflight_bytes: inflight.bytes,
            per_model: self.registry.stats(),
            per_shard: Vec::new(),
        }
    }

    /// Coalescing statistics of the **default** model's engine (multi-model
    /// callers read every engine through [`DefenseServer::stats`]).
    pub fn engine_stats(&self) -> ensembler::EngineStats {
        self.registry.default_engine().stats()
    }

    /// Gracefully shuts the server down: stops accepting, lets every
    /// admitted request finish and deliver its response, then joins all
    /// connection threads and returns the final counters.
    ///
    /// In-flight batches are *drained*, never abandoned — a client whose
    /// request was admitted before shutdown began receives its complete,
    /// bit-identical response. Clients merely connected but idle are hung up
    /// on.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_accepting();
        self.draining.store(true, Ordering::SeqCst);
        // Unblock readers parked in `read`: shut the read half of every
        // connection. Threads mid-request keep computing and still write
        // their response (the write half stays open), then exit.
        for (_, stream) in self
            .connections
            .streams
            .lock()
            .expect("connection table mutex is never poisoned")
            .iter()
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .connections
                .handles
                .lock()
                .expect("connection table mutex is never poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Stops the accept loop and joins it (idempotent).
    fn stop_accepting(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection to ourselves.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the matching loopback instead.
        let mut unblock = self.local_addr;
        if unblock.ip().is_unspecified() {
            unblock.set_ip(match unblock.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(unblock);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DefenseServer {
    fn drop(&mut self) {
        // Dropping (without `shutdown`) only stops accepting: established
        // connections hold their own engine handles and drain naturally.
        self.stop_accepting();
    }
}

/// Refuses a connection that arrived over the [`AdmissionConfig`] limit:
/// reads (and discards) the client's hello first, then answers with a typed
/// `Overloaded` frame and hangs up. Reading first matters — closing a
/// socket with unread data in its receive queue resets the connection, and
/// a reset discards the error frame before the client can read it.
fn reject_connection(mut stream: TcpStream, stats: &ServerStatsCells, limit: u64) {
    stream.set_nodelay(true).ok();
    let brief = Some(std::time::Duration::from_millis(500));
    stream.set_read_timeout(brief).ok();
    stream.set_write_timeout(brief).ok();
    let _ = read_message(&mut stream, 512); // hello payloads are tiny
    send_error(
        &mut stream,
        stats,
        ErrorCode::Overloaded,
        format!("server is at its connection limit ({limit}); retry later"),
    );
}

/// Sends an error frame, counting it; I/O failures while reporting are
/// swallowed (the connection is going away regardless).
fn send_error(stream: &mut TcpStream, stats: &ServerStatsCells, code: ErrorCode, message: String) {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    let _ = write_message(stream, &Message::Error(WireError { code, message }));
}

/// Maps a receive failure to the error frame the client should see.
fn receive_failure_report(error: &ServeError) -> Option<(ErrorCode, String)> {
    match error {
        // Disconnects (including clean EOF between frames) are not errors.
        ServeError::Io(_) => None,
        ServeError::Checksum { .. } => Some((ErrorCode::ChecksumMismatch, error.to_string())),
        ServeError::UnsupportedVersion { .. } => {
            Some((ErrorCode::UnsupportedVersion, error.to_string()))
        }
        _ => Some((ErrorCode::MalformedFrame, error.to_string())),
    }
}

/// What a successful handshake pins the connection to: the resolved model's
/// *slot* (stable across hot swaps — each request resolves the slot's
/// current engine) and the negotiated protocol version. `None` means the
/// connection should end (the error, if any, has been reported over the
/// wire).
type NegotiatedSlot = Option<(Arc<ModelSlot>, u16)>;

/// Performs the handshake and resolves the model this connection serves,
/// along with the protocol version the ack committed to.
fn handshake(
    stream: &mut TcpStream,
    registry: &ModelRegistry,
    stats: &ServerStatsCells,
    draining: &AtomicBool,
    config: &ServerConfig,
) -> Result<NegotiatedSlot, ServeError> {
    let hello = match read_message(stream, config.max_payload_bytes) {
        Ok(Message::Hello(hello)) => hello,
        Ok(other) => {
            send_error(
                stream,
                stats,
                ErrorCode::UnexpectedMessage,
                format!("expected Hello, got {:?}", other.message_type()),
            );
            return Ok(None);
        }
        Err(error) => {
            match receive_failure_report(&error) {
                Some((code, message)) => send_error(stream, stats, code, message),
                // A read cut short by a draining shutdown must surface to
                // the client as a typed error, not a raw EOF/reset: the
                // write half is still open, so tell the peer to retry
                // elsewhere before hanging up.
                None if draining.load(Ordering::SeqCst) => send_error(
                    stream,
                    stats,
                    ErrorCode::Overloaded,
                    "server is draining for shutdown; retry against another replica".to_string(),
                ),
                None => {}
            }
            return Err(error);
        }
    };
    if hello.max_version < 1 {
        send_error(
            stream,
            stats,
            ErrorCode::UnsupportedVersion,
            format!(
                "client speaks up to v{}, server requires at least v1",
                hello.max_version
            ),
        );
        return Ok(None);
    }
    if hello.model.is_some() && hello.max_version < 3 {
        send_error(
            stream,
            stats,
            ErrorCode::UnsupportedVersion,
            format!(
                "naming a model requires offering at least v3, client offered v{}",
                hello.max_version
            ),
        );
        return Ok(None);
    }
    let Some(slot) = registry.resolve(hello.model.as_deref()) else {
        let requested = hello.model.as_deref().unwrap_or("<default>");
        send_error(
            stream,
            stats,
            ErrorCode::UnknownModel,
            format!(
                "model {requested:?} is not served here; available models: {}",
                registry.names().join(", ")
            ),
        );
        return Ok(None);
    };
    // The ack describes the primary version; swaps and canaries are
    // handshake-compatible by construction (the registry enforces it), so
    // the description stays true for the connection's whole life.
    let engine = slot.primary_engine();
    let defense = engine.defense();
    let version = PROTOCOL_VERSION.min(hello.max_version);
    let ack = HelloAck {
        version,
        label: defense.label().to_string(),
        ensemble_size: defense.ensemble_size() as u32,
        selected_count: defense.selected_count() as u32,
        // Echo the resolved name only to clients that asked by name, so acks
        // to legacy clients stay byte-identical to a version-1 build's.
        model: hello.model.as_ref().map(|_| slot.name().to_string()),
    };
    write_message(stream, &Message::HelloAck(ack))?;
    Ok(Some((slot, version)))
}

/// Payload bytes a request holds against the admission budgets: raw element
/// bytes for `f32` tensors, element + per-sample scale bytes for quantized
/// ones.
fn f32_request_bytes(transmitted: &Tensor) -> u64 {
    4 * transmitted.len() as u64
}

/// Quantized sibling of [`f32_request_bytes`].
fn q_request_bytes(transmitted: &QTensorBatch) -> u64 {
    let elements: usize = transmitted.shape().iter().product();
    elements as u64 + 4 * transmitted.batch() as u64
}

/// The canary routing key of an `f32` request: a hash of the transmitted
/// feature bits, so the same request content always routes to the same
/// version whatever connection or retry carried it.
fn f32_route_key(transmitted: &Tensor) -> u64 {
    route_key(
        transmitted
            .data()
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes()),
    )
}

/// Quantized sibling of [`f32_route_key`] (hashes elements and scales).
fn q_route_key(transmitted: &QTensorBatch) -> u64 {
    route_key(
        transmitted.data().iter().map(|b| *b as u8).chain(
            transmitted
                .scales()
                .iter()
                .flat_map(|s| s.to_bits().to_le_bytes()),
        ),
    )
}

/// Drives one connection: handshake, then a request/response loop against
/// the model the handshake pinned. A connection that negotiated protocol v5
/// runs the multiplexed loop (tagged frames, out-of-order completion); older
/// connections keep the original lockstep loop, byte for byte.
fn serve_connection(
    mut stream: TcpStream,
    registry: &ModelRegistry,
    stats: &Arc<ServerStatsCells>,
    admission: &Arc<Admission>,
    draining: &AtomicBool,
    config: ServerConfig,
) -> Result<(), ServeError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(config.read_timeout).ok();
    stream.set_write_timeout(config.write_timeout).ok();

    let Some((slot, version)) = handshake(&mut stream, registry, stats, draining, &config)? else {
        return Ok(());
    };
    if version >= TAGGED_WIRE_VERSION {
        serve_multiplexed(stream, &slot, stats, admission, draining, &config)
    } else {
        serve_lockstep(stream, &slot, stats, admission, draining, &config)
    }
}

/// The pre-v5 request/response loop: one request at a time, answered in
/// place on the reader thread. The engine is resolved from the slot per
/// request, so a hot swap or canary change takes effect on the very next
/// request of an already-connected client.
fn serve_lockstep(
    mut stream: TcpStream,
    slot: &ModelSlot,
    stats: &ServerStatsCells,
    admission: &Arc<Admission>,
    draining: &AtomicBool,
    config: &ServerConfig,
) -> Result<(), ServeError> {
    let budget = Arc::new(ConnectionBudget::default());

    loop {
        if draining.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_message(&mut stream, config.max_payload_bytes) {
            Ok(Message::ServerOutputsRequest { transmitted }) => {
                let permit = match admission.try_admit(&budget, f32_request_bytes(&transmitted)) {
                    Ok(permit) => permit,
                    Err(reason) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        send_error(&mut stream, stats, ErrorCode::Overloaded, reason);
                        continue;
                    }
                };
                let (engine, _) = slot.engine_for(f32_route_key(&transmitted));
                let result = run_request(&engine, transmitted);
                // Release before writing: a client that has its answer must
                // already see the budget freed (and itself in the stats).
                drop(permit);
                match result {
                    Ok(maps) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponse { maps })?;
                    }
                    // Inference errors are per-request: report and keep the
                    // connection alive for the next request.
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::ServerOutputsRequestQ { transmitted }) => {
                let permit = match admission.try_admit(&budget, q_request_bytes(&transmitted)) {
                    Ok(permit) => permit,
                    Err(reason) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        send_error(&mut stream, stats, ErrorCode::Overloaded, reason);
                        continue;
                    }
                };
                let (engine, _) = slot.engine_for(q_route_key(&transmitted));
                let result = run_request_quantized(&engine, transmitted);
                drop(permit);
                match result {
                    Ok(maps) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponseQ { maps })?;
                    }
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::ServerOutputsRequestRange {
                lo,
                hi,
                transmitted,
            }) => {
                let permit = match admission.try_admit(&budget, f32_request_bytes(&transmitted)) {
                    Ok(permit) => permit,
                    Err(reason) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        send_error(&mut stream, stats, ErrorCode::Overloaded, reason);
                        continue;
                    }
                };
                let (engine, _) = slot.engine_for(f32_route_key(&transmitted));
                let result = run_request_range(&engine, transmitted, lo as usize, hi as usize);
                drop(permit);
                match result {
                    Ok(maps) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponse { maps })?;
                    }
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::ServerOutputsRequestRangeQ {
                lo,
                hi,
                transmitted,
            }) => {
                let permit = match admission.try_admit(&budget, q_request_bytes(&transmitted)) {
                    Ok(permit) => permit,
                    Err(reason) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        send_error(&mut stream, stats, ErrorCode::Overloaded, reason);
                        continue;
                    }
                };
                let (engine, _) = slot.engine_for(q_route_key(&transmitted));
                let result =
                    run_request_range_quantized(&engine, transmitted, lo as usize, hi as usize);
                drop(permit);
                match result {
                    Ok(maps) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponseQ { maps })?;
                    }
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::Error(_)) => return Ok(()), // client gave up; hang up
            Ok(other) => {
                send_error(
                    &mut stream,
                    stats,
                    ErrorCode::UnexpectedMessage,
                    format!(
                        "expected ServerOutputsRequest, got {:?}",
                        other.message_type()
                    ),
                );
                return Ok(());
            }
            Err(error) => {
                let report = receive_failure_report(&error);
                return match report {
                    Some((code, message)) => {
                        send_error(&mut stream, stats, code, message);
                        Err(error)
                    }
                    None => Ok(()), // client disconnected (or shutdown drain)
                };
            }
        }
    }
}

/// A request's evaluation, packaged to run on whichever thread answers it.
type Compute<T> = Box<dyn FnOnce() -> Result<Vec<T>, ensembler::EnsemblerError> + Send>;

/// The protocol-v5 request loop: requests arrive tagged, are admitted and
/// submitted to the engine *in arrival order* on the reader thread (so
/// coalescing still sees them in sequence), and each one is answered by its
/// own completion thread through a shared write half — so responses complete
/// strictly out of order whenever the work does.
///
/// Every exit path joins the outstanding completion threads first, which is
/// what keeps the draining-shutdown guarantee: an admitted request always
/// delivers its response before the connection ends.
fn serve_multiplexed(
    mut stream: TcpStream,
    slot: &ModelSlot,
    stats: &Arc<ServerStatsCells>,
    admission: &Arc<Admission>,
    draining: &AtomicBool,
    config: &ServerConfig,
) -> Result<(), ServeError> {
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let budget = Arc::new(ConnectionBudget::default());
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let result = multiplexed_loop(
        &mut stream,
        &writer,
        slot,
        stats,
        admission,
        draining,
        config,
        &budget,
        &mut handles,
    );
    for handle in handles {
        let _ = handle.join();
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn multiplexed_loop(
    stream: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    slot: &ModelSlot,
    stats: &Arc<ServerStatsCells>,
    admission: &Arc<Admission>,
    draining: &AtomicBool,
    config: &ServerConfig,
    budget: &Arc<ConnectionBudget>,
    handles: &mut Vec<JoinHandle<()>>,
) -> Result<(), ServeError> {
    loop {
        if draining.load(Ordering::SeqCst) {
            return Ok(());
        }
        handles.retain(|handle| !handle.is_finished());
        let TaggedMessage {
            message,
            request_id,
        } = match read_tagged(stream, config.max_payload_bytes) {
            Ok(tagged) => tagged,
            Err(error) => {
                return match receive_failure_report(&error) {
                    // Framing errors are connection-level: the report goes
                    // out untagged, which a multiplexed client reads as
                    // "this connection is dead" and fails its in-flight
                    // requests with a typed error.
                    Some((code, message)) => {
                        send_mux_error(writer, stats, None, code, message);
                        Err(error)
                    }
                    None => Ok(()), // client disconnected (or shutdown drain)
                };
            }
        };
        match message {
            Message::ServerOutputsRequest { transmitted } => {
                let bytes = f32_request_bytes(&transmitted);
                let Some(permit) = admit(writer, stats, admission, budget, request_id, bytes)
                else {
                    continue;
                };
                let (engine, _) = slot.engine_for(f32_route_key(&transmitted));
                let compute = begin_f32(&engine, transmitted);
                finish_request(
                    writer,
                    stats,
                    permit,
                    request_id,
                    compute,
                    handles,
                    |maps| Message::ServerOutputsResponse { maps },
                );
            }
            Message::ServerOutputsRequestQ { transmitted } => {
                let bytes = q_request_bytes(&transmitted);
                let Some(permit) = admit(writer, stats, admission, budget, request_id, bytes)
                else {
                    continue;
                };
                let (engine, _) = slot.engine_for(q_route_key(&transmitted));
                let compute = begin_quantized(&engine, transmitted);
                finish_request(
                    writer,
                    stats,
                    permit,
                    request_id,
                    compute,
                    handles,
                    |maps| Message::ServerOutputsResponseQ { maps },
                );
            }
            Message::ServerOutputsRequestRange {
                lo,
                hi,
                transmitted,
            } => {
                let bytes = f32_request_bytes(&transmitted);
                let Some(permit) = admit(writer, stats, admission, budget, request_id, bytes)
                else {
                    continue;
                };
                let (engine, _) = slot.engine_for(f32_route_key(&transmitted));
                let compute = begin_f32_range(&engine, transmitted, lo as usize, hi as usize);
                finish_request(
                    writer,
                    stats,
                    permit,
                    request_id,
                    compute,
                    handles,
                    |maps| Message::ServerOutputsResponse { maps },
                );
            }
            Message::ServerOutputsRequestRangeQ {
                lo,
                hi,
                transmitted,
            } => {
                let bytes = q_request_bytes(&transmitted);
                let Some(permit) = admit(writer, stats, admission, budget, request_id, bytes)
                else {
                    continue;
                };
                let (engine, _) = slot.engine_for(q_route_key(&transmitted));
                let compute = begin_quantized_range(&engine, transmitted, lo as usize, hi as usize);
                finish_request(
                    writer,
                    stats,
                    permit,
                    request_id,
                    compute,
                    handles,
                    |maps| Message::ServerOutputsResponseQ { maps },
                );
            }
            Message::Error(_) => return Ok(()), // client gave up; hang up
            other => {
                // Connection-level breach: reported untagged, then hang up
                // (in-flight requests still get their answers — the caller
                // joins the completion threads).
                send_mux_error(
                    writer,
                    stats,
                    None,
                    ErrorCode::UnexpectedMessage,
                    format!(
                        "expected ServerOutputsRequest, got {:?}",
                        other.message_type()
                    ),
                );
                return Ok(());
            }
        }
    }
}

/// Admission check for one multiplexed request; a refusal is answered with a
/// typed `Overloaded` frame tagged with the request's own id, so it fails
/// only that request while the connection and its other in-flight requests
/// carry on.
fn admit(
    writer: &Arc<Mutex<TcpStream>>,
    stats: &ServerStatsCells,
    admission: &Arc<Admission>,
    budget: &Arc<ConnectionBudget>,
    request_id: Option<u64>,
    bytes: u64,
) -> Option<AdmissionPermit> {
    match admission.try_admit(budget, bytes) {
        Ok(permit) => Some(permit),
        Err(reason) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            send_mux_error(writer, stats, request_id, ErrorCode::Overloaded, reason);
            None
        }
    }
}

/// Answers one request: releases its admission permit, then writes the
/// response (or a typed per-request error) through the shared write half,
/// tagged with the request's id when it has one.
fn complete_request<T>(
    writer: &Arc<Mutex<TcpStream>>,
    stats: &ServerStatsCells,
    permit: AdmissionPermit,
    request_id: Option<u64>,
    result: Result<Vec<T>, ensembler::EnsemblerError>,
    respond: fn(Vec<T>) -> Message,
) {
    // Release before writing: a client that has its answer must already see
    // the budget freed (and itself in the stats).
    drop(permit);
    match result {
        Ok(maps) => {
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut writer) = writer.lock() {
                let _ = write_tagged(&mut *writer, &respond(maps), request_id);
            }
        }
        Err(error) => send_mux_error(
            writer,
            stats,
            request_id,
            ErrorCode::Inference,
            error.to_string(),
        ),
    }
}

/// Completes one admitted request: a tagged request gets its own completion
/// thread (so the reader can pipeline straight into the next frame), while
/// an untagged request on a v5 connection is answered in place, lockstep
/// style.
fn finish_request<T: Send + 'static>(
    writer: &Arc<Mutex<TcpStream>>,
    stats: &Arc<ServerStatsCells>,
    permit: AdmissionPermit,
    request_id: Option<u64>,
    compute: Compute<T>,
    handles: &mut Vec<JoinHandle<()>>,
    respond: fn(Vec<T>) -> Message,
) {
    match request_id {
        Some(id) => {
            let writer = Arc::clone(writer);
            let stats = Arc::clone(stats);
            handles.push(std::thread::spawn(move || {
                complete_request(&writer, &stats, permit, Some(id), compute(), respond);
            }));
        }
        None => complete_request(writer, stats, permit, None, compute(), respond),
    }
}

/// Packages one `f32` request: single images are submitted to the coalescing
/// queue *now* (on the reader thread, preserving arrival order) and merely
/// awaited by the completion thread; pre-batched requests carry the direct
/// evaluation into the completion thread instead.
fn begin_f32(engine: &Arc<InferenceEngine<dyn Defense>>, transmitted: Tensor) -> Compute<Tensor> {
    if let Err(error) = check_request_shape(engine, transmitted.shape()) {
        return Box::new(move || Err(error));
    }
    if transmitted.shape()[0] == 1 {
        match engine.server_outputs_begin(transmitted) {
            // The closure pins the engine: a request in flight on a version
            // that a registry swap just displaced keeps that engine alive
            // until its answer is delivered, and the displaced engine's
            // teardown runs on the completion thread releasing the last pin
            // — never on the thread performing the swap.
            Ok(pending) => {
                let pin = Arc::clone(engine);
                Box::new(move || {
                    let result = pending.wait();
                    drop(pin);
                    result
                })
            }
            Err(error) => Box::new(move || Err(error)),
        }
    } else {
        let engine = Arc::clone(engine);
        Box::new(move || run_request(&engine, transmitted))
    }
}

/// The quantized sibling of [`begin_f32`].
fn begin_quantized(
    engine: &Arc<InferenceEngine<dyn Defense>>,
    transmitted: QTensorBatch,
) -> Compute<QTensorBatch> {
    if let Err(error) = check_request_shape(engine, transmitted.shape()) {
        return Box::new(move || Err(error));
    }
    if transmitted.batch() == 1 {
        match engine.server_outputs_quantized_begin(transmitted) {
            // Pins the engine across the wait — see `begin_f32`.
            Ok(pending) => {
                let pin = Arc::clone(engine);
                Box::new(move || {
                    let result = pending.wait();
                    drop(pin);
                    result
                })
            }
            Err(error) => Box::new(move || Err(error)),
        }
    } else {
        let engine = Arc::clone(engine);
        Box::new(move || run_request_quantized(&engine, transmitted))
    }
}

/// The sub-range sibling of [`begin_f32`].
fn begin_f32_range(
    engine: &Arc<InferenceEngine<dyn Defense>>,
    transmitted: Tensor,
    lo: usize,
    hi: usize,
) -> Compute<Tensor> {
    if let Err(error) = check_request_shape(engine, transmitted.shape()) {
        return Box::new(move || Err(error));
    }
    if transmitted.shape()[0] == 1 {
        match engine.server_outputs_range_begin(transmitted, lo, hi) {
            // Pins the engine across the wait — see `begin_f32`.
            Ok(pending) => {
                let pin = Arc::clone(engine);
                Box::new(move || {
                    let result = pending.wait();
                    drop(pin);
                    result
                })
            }
            Err(error) => Box::new(move || Err(error)),
        }
    } else {
        let engine = Arc::clone(engine);
        Box::new(move || run_request_range(&engine, transmitted, lo, hi))
    }
}

/// The quantized sub-range sibling of [`begin_f32`].
fn begin_quantized_range(
    engine: &Arc<InferenceEngine<dyn Defense>>,
    transmitted: QTensorBatch,
    lo: usize,
    hi: usize,
) -> Compute<QTensorBatch> {
    if let Err(error) = check_request_shape(engine, transmitted.shape()) {
        return Box::new(move || Err(error));
    }
    if transmitted.batch() == 1 {
        match engine.server_outputs_quantized_range_begin(transmitted, lo, hi) {
            // Pins the engine across the wait — see `begin_f32`.
            Ok(pending) => {
                let pin = Arc::clone(engine);
                Box::new(move || {
                    let result = pending.wait();
                    drop(pin);
                    result
                })
            }
            Err(error) => Box::new(move || Err(error)),
        }
    } else {
        let engine = Arc::clone(engine);
        Box::new(move || run_request_range_quantized(&engine, transmitted, lo, hi))
    }
}

/// The multiplexed sibling of [`send_error`]: writes a typed error frame
/// through the shared write half, tagged with `request_id` when the failure
/// is scoped to one request and untagged when it concerns the connection.
fn send_mux_error(
    writer: &Arc<Mutex<TcpStream>>,
    stats: &ServerStatsCells,
    request_id: Option<u64>,
    code: ErrorCode,
    message: String,
) {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut writer) = writer.lock() {
        let _ = write_tagged(
            &mut *writer,
            &Message::Error(WireError { code, message }),
            request_id,
        );
    }
}

/// Evaluates one request batch, routing single images through the model's
/// shared coalescing queue and pre-assembled batches straight to the
/// pipeline.
///
/// The feature shape is validated against the served backbone *before* the
/// request can reach the coalescing queue: an untrusted peer's malformed
/// request must fail alone, never poison a mini-batch it shares with honest
/// requests from other connections.
fn run_request(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: Tensor,
) -> Result<Vec<Tensor>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.shape()[0] == 1 {
        // The engine catches pipeline panics itself.
        engine.server_outputs_one(transmitted)
    } else {
        // Direct path: a panic (e.g. a shape assert deep in a layer) must
        // become a per-request error, not a dead reader thread.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.defense().server_outputs(&transmitted)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// The quantized (protocol-v2) sibling of [`run_request`]: single-sample
/// requests coalesce through the engine's quantized queue — so v2 requests
/// from different connections batch together, with answers bit-identical to
/// isolated evaluation — and pre-batched requests run direct.
fn run_request_quantized(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: QTensorBatch,
) -> Result<Vec<QTensorBatch>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.batch() == 1 {
        engine.server_outputs_quantized_one(transmitted)
    } else {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.defense().server_outputs_quantized(&transmitted)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs_quantized panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// The sub-range (protocol-v4) sibling of [`run_request`]: evaluates only
/// the server bodies `lo..hi`, the scatter half of sharded serving.
/// Single-image requests coalesce through the engine's per-range queues
/// (requests for the *same* range batch together; different ranges never
/// mix), pre-batched requests run direct.
fn run_request_range(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: Tensor,
    lo: usize,
    hi: usize,
) -> Result<Vec<Tensor>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.shape()[0] == 1 {
        engine.server_outputs_range_one(transmitted, lo, hi)
    } else {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ensembler::check_body_range(lo, hi, engine.defense().ensemble_size())?;
            engine.defense().server_outputs_range(&transmitted, lo, hi)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs_range panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// The quantized sub-range (protocol-v4) sibling of [`run_request_range`].
fn run_request_range_quantized(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: QTensorBatch,
    lo: usize,
    hi: usize,
) -> Result<Vec<QTensorBatch>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.batch() == 1 {
        engine.server_outputs_quantized_range_one(transmitted, lo, hi)
    } else {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ensembler::check_body_range(lo, hi, engine.defense().ensemble_size())?;
            engine
                .defense()
                .server_outputs_quantized_range(&transmitted, lo, hi)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs_quantized_range panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// Validates a request's feature shape against the served backbone *before*
/// it can reach a coalescing queue: an untrusted peer's malformed request
/// must fail alone, never poison a mini-batch it shares with honest requests
/// from other connections.
fn check_request_shape(
    engine: &InferenceEngine<dyn Defense>,
    shape: &[usize],
) -> Result<(), ensembler::EnsemblerError> {
    let expected = engine.defense().config().head_output_shape();
    if shape.len() != 4 || shape[0] == 0 || shape[1..] != expected[..] {
        return Err(ensembler::EnsemblerError::ShapeMismatch(format!(
            "request features {shape:?} do not match the served head output [B, {}, {}, {}]",
            expected[0], expected[1], expected[2]
        )));
    }
    Ok(())
}
