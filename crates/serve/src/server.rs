//! The multi-threaded TCP [`DefenseServer`]: the untrusted-cloud half of the
//! paper's deployment, serving [`ensembler::Defense::server_outputs`] over
//! sockets.
//!
//! Each accepted connection gets a reader thread that speaks the framed
//! protocol of [`crate::protocol`]. Single-image requests are fed through the
//! shared [`InferenceEngine`] queue, so feature maps arriving on *different*
//! connections coalesce into joint mini-batches exactly like local callers
//! do; pre-batched requests run directly on the reader thread (they are
//! already a batch, and inside [`ensembler::Defense::server_outputs`] the `N`
//! bodies still fan out over the cores).

use crate::error::ServeError;
use crate::protocol::{
    read_message, write_message, ErrorCode, Hello, HelloAck, Message, WireError,
    DEFAULT_MAX_PAYLOAD_BYTES, PROTOCOL_VERSION,
};
use ensembler::{Defense, EngineConfig, InferenceEngine};
use ensembler_tensor::{QTensorBatch, Tensor};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs of a [`DefenseServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Configuration of the shared [`InferenceEngine`] behind the sockets.
    pub engine: EngineConfig,
    /// Largest request payload a connection will accept, in bytes.
    pub max_payload_bytes: u32,
    /// How long a reader thread waits for the next frame before closing the
    /// connection (`None` = wait forever). The default (2 minutes) bounds
    /// how long an idle, trickling or half-open peer can pin an OS thread;
    /// a timed-out client simply reconnects.
    pub read_timeout: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            max_payload_bytes: DEFAULT_MAX_PAYLOAD_BYTES,
            read_timeout: Some(std::time::Duration::from_secs(120)),
        }
    }
}

/// Counters describing what a server has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// TCP connections accepted (including ones that failed the handshake).
    pub connections_accepted: u64,
    /// `ServerOutputsRequest` frames answered with a response.
    pub requests_served: u64,
    /// Error frames sent to clients.
    pub errors_sent: u64,
}

#[derive(Debug, Default)]
struct ServerStatsCells {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// A TCP frontend serving any [`Defense`]'s `server_outputs` stage.
///
/// Binding spawns an accept loop plus one reader thread per connection;
/// dropping the server stops accepting new connections and joins the accept
/// loop (established connections end when their clients disconnect or after
/// [`ServerConfig::read_timeout`] of idleness).
///
/// # Examples
///
/// ```
/// use ensembler::{DefenseKind, SinglePipeline};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_serve::{DefenseServer, RemoteDefense, ServerConfig};
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let pipeline: Arc<dyn ensembler::Defense> = Arc::new(SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::NoDefense,
///     5,
/// )?);
/// let server = DefenseServer::bind(
///     Arc::clone(&pipeline),
///     "127.0.0.1:0",
///     ServerConfig::default(),
/// )?;
///
/// // A remote client with the same client-side replica predicts through the
/// // socket and gets bit-identical logits.
/// let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?;
/// let images = Tensor::ones(&[2, 3, 8, 8]);
/// use ensembler::Defense;
/// assert_eq!(remote.predict(&images)?, pipeline.predict(&images)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DefenseServer {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    stats: Arc<ServerStatsCells>,
    engine: Arc<InferenceEngine<dyn Defense>>,
}

impl DefenseServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) and
    /// starts serving `defense`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bind fails or the engine configuration is
    /// invalid.
    pub fn bind(
        defense: Arc<dyn Defense>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let engine = Arc::new(InferenceEngine::new(defense, config.engine)?);
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(ServerStatsCells::default());

        let accept_running = Arc::clone(&running);
        let accept_engine = Arc::clone(&engine);
        let accept_stats = Arc::clone(&stats);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if !accept_running.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&accept_engine);
                let stats = Arc::clone(&accept_stats);
                std::thread::spawn(move || {
                    // Connection failures only affect that client; the error
                    // has already been reported over the wire where possible.
                    let _ = serve_connection(stream, &engine, &stats, config);
                });
            }
        });

        Ok(Self {
            local_addr,
            running,
            accept_handle: Some(accept_handle),
            stats,
            engine,
        })
    }

    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The defense this server exposes.
    pub fn defense(&self) -> &dyn Defense {
        self.engine.defense()
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.stats.connections.load(Ordering::Relaxed),
            requests_served: self.stats.requests.load(Ordering::Relaxed),
            errors_sent: self.stats.errors.load(Ordering::Relaxed),
        }
    }

    /// Coalescing statistics of the engine behind the sockets.
    pub fn engine_stats(&self) -> ensembler::EngineStats {
        self.engine.stats()
    }
}

impl Drop for DefenseServer {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection to ourselves.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the matching loopback instead.
        let mut unblock = self.local_addr;
        if unblock.ip().is_unspecified() {
            unblock.set_ip(match unblock.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(unblock);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Sends an error frame, counting it; I/O failures while reporting are
/// swallowed (the connection is going away regardless).
fn send_error(stream: &mut TcpStream, stats: &ServerStatsCells, code: ErrorCode, message: String) {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    let _ = write_message(stream, &Message::Error(WireError { code, message }));
}

/// Maps a receive failure to the error frame the client should see.
fn receive_failure_report(error: &ServeError) -> Option<(ErrorCode, String)> {
    match error {
        // Disconnects (including clean EOF between frames) are not errors.
        ServeError::Io(_) => None,
        ServeError::Checksum { .. } => Some((ErrorCode::ChecksumMismatch, error.to_string())),
        ServeError::UnsupportedVersion { .. } => {
            Some((ErrorCode::UnsupportedVersion, error.to_string()))
        }
        _ => Some((ErrorCode::MalformedFrame, error.to_string())),
    }
}

/// Drives one connection: handshake, then a request/response loop.
fn serve_connection(
    mut stream: TcpStream,
    engine: &InferenceEngine<dyn Defense>,
    stats: &ServerStatsCells,
    config: ServerConfig,
) -> Result<(), ServeError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(config.read_timeout).ok();

    // Handshake: the first frame must be a Hello offering a version range we
    // overlap with; everything else is answered with an error and a hangup.
    match read_message(&mut stream, config.max_payload_bytes) {
        Ok(Message::Hello(Hello { max_version })) => {
            if max_version < 1 {
                send_error(
                    &mut stream,
                    stats,
                    ErrorCode::UnsupportedVersion,
                    format!("client speaks up to v{max_version}, server requires at least v1"),
                );
                return Ok(());
            }
            let defense = engine.defense();
            let ack = HelloAck {
                version: PROTOCOL_VERSION.min(max_version),
                label: defense.label().to_string(),
                ensemble_size: defense.ensemble_size() as u32,
                selected_count: defense.selected_count() as u32,
            };
            write_message(&mut stream, &Message::HelloAck(ack))?;
        }
        Ok(other) => {
            send_error(
                &mut stream,
                stats,
                ErrorCode::UnexpectedMessage,
                format!("expected Hello, got {:?}", other.message_type()),
            );
            return Ok(());
        }
        Err(error) => {
            if let Some((code, message)) = receive_failure_report(&error) {
                send_error(&mut stream, stats, code, message);
            }
            return Err(error);
        }
    }

    loop {
        match read_message(&mut stream, config.max_payload_bytes) {
            Ok(Message::ServerOutputsRequest { transmitted }) => {
                match run_request(engine, transmitted) {
                    Ok(maps) => {
                        // Count before writing: a client that has its answer
                        // must already see itself in the stats.
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponse { maps })?;
                    }
                    // Inference errors are per-request: report and keep the
                    // connection alive for the next request.
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::ServerOutputsRequestQ { transmitted }) => {
                match run_request_quantized(engine, transmitted) {
                    Ok(maps) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        write_message(&mut stream, &Message::ServerOutputsResponseQ { maps })?;
                    }
                    Err(error) => {
                        send_error(&mut stream, stats, ErrorCode::Inference, error.to_string())
                    }
                }
            }
            Ok(Message::Error(_)) => return Ok(()), // client gave up; hang up
            Ok(other) => {
                send_error(
                    &mut stream,
                    stats,
                    ErrorCode::UnexpectedMessage,
                    format!(
                        "expected ServerOutputsRequest, got {:?}",
                        other.message_type()
                    ),
                );
                return Ok(());
            }
            Err(error) => {
                let report = receive_failure_report(&error);
                return match report {
                    Some((code, message)) => {
                        send_error(&mut stream, stats, code, message);
                        Err(error)
                    }
                    None => Ok(()), // client disconnected
                };
            }
        }
    }
}

/// Evaluates one request batch, routing single images through the shared
/// coalescing queue and pre-assembled batches straight to the pipeline.
///
/// The feature shape is validated against the served backbone *before* the
/// request can reach the coalescing queue: an untrusted peer's malformed
/// request must fail alone, never poison a mini-batch it shares with honest
/// requests from other connections.
fn run_request(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: Tensor,
) -> Result<Vec<Tensor>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.shape()[0] == 1 {
        // The engine catches pipeline panics itself.
        engine.server_outputs_one(transmitted)
    } else {
        // Direct path: a panic (e.g. a shape assert deep in a layer) must
        // become a per-request error, not a dead reader thread.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.defense().server_outputs(&transmitted)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// The quantized (protocol-v2) sibling of [`run_request`]: single-sample
/// requests coalesce through the engine's quantized queue — so v2 requests
/// from different connections batch together, with answers bit-identical to
/// isolated evaluation — and pre-batched requests run direct.
fn run_request_quantized(
    engine: &InferenceEngine<dyn Defense>,
    transmitted: QTensorBatch,
) -> Result<Vec<QTensorBatch>, ensembler::EnsemblerError> {
    check_request_shape(engine, transmitted.shape())?;
    if transmitted.batch() == 1 {
        engine.server_outputs_quantized_one(transmitted)
    } else {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.defense().server_outputs_quantized(&transmitted)
        }))
        .unwrap_or_else(|payload| {
            Err(ensembler::EnsemblerError::Engine(format!(
                "server_outputs_quantized panicked: {}",
                ensembler::engine::panic_message(payload.as_ref())
            )))
        })
    }
}

/// Validates a request's feature shape against the served backbone *before*
/// it can reach a coalescing queue: an untrusted peer's malformed request
/// must fail alone, never poison a mini-batch it shares with honest requests
/// from other connections.
fn check_request_shape(
    engine: &InferenceEngine<dyn Defense>,
    shape: &[usize],
) -> Result<(), ensembler::EnsemblerError> {
    let expected = engine.defense().config().head_output_shape();
    if shape.len() != 4 || shape[0] == 0 || shape[1..] != expected[..] {
        return Err(ensembler::EnsemblerError::ShapeMismatch(format!(
            "request features {shape:?} do not match the served head output [B, {}, {}, {}]",
            expected[0], expected[1], expected[2]
        )));
    }
    Ok(())
}
