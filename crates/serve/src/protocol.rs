//! The versioned, length-framed binary protocol spoken between
//! [`RemoteDefense`](crate::RemoteDefense) and
//! [`DefenseServer`](crate::DefenseServer).
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     frame magic 0x454E5357 ("ENSW"), big-endian
//! 4       2     protocol version of the frame, big-endian (see below)
//! 6       1     message type
//! 7       1     flags (must be zero)
//! 8       4     payload length in bytes, big-endian
//! 12      8     request id, big-endian u64 — only in frames stamped ≥ 5
//! 12|20   n     payload (layout depends on the message type)
//! ...     4     CRC-32 (IEEE) over everything before it, big-endian
//! ```
//!
//! Every frame is stamped with the **minimum** protocol version able to
//! parse it ([`Message::wire_version`]): the plain handshake and all `f32`
//! traffic travel in version-1 frames byte-identical to what a version-1
//! build produces, the quantized message types added in version 2 travel in
//! version-2 frames, a handshake that names a model (the multi-model
//! extension of version 3) travels in a version-3 frame, and the sub-range
//! request types used by the scatter-gather router (version 4) travel in
//! version-4 frames — which is exactly what makes legacy peers reject only
//! what they genuinely cannot understand, and lets mixed-version
//! deployments negotiate down to the `f32` single-model exchange.
//!
//! Version 5 adds no message types; it adds the **tagged** frame for
//! pipelined connection multiplexing. A frame stamped at or above
//! [`TAGGED_WIRE_VERSION`] carries an 8-byte big-endian request id between
//! the fixed header and the payload ([`encode_tagged`] / [`decode_tagged`]);
//! the payload-length field still counts only the payload, and the CRC
//! covers header, request id and payload alike. Tagging lets one connection
//! hold many concurrent in-flight requests and return the responses out of
//! order — each response echoes the id of the request it answers. Untagged
//! messages keep their minimum-version stamp, so every pre-v5 byte stream is
//! unchanged, and handshake messages are *never* tagged (multiplexing is a
//! property of the connection, negotiated by the handshake itself).
//!
//! Tensors inside payloads reuse the workspace wire formats
//! ([`ensembler::split::encode_features`] for `f32`,
//! [`ensembler::split::encode_qfeatures`] for quantized tensors): a tensor
//! magic word, the rank, the dimensions (all big-endian `u32`) and the raw
//! little-endian data (`f32`, or per-sample `f32` scales followed by `i8`
//! values). The data section is contiguous within the payload, so a receiver
//! that keeps the frame buffer alive can reinterpret it in place instead of
//! copying. The byte-exact layout, including worked example frames, is
//! specified in `docs/WIRE_PROTOCOL.md`; the `wire_examples` test encodes the
//! documented frames and fails if document and implementation drift apart.
//!
//! # Examples
//!
//! ```
//! use ensembler_serve::protocol::{decode_message, encode_message, Hello, Message};
//!
//! let frame = encode_message(&Message::Hello(Hello::legacy(1)));
//! assert_eq!(&frame[..4], &0x454E5357u32.to_be_bytes());
//! match decode_message(&frame)? {
//!     Message::Hello(hello) => assert_eq!(hello.max_version, 1),
//!     other => panic!("unexpected message {other:?}"),
//! }
//! # Ok::<(), ensembler_serve::ServeError>(())
//! ```

use crate::error::ServeError;
use ensembler::split::{decode_features, decode_qfeatures, encode_features, encode_qfeatures};
use ensembler_latency::WireOverhead;
use ensembler_tensor::{QTensorBatch, Tensor};

/// Magic word opening every frame ("ENSW", for ENSembler Wire).
pub const FRAME_MAGIC: u32 = 0x454E_5357;

/// The highest protocol version this build speaks. Version 2 added the
/// quantized message types [`MessageType::ServerOutputsRequestQ`] and
/// [`MessageType::ServerOutputsResponseQ`]; version 3 added the optional
/// model name carried by [`Hello`] and echoed by [`HelloAck`] — the
/// multi-model handshake; version 4 added the sub-range request types
/// [`MessageType::ServerOutputsRequestRange`] and
/// [`MessageType::ServerOutputsRequestRangeQ`] used by the scatter-gather
/// shard router; version 5 adds the tagged frame (an 8-byte request id in an
/// extended header) for pipelined connection multiplexing. Every
/// pre-existing frame is unchanged.
pub const PROTOCOL_VERSION: u16 = 5;

/// The first protocol version whose frames carry a request id. A frame
/// stamped at or above this version has the 8-byte extended header
/// ([`REQUEST_ID_BYTES`]); a frame stamped below it never does. Tagged
/// messages are stamped exactly this version — no taggable message type
/// needs a newer frame.
pub const TAGGED_WIRE_VERSION: u16 = 5;

/// Returns the **minimum** protocol version that defines `message_type`.
///
/// Stamping the minimum (rather than the negotiated maximum) keeps every
/// legacy frame byte-identical to what a version-1 build produces — a v1
/// peer can parse everything a v2 peer sends it during negotiation, and
/// naturally rejects the quantized types it cannot understand.
///
/// Version 3 adds no message *types*, only optional handshake *fields*, so
/// this function never returns 3: the stamped version of a handshake frame
/// additionally depends on its content ([`Message::wire_version`]). A
/// `Hello`/`HelloAck` without a model name still travels in a version-1
/// frame. Version 5 likewise adds no types — it is never returned here
/// either; a frame is stamped [`TAGGED_WIRE_VERSION`] exactly when
/// [`encode_tagged`] gives it a request id.
pub fn frame_version(message_type: MessageType) -> u16 {
    match message_type {
        MessageType::ServerOutputsRequestRange | MessageType::ServerOutputsRequestRangeQ => 4,
        MessageType::ServerOutputsRequestQ | MessageType::ServerOutputsResponseQ => 2,
        _ => 1,
    }
}

/// Fixed frame header size: magic + version + type + flags + payload length.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Fixed frame trailer size: the CRC-32 checksum.
pub const FRAME_TRAILER_BYTES: usize = 4;

/// Size of the request id in the extended header of a tagged
/// (version ≥ [`TAGGED_WIRE_VERSION`]) frame: one big-endian `u64` between
/// the fixed header and the payload.
pub const REQUEST_ID_BYTES: usize = 8;

/// Default cap on the payload length a peer will accept (64 MiB), protecting
/// the receiver from allocating on behalf of a corrupt or hostile length
/// field.
pub const DEFAULT_MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// The framing overhead of this protocol in the vocabulary of the analytic
/// latency model.
///
/// `crates/latency` computes expected frame sizes from this constant
/// ([`ensembler_latency::NetworkCost::upload_frame_bytes`]); the
/// `wire_cost_drift` test asserts those predictions equal the length of
/// frames actually produced by [`encode_message`].
pub const WIRE_OVERHEAD: WireOverhead = WireOverhead {
    frame_bytes: (FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES) as u64,
    // Tensor magic word + rank word (see `ensembler::split::encode_features`;
    // the quantized encoding spends the same header).
    tensor_base_bytes: 8,
    per_dim_bytes: 4,
    list_header_bytes: 4,
    per_tensor_prefix_bytes: 4,
    // One little-endian f32 scale per batch sample in a quantized tensor.
    per_scale_bytes: 4,
    // Wire strings (model names, labels, error text) carry a u32 length.
    per_string_bytes: 4,
    // Sub-range requests (v4) prefix the tensor with `lo` and `hi` u32s.
    range_header_bytes: 8,
    // Tagged frames (v5) carry a u64 request id between header and payload.
    request_id_bytes: REQUEST_ID_BYTES as u64,
};

/// Message type discriminants as they appear in byte 6 of the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageType {
    /// Client → server: opens a connection and offers a protocol version.
    Hello = 0x01,
    /// Server → client: accepts the connection and pins the version.
    HelloAck = 0x02,
    /// Client → server: a batch of transmitted feature maps to evaluate.
    ServerOutputsRequest = 0x03,
    /// Server → client: the `N` per-network feature maps.
    ServerOutputsResponse = 0x04,
    /// Client → server (v2): a quantized batch of transmitted feature maps
    /// (`i8` payload plus per-sample scales).
    ServerOutputsRequestQ = 0x05,
    /// Server → client (v2): the `N` quantized per-network feature maps.
    ServerOutputsResponseQ = 0x06,
    /// Client → server (v4): a batch of transmitted feature maps to
    /// evaluate on the server bodies `lo..hi` only — the scatter half of
    /// sharded serving. Answered with a [`MessageType::ServerOutputsResponse`]
    /// carrying `hi - lo` maps.
    ServerOutputsRequestRange = 0x07,
    /// Client → server (v4): the quantized sibling of
    /// [`MessageType::ServerOutputsRequestRange`], answered with a
    /// [`MessageType::ServerOutputsResponseQ`] carrying `hi - lo` maps.
    ServerOutputsRequestRangeQ = 0x08,
    /// Either direction: a terminal or per-request error report.
    Error = 0x7F,
}

impl MessageType {
    fn from_byte(byte: u8) -> Result<Self, ServeError> {
        Ok(match byte {
            0x01 => MessageType::Hello,
            0x02 => MessageType::HelloAck,
            0x03 => MessageType::ServerOutputsRequest,
            0x04 => MessageType::ServerOutputsResponse,
            0x05 => MessageType::ServerOutputsRequestQ,
            0x06 => MessageType::ServerOutputsResponseQ,
            0x07 => MessageType::ServerOutputsRequestRange,
            0x08 => MessageType::ServerOutputsRequestRangeQ,
            0x7F => MessageType::Error,
            other => {
                return Err(ServeError::Frame(format!(
                    "unknown message type {other:#04x}"
                )))
            }
        })
    }
}

/// Error codes carried by [`Message::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The peers share no protocol version.
    UnsupportedVersion = 1,
    /// A frame could not be parsed (bad magic, bad length, trailing bytes…).
    MalformedFrame = 2,
    /// The frame parsed but its CRC-32 did not match.
    ChecksumMismatch = 3,
    /// The message type was valid but not legal in the current state.
    UnexpectedMessage = 4,
    /// The defense pipeline rejected the request (shape mismatch etc.).
    Inference = 5,
    /// Any other server-side failure.
    Internal = 6,
    /// The handshake requested a model name the server does not serve (v3).
    UnknownModel = 7,
    /// Admission control rejected the work (v3): accepting the request would
    /// exceed an in-flight request/byte budget, or the server is at its
    /// connection limit. On a request rejection the connection stays open
    /// and the client may retry once earlier work drains — unless the
    /// message says the request exceeds a budget *outright*, in which case
    /// no amount of draining helps and the client must split the batch.
    Overloaded = 8,
}

impl ErrorCode {
    /// Parses a wire error code, mapping unknown codes to
    /// [`ErrorCode::Internal`] so newer peers stay readable.
    pub fn from_u16(code: u16) -> Self {
        match code {
            1 => ErrorCode::UnsupportedVersion,
            2 => ErrorCode::MalformedFrame,
            3 => ErrorCode::ChecksumMismatch,
            4 => ErrorCode::UnexpectedMessage,
            5 => ErrorCode::Inference,
            7 => ErrorCode::UnknownModel,
            8 => ErrorCode::Overloaded,
            _ => ErrorCode::Internal,
        }
    }
}

/// Payload of a [`Message::Hello`]: the highest protocol version the client
/// can speak, and optionally (protocol v3) the name of the model it wants
/// served. The server answers with the version both sides will use (the
/// minimum of the two maxima) or an [`ErrorCode::UnsupportedVersion`] error.
///
/// A hello without a model name encodes exactly as it did in version 1 and
/// travels in a version-1 frame, so legacy peers keep working byte for byte;
/// a hello *with* a model name travels in a version-3 frame. A server that
/// receives no model name serves its process-default model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Highest protocol version the sender supports.
    pub max_version: u16,
    /// Model the client requests from a multi-model server (v3); `None`
    /// selects the server's default model and keeps the frame version-1.
    pub model: Option<String>,
}

impl Hello {
    /// A legacy hello: offer `max_version`, serve the default model.
    pub fn legacy(max_version: u16) -> Self {
        Self {
            max_version,
            model: None,
        }
    }
}

/// Payload of a [`Message::HelloAck`]: the negotiated version plus enough
/// about the served pipeline for the client to check its local replica
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The protocol version both sides will speak from now on.
    pub version: u16,
    /// [`ensembler::Defense::label`] of the served pipeline.
    pub label: String,
    /// Ensemble size `N` of the served pipeline.
    pub ensemble_size: u32,
    /// Selected count `P` of the served pipeline.
    pub selected_count: u32,
    /// The registry name of the model this connection is pinned to (v3).
    /// Echoed only when the hello requested a model by name, so acks to
    /// legacy clients stay byte-identical to a version-1 build's.
    pub model: Option<String>,
}

/// Payload of a [`Message::Error`]: a machine-readable code and a
/// human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong, coarsely.
    pub code: ErrorCode,
    /// Details for the human reading the logs.
    pub message: String,
}

/// One protocol message, ready to be framed by [`encode_message`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opening offer.
    Hello(Hello),
    /// Connection acceptance.
    HelloAck(HelloAck),
    /// A `[B, C, H, W]` batch of transmitted feature maps to evaluate on all
    /// `N` server bodies.
    ServerOutputsRequest {
        /// The client-protected features, as produced by
        /// [`ensembler::Defense::client_features`].
        transmitted: Tensor,
    },
    /// The `N` per-network feature maps, in index order.
    ServerOutputsResponse {
        /// One `[B, F]` feature map per server body.
        maps: Vec<Tensor>,
    },
    /// A quantized `[B, C, H, W]` batch of transmitted feature maps
    /// (protocol v2): `i8` payload plus one scale per sample, roughly a
    /// quarter of the equivalent [`Message::ServerOutputsRequest`] bytes.
    ServerOutputsRequestQ {
        /// The quantized client-protected features.
        transmitted: QTensorBatch,
    },
    /// The `N` quantized per-network feature maps, in index order
    /// (protocol v2).
    ServerOutputsResponseQ {
        /// One quantized `[B, F]` feature map per server body.
        maps: Vec<QTensorBatch>,
    },
    /// A `[B, C, H, W]` batch of transmitted feature maps to evaluate on
    /// the server bodies `lo..hi` only (protocol v4) — the scatter half of
    /// sharded serving. The server answers with a
    /// [`Message::ServerOutputsResponse`] of `hi - lo` maps.
    ServerOutputsRequestRange {
        /// First server body index to evaluate (inclusive).
        lo: u32,
        /// One past the last server body index to evaluate (exclusive).
        hi: u32,
        /// The client-protected features, as produced by
        /// [`ensembler::Defense::client_features`].
        transmitted: Tensor,
    },
    /// The quantized sibling of [`Message::ServerOutputsRequestRange`]
    /// (protocol v4), answered with a [`Message::ServerOutputsResponseQ`]
    /// of `hi - lo` maps.
    ServerOutputsRequestRangeQ {
        /// First server body index to evaluate (inclusive).
        lo: u32,
        /// One past the last server body index to evaluate (exclusive).
        hi: u32,
        /// The quantized client-protected features.
        transmitted: QTensorBatch,
    },
    /// An error report.
    Error(WireError),
}

impl Message {
    /// The header discriminant for this message.
    pub fn message_type(&self) -> MessageType {
        match self {
            Message::Hello(_) => MessageType::Hello,
            Message::HelloAck(_) => MessageType::HelloAck,
            Message::ServerOutputsRequest { .. } => MessageType::ServerOutputsRequest,
            Message::ServerOutputsResponse { .. } => MessageType::ServerOutputsResponse,
            Message::ServerOutputsRequestQ { .. } => MessageType::ServerOutputsRequestQ,
            Message::ServerOutputsResponseQ { .. } => MessageType::ServerOutputsResponseQ,
            Message::ServerOutputsRequestRange { .. } => MessageType::ServerOutputsRequestRange,
            Message::ServerOutputsRequestRangeQ { .. } => MessageType::ServerOutputsRequestRangeQ,
            Message::Error(_) => MessageType::Error,
        }
    }

    /// The version stamped into this message's frame: the minimum protocol
    /// version able to parse it. Unlike [`frame_version`] this depends on
    /// content, not just type — a handshake message carrying a model name
    /// needs a version-3 frame, while the same message without one stays in
    /// a version-1 frame a legacy peer can read.
    pub fn wire_version(&self) -> u16 {
        match self {
            Message::Hello(hello) if hello.model.is_some() => 3,
            Message::HelloAck(ack) if ack.model.is_some() => 3,
            other => frame_version(other.message_type()),
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut n = 0usize;
        while n < 256 {
            let mut c = n as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[n] = c;
            n += 1;
        }
        table
    }
    const TABLE: [u32; 256] = make_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_be_bytes());
}

fn put_string(buf: &mut Vec<u8>, value: &str) {
    put_u32(buf, value.len() as u32);
    buf.extend_from_slice(value.as_bytes());
}

fn put_tensor_list(buf: &mut Vec<u8>, tensors: &[Tensor]) {
    put_u32(buf, tensors.len() as u32);
    for tensor in tensors {
        let blob = encode_features(tensor);
        put_u32(buf, blob.len() as u32);
        buf.extend_from_slice(&blob);
    }
}

fn put_qtensor_list(buf: &mut Vec<u8>, tensors: &[QTensorBatch]) {
    put_u32(buf, tensors.len() as u32);
    for tensor in tensors {
        let blob = encode_qfeatures(tensor);
        put_u32(buf, blob.len() as u32);
        buf.extend_from_slice(&blob);
    }
}

/// A strict little parser over a payload slice: every read is
/// bounds-checked, and [`Cursor::finish`] rejects trailing bytes so no
/// malformed payload can decode by accident.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Self { rest }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        if self.rest.len() < n {
            return Err(ServeError::Frame(format!(
                "payload truncated inside the {what}: need {n} bytes, have {}",
                self.rest.len()
            )));
        }
        let (head, rest) = self.rest.split_at(n);
        self.rest = rest;
        Ok(head)
    }

    fn take_u16(&mut self, what: &str) -> Result<u16, ServeError> {
        Ok(u16::from_be_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, ServeError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_string(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.take_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Frame(format!("{what} is not valid UTF-8")))
    }

    fn take_qtensor_list(&mut self, what: &str) -> Result<Vec<QTensorBatch>, ServeError> {
        let count = self.take_u32(what)? as usize;
        // Each quantized tensor costs at least a length prefix + header.
        if count > self.rest.len() / 12 {
            return Err(ServeError::Frame(format!(
                "{what} declares {count} quantized tensors but only {} payload bytes remain",
                self.rest.len()
            )));
        }
        let mut tensors = Vec::with_capacity(count);
        for index in 0..count {
            let len = self.take_u32(what)? as usize;
            let blob = self.take(len, what)?;
            let tensor = decode_qfeatures(blob).map_err(|e| {
                ServeError::Frame(format!("{what} quantized tensor {index} is malformed: {e}"))
            })?;
            tensors.push(tensor);
        }
        Ok(tensors)
    }

    fn take_tensor_list(&mut self, what: &str) -> Result<Vec<Tensor>, ServeError> {
        let count = self.take_u32(what)? as usize;
        // Each tensor costs at least a length prefix + tensor header, so an
        // absurd count cannot force an absurd allocation.
        if count > self.rest.len() / 12 {
            return Err(ServeError::Frame(format!(
                "{what} declares {count} tensors but only {} payload bytes remain",
                self.rest.len()
            )));
        }
        let mut tensors = Vec::with_capacity(count);
        for index in 0..count {
            let len = self.take_u32(what)? as usize;
            let blob = self.take(len, what)?;
            let tensor = decode_features(blob).map_err(|e| {
                ServeError::Frame(format!("{what} tensor {index} is malformed: {e}"))
            })?;
            tensors.push(tensor);
        }
        Ok(tensors)
    }

    fn finish(self, what: &str) -> Result<(), ServeError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ServeError::Frame(format!(
                "{} trailing bytes after the {what}",
                self.rest.len()
            )))
        }
    }
}

/// A decoded frame: the message plus the request id its frame carried, if
/// any.
///
/// Produced by [`decode_tagged`] / [`read_tagged`]. The lockstep
/// [`decode_message`] / [`read_message`] refuse tagged frames with a typed
/// error instead of silently dropping the id, so a response a multiplexing
/// peer is waiting on can never be misread as a lockstep answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedMessage {
    /// The protocol message the frame carried.
    pub message: Message,
    /// The request id from the frame's extended header — `Some` exactly when
    /// the frame was stamped version [`TAGGED_WIRE_VERSION`] or newer.
    pub request_id: Option<u64>,
}

/// Encodes one message into a complete untagged frame (header, payload,
/// checksum): [`encode_tagged`] with no request id, byte-identical to what
/// every pre-v5 build produces.
pub fn encode_message(message: &Message) -> Vec<u8> {
    encode_tagged(message, None)
}

/// Encodes one message into a complete frame, optionally tagged with a
/// request id.
///
/// With `request_id: None` this is the classic minimum-version encoding.
/// With `Some(id)` the frame is stamped [`TAGGED_WIRE_VERSION`] and carries
/// `id` as an 8-byte big-endian word between the fixed header and the
/// payload; the payload-length field still counts only the payload, and the
/// CRC covers header, id and payload alike.
///
/// Handshake messages are never tagged — [`decode_tagged`] rejects such
/// frames — so tagging a [`Message::Hello`] or [`Message::HelloAck`] here is
/// a programming error (it panics in debug builds and produces an
/// undecodable frame in release builds).
pub fn encode_tagged(message: &Message, request_id: Option<u64>) -> Vec<u8> {
    debug_assert!(
        request_id.is_none() || !matches!(message, Message::Hello(_) | Message::HelloAck(_)),
        "handshake messages are never tagged"
    );
    let mut payload = Vec::new();
    match message {
        Message::Hello(hello) => {
            payload.extend_from_slice(&hello.max_version.to_be_bytes());
            if let Some(model) = &hello.model {
                put_string(&mut payload, model);
            }
        }
        Message::HelloAck(ack) => {
            payload.extend_from_slice(&ack.version.to_be_bytes());
            put_string(&mut payload, &ack.label);
            put_u32(&mut payload, ack.ensemble_size);
            put_u32(&mut payload, ack.selected_count);
            if let Some(model) = &ack.model {
                put_string(&mut payload, model);
            }
        }
        Message::ServerOutputsRequest { transmitted } => {
            payload.extend_from_slice(&encode_features(transmitted));
        }
        Message::ServerOutputsResponse { maps } => {
            put_tensor_list(&mut payload, maps);
        }
        Message::ServerOutputsRequestQ { transmitted } => {
            payload.extend_from_slice(&encode_qfeatures(transmitted));
        }
        Message::ServerOutputsResponseQ { maps } => {
            put_qtensor_list(&mut payload, maps);
        }
        Message::ServerOutputsRequestRange {
            lo,
            hi,
            transmitted,
        } => {
            put_u32(&mut payload, *lo);
            put_u32(&mut payload, *hi);
            payload.extend_from_slice(&encode_features(transmitted));
        }
        Message::ServerOutputsRequestRangeQ {
            lo,
            hi,
            transmitted,
        } => {
            put_u32(&mut payload, *lo);
            put_u32(&mut payload, *hi);
            payload.extend_from_slice(&encode_qfeatures(transmitted));
        }
        Message::Error(error) => {
            payload.extend_from_slice(&(error.code as u16).to_be_bytes());
            put_string(&mut payload, &error.message);
        }
    }

    let version = match request_id {
        Some(_) => TAGGED_WIRE_VERSION.max(message.wire_version()),
        None => message.wire_version(),
    };
    let id_bytes = if request_id.is_some() {
        REQUEST_ID_BYTES
    } else {
        0
    };
    let mut frame =
        Vec::with_capacity(FRAME_HEADER_BYTES + id_bytes + payload.len() + FRAME_TRAILER_BYTES);
    frame.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
    frame.extend_from_slice(&version.to_be_bytes());
    frame.push(message.message_type() as u8);
    frame.push(0); // flags
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    if let Some(id) = request_id {
        frame.extend_from_slice(&id.to_be_bytes());
    }
    frame.extend_from_slice(&payload);
    let checksum = crc32(&frame);
    frame.extend_from_slice(&checksum.to_be_bytes());
    frame
}

/// Decodes one complete *untagged* frame produced by [`encode_message`].
///
/// # Errors
///
/// As for [`decode_tagged`], plus [`ServeError::Frame`] for a tagged
/// (version ≥ 5) frame — a lockstep code path must never silently discard a
/// request id a multiplexing peer is waiting on.
pub fn decode_message(frame: &[u8]) -> Result<Message, ServeError> {
    let tagged = decode_tagged(frame)?;
    if tagged.request_id.is_some() {
        return Err(ServeError::Frame(
            "unexpected tagged (version-5) frame on a lockstep connection".to_string(),
        ));
    }
    Ok(tagged.message)
}

/// Decodes one complete frame produced by [`encode_tagged`] (or, for
/// untagged frames, [`encode_message`]), returning the message together with
/// the request id of a version-5 extended header when the frame carries one.
///
/// # Errors
///
/// Returns [`ServeError::Frame`] for any structural problem (bad magic,
/// unknown type, non-zero flags, truncation, trailing bytes, malformed
/// tensors, a tagged handshake), [`ServeError::UnsupportedVersion`] for a
/// version this build cannot parse, and [`ServeError::Checksum`] when the
/// CRC-32 disagrees.
pub fn decode_tagged(frame: &[u8]) -> Result<TaggedMessage, ServeError> {
    if frame.len() < FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES {
        return Err(ServeError::Frame(format!(
            "frame of {} bytes is shorter than header + checksum",
            frame.len()
        )));
    }
    let magic = u32::from_be_bytes(frame[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ServeError::Frame(format!(
            "bad frame magic {magic:#010x}, expected {FRAME_MAGIC:#010x}"
        )));
    }
    let version = u16::from_be_bytes(frame[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > PROTOCOL_VERSION {
        return Err(ServeError::UnsupportedVersion {
            offered: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let message_type = MessageType::from_byte(frame[6])?;
    if frame_version(message_type) > version {
        return Err(ServeError::Frame(format!(
            "message type {:#04x} requires protocol version {}, frame is stamped {version}",
            frame[6],
            frame_version(message_type)
        )));
    }
    if frame[7] != 0 {
        return Err(ServeError::Frame(format!(
            "non-zero flags {:#04x} in a version-{version} frame",
            frame[7]
        )));
    }
    let tagged = version >= TAGGED_WIRE_VERSION;
    if tagged && matches!(message_type, MessageType::Hello | MessageType::HelloAck) {
        return Err(ServeError::Frame(format!(
            "handshake message type {:#04x} is never tagged, but the frame is stamped \
             version {version}",
            frame[6]
        )));
    }
    let id_bytes = if tagged { REQUEST_ID_BYTES } else { 0 };
    let payload_len = u32::from_be_bytes(frame[8..12].try_into().expect("4 bytes")) as usize;
    if frame.len() != FRAME_HEADER_BYTES + id_bytes + payload_len + FRAME_TRAILER_BYTES {
        return Err(ServeError::Frame(format!(
            "frame of {} bytes disagrees with declared payload length {payload_len}",
            frame.len()
        )));
    }
    let payload_offset = FRAME_HEADER_BYTES + id_bytes;
    let checksum_offset = payload_offset + payload_len;
    let expected = crc32(&frame[..checksum_offset]);
    let found = u32::from_be_bytes(
        frame[checksum_offset..checksum_offset + 4]
            .try_into()
            .expect("4 bytes"),
    );
    if expected != found {
        return Err(ServeError::Checksum { expected, found });
    }
    let request_id = if tagged {
        Some(u64::from_be_bytes(
            frame[FRAME_HEADER_BYTES..payload_offset]
                .try_into()
                .expect("8 bytes"),
        ))
    } else {
        None
    };

    let mut cursor = Cursor::new(&frame[payload_offset..checksum_offset]);
    let message = match message_type {
        MessageType::Hello => {
            let max_version = cursor.take_u16("Hello payload")?;
            // The optional model name is a version-3 construct; in an older
            // frame any extra bytes fall through to the trailing-bytes error.
            let model = if version >= 3 && !cursor.rest.is_empty() {
                Some(cursor.take_string("Hello model name")?)
            } else {
                None
            };
            cursor.finish("Hello payload (a model name requires a version-3 frame)")?;
            Message::Hello(Hello { max_version, model })
        }
        MessageType::HelloAck => {
            let version_field = cursor.take_u16("HelloAck payload")?;
            let label = cursor.take_string("HelloAck label")?;
            let ensemble_size = cursor.take_u32("HelloAck payload")?;
            let selected_count = cursor.take_u32("HelloAck payload")?;
            let model = if version >= 3 && !cursor.rest.is_empty() {
                Some(cursor.take_string("HelloAck model name")?)
            } else {
                None
            };
            cursor.finish("HelloAck payload (a model name requires a version-3 frame)")?;
            Message::HelloAck(HelloAck {
                version: version_field,
                label,
                ensemble_size,
                selected_count,
                model,
            })
        }
        MessageType::ServerOutputsRequest => {
            let blob = cursor.rest;
            let transmitted = decode_features(blob)
                .map_err(|e| ServeError::Frame(format!("request tensor is malformed: {e}")))?;
            Message::ServerOutputsRequest { transmitted }
        }
        MessageType::ServerOutputsResponse => {
            let maps = cursor.take_tensor_list("response payload")?;
            cursor.finish("response payload")?;
            Message::ServerOutputsResponse { maps }
        }
        MessageType::ServerOutputsRequestQ => {
            let blob = cursor.rest;
            let transmitted = decode_qfeatures(blob).map_err(|e| {
                ServeError::Frame(format!("quantized request tensor is malformed: {e}"))
            })?;
            Message::ServerOutputsRequestQ { transmitted }
        }
        MessageType::ServerOutputsResponseQ => {
            let maps = cursor.take_qtensor_list("quantized response payload")?;
            cursor.finish("quantized response payload")?;
            Message::ServerOutputsResponseQ { maps }
        }
        MessageType::ServerOutputsRequestRange => {
            let lo = cursor.take_u32("range request payload")?;
            let hi = cursor.take_u32("range request payload")?;
            let blob = cursor.rest;
            let transmitted = decode_features(blob).map_err(|e| {
                ServeError::Frame(format!("range request tensor is malformed: {e}"))
            })?;
            Message::ServerOutputsRequestRange {
                lo,
                hi,
                transmitted,
            }
        }
        MessageType::ServerOutputsRequestRangeQ => {
            let lo = cursor.take_u32("quantized range request payload")?;
            let hi = cursor.take_u32("quantized range request payload")?;
            let blob = cursor.rest;
            let transmitted = decode_qfeatures(blob).map_err(|e| {
                ServeError::Frame(format!("quantized range request tensor is malformed: {e}"))
            })?;
            Message::ServerOutputsRequestRangeQ {
                lo,
                hi,
                transmitted,
            }
        }
        MessageType::Error => {
            let code = ErrorCode::from_u16(cursor.take_u16("Error payload")?);
            let message = cursor.take_string("Error message")?;
            cursor.finish("Error payload")?;
            Message::Error(WireError { code, message })
        }
    };
    Ok(TaggedMessage {
        message,
        request_id,
    })
}

/// Writes one framed message to `writer` and flushes it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_message(
    writer: &mut impl std::io::Write,
    message: &Message,
) -> Result<(), ServeError> {
    write_tagged(writer, message, None)
}

/// Writes one framed message — tagged with `request_id` when given — to
/// `writer` and flushes it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_tagged(
    writer: &mut impl std::io::Write,
    message: &Message,
    request_id: Option<u64>,
) -> Result<(), ServeError> {
    writer.write_all(&encode_tagged(message, request_id))?;
    writer.flush()?;
    Ok(())
}

/// Reads exactly one framed *untagged* message from `reader`, refusing
/// payloads longer than `max_payload_bytes` before allocating for them.
///
/// # Errors
///
/// Propagates I/O errors (including clean EOF as
/// [`std::io::ErrorKind::UnexpectedEof`]) and every [`decode_message`]
/// error — in particular a typed [`ServeError::Frame`] for a tagged frame,
/// which only [`read_tagged`] accepts.
pub fn read_message(
    reader: &mut impl std::io::Read,
    max_payload_bytes: u32,
) -> Result<Message, ServeError> {
    let tagged = read_tagged(reader, max_payload_bytes)?;
    if tagged.request_id.is_some() {
        return Err(ServeError::Frame(
            "unexpected tagged (version-5) frame on a lockstep connection".to_string(),
        ));
    }
    Ok(tagged.message)
}

/// Reads exactly one framed message — tagged or untagged — from `reader`,
/// refusing payloads longer than `max_payload_bytes` before allocating for
/// them.
///
/// The version stamp in the fixed header decides whether an 8-byte request
/// id follows it: only versions this build understands are given the
/// extended header, so an unknown future version is rejected by
/// [`decode_tagged`] without guessing at its header shape.
///
/// # Errors
///
/// Propagates I/O errors (including clean EOF as
/// [`std::io::ErrorKind::UnexpectedEof`]) and every [`decode_tagged`] error.
pub fn read_tagged(
    reader: &mut impl std::io::Read,
    max_payload_bytes: u32,
) -> Result<TaggedMessage, ServeError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut header)?;
    let version = u16::from_be_bytes(header[4..6].try_into().expect("2 bytes"));
    let payload_len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if payload_len > max_payload_bytes {
        return Err(ServeError::Frame(format!(
            "declared payload of {payload_len} bytes exceeds the {max_payload_bytes}-byte limit"
        )));
    }
    let id_bytes = if (TAGGED_WIRE_VERSION..=PROTOCOL_VERSION).contains(&version) {
        REQUEST_ID_BYTES
    } else {
        0
    };
    let mut frame =
        vec![0u8; FRAME_HEADER_BYTES + id_bytes + payload_len as usize + FRAME_TRAILER_BYTES];
    frame[..FRAME_HEADER_BYTES].copy_from_slice(&header);
    reader.read_exact(&mut frame[FRAME_HEADER_BYTES..])?;
    decode_tagged(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(message: Message) -> Message {
        decode_message(&encode_message(&message)).expect("round trip")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_message_kind_round_trips() {
        let messages = vec![
            Message::Hello(Hello::legacy(7)),
            Message::HelloAck(HelloAck {
                version: 1,
                label: "Ensembler".to_string(),
                ensemble_size: 10,
                selected_count: 4,
                model: None,
            }),
            Message::ServerOutputsRequest {
                transmitted: Tensor::from_fn(&[2, 3, 4, 4], |i| (i as f32 * 0.1).sin()),
            },
            Message::ServerOutputsResponse {
                maps: (0..3)
                    .map(|k| Tensor::from_fn(&[2, 5], |i| (i + k) as f32))
                    .collect(),
            },
            Message::Error(WireError {
                code: ErrorCode::Inference,
                message: "shape mismatch".to_string(),
            }),
        ];
        for message in messages {
            assert_eq!(round_trip(message.clone()), message);
        }
    }

    #[test]
    fn empty_response_round_trips() {
        let message = Message::ServerOutputsResponse { maps: Vec::new() };
        assert_eq!(round_trip(message.clone()), message);
    }

    #[test]
    fn quantized_messages_round_trip_in_version_2_frames() {
        let transmitted = QTensorBatch::quantize_batch(&Tensor::from_fn(&[2, 3, 4, 4], |i| {
            (i as f32 * 0.1).sin()
        }));
        let request = Message::ServerOutputsRequestQ {
            transmitted: transmitted.clone(),
        };
        let frame = encode_message(&request);
        assert_eq!(&frame[4..6], &2u16.to_be_bytes(), "v2 frame stamp");
        assert_eq!(round_trip(request.clone()), request);

        let maps: Vec<QTensorBatch> = (0..3)
            .map(|k| QTensorBatch::quantize_batch(&Tensor::from_fn(&[2, 5], |i| (i + k) as f32)))
            .collect();
        let response = Message::ServerOutputsResponseQ { maps };
        assert_eq!(round_trip(response.clone()), response);
    }

    #[test]
    fn legacy_messages_stay_in_version_1_frames() {
        // Byte-level compatibility: everything a v1 build understands is
        // still stamped v1, so a v1 peer can parse it.
        for message in [
            Message::Hello(Hello::legacy(2)),
            Message::HelloAck(HelloAck {
                version: 1,
                label: "Ensembler".to_string(),
                ensemble_size: 2,
                selected_count: 1,
                model: None,
            }),
            Message::ServerOutputsRequest {
                transmitted: Tensor::ones(&[1, 1, 2, 2]),
            },
            Message::Error(WireError {
                code: ErrorCode::Internal,
                message: "x".to_string(),
            }),
        ] {
            let frame = encode_message(&message);
            assert_eq!(&frame[4..6], &1u16.to_be_bytes(), "{message:?}");
        }
    }

    #[test]
    fn model_carrying_handshakes_round_trip_in_version_3_frames() {
        let hello = Message::Hello(Hello {
            max_version: 3,
            model: Some("alpha".to_string()),
        });
        let frame = encode_message(&hello);
        assert_eq!(&frame[4..6], &3u16.to_be_bytes(), "v3 frame stamp");
        assert_eq!(round_trip(hello.clone()), hello);

        let ack = Message::HelloAck(HelloAck {
            version: 3,
            label: "Ensembler".to_string(),
            ensemble_size: 4,
            selected_count: 2,
            model: Some("alpha".to_string()),
        });
        let frame = encode_message(&ack);
        assert_eq!(&frame[4..6], &3u16.to_be_bytes(), "v3 frame stamp");
        assert_eq!(round_trip(ack.clone()), ack);
    }

    #[test]
    fn model_names_are_rejected_in_pre_v3_frames() {
        for message in [
            Message::Hello(Hello {
                max_version: 3,
                model: Some("alpha".to_string()),
            }),
            Message::HelloAck(HelloAck {
                version: 3,
                label: "Ensembler".to_string(),
                ensemble_size: 4,
                selected_count: 2,
                model: Some("alpha".to_string()),
            }),
        ] {
            let mut frame = encode_message(&message);
            frame[4..6].copy_from_slice(&2u16.to_be_bytes());
            let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
            let crc = crc32(&frame[..crc_offset]);
            frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
            let err = decode_message(&frame).unwrap_err();
            assert!(
                err.to_string().contains("requires a version-3 frame"),
                "{err}"
            );
        }
    }

    #[test]
    fn new_error_codes_round_trip_and_degrade_gracefully() {
        assert_eq!(ErrorCode::from_u16(7), ErrorCode::UnknownModel);
        assert_eq!(ErrorCode::from_u16(8), ErrorCode::Overloaded);
        // Error frames stay version-1, so a legacy peer parses the frame and
        // maps the unknown code to Internal instead of choking on it.
        let message = Message::Error(WireError {
            code: ErrorCode::Overloaded,
            message: "budget".to_string(),
        });
        let frame = encode_message(&message);
        assert_eq!(&frame[4..6], &1u16.to_be_bytes());
        assert_eq!(round_trip(message.clone()), message);
    }

    #[test]
    fn range_requests_round_trip_in_version_4_frames() {
        let transmitted = Tensor::from_fn(&[2, 3, 4, 4], |i| (i as f32 * 0.1).cos());
        let request = Message::ServerOutputsRequestRange {
            lo: 2,
            hi: 5,
            transmitted: transmitted.clone(),
        };
        let frame = encode_message(&request);
        assert_eq!(&frame[4..6], &4u16.to_be_bytes(), "v4 frame stamp");
        assert_eq!(round_trip(request.clone()), request);

        let qrequest = Message::ServerOutputsRequestRangeQ {
            lo: 0,
            hi: 2,
            transmitted: QTensorBatch::quantize_batch(&transmitted),
        };
        let frame = encode_message(&qrequest);
        assert_eq!(&frame[4..6], &4u16.to_be_bytes(), "v4 frame stamp");
        assert_eq!(round_trip(qrequest.clone()), qrequest);
    }

    #[test]
    fn range_requests_cost_exactly_one_range_header_over_the_full_request() {
        let transmitted = Tensor::ones(&[2, 3, 4, 4]);
        let full = encode_message(&Message::ServerOutputsRequest {
            transmitted: transmitted.clone(),
        });
        let ranged = encode_message(&Message::ServerOutputsRequestRange {
            lo: 1,
            hi: 3,
            transmitted,
        });
        assert_eq!(
            ranged.len() as u64,
            full.len() as u64 + WIRE_OVERHEAD.range_header_bytes
        );
    }

    #[test]
    fn range_requests_are_rejected_in_pre_v4_frames() {
        let transmitted = Tensor::ones(&[1, 1, 2, 2]);
        for message in [
            Message::ServerOutputsRequestRange {
                lo: 0,
                hi: 1,
                transmitted: transmitted.clone(),
            },
            Message::ServerOutputsRequestRangeQ {
                lo: 0,
                hi: 1,
                transmitted: QTensorBatch::quantize_batch(&transmitted),
            },
        ] {
            let mut frame = encode_message(&message);
            frame[4..6].copy_from_slice(&3u16.to_be_bytes());
            let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
            let crc = crc32(&frame[..crc_offset]);
            frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
            let err = decode_message(&frame).unwrap_err();
            assert!(
                err.to_string().contains("requires protocol version 4"),
                "{err}"
            );
        }
    }

    #[test]
    fn quantized_types_are_rejected_in_version_1_frames() {
        let q = QTensorBatch::quantize_batch(&Tensor::ones(&[1, 1, 2, 2]));
        let mut frame = encode_message(&Message::ServerOutputsRequestQ { transmitted: q });
        frame[4..6].copy_from_slice(&1u16.to_be_bytes());
        let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
        let crc = crc32(&frame[..crc_offset]);
        frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(
            err.to_string().contains("requires protocol version 2"),
            "{err}"
        );
    }

    #[test]
    fn truncated_and_garbage_scale_fields_are_rejected() {
        let q = QTensorBatch::quantize_batch(&Tensor::from_fn(&[2, 4], |i| i as f32 + 1.0));
        let good = encode_message(&Message::ServerOutputsRequestQ {
            transmitted: q.clone(),
        });

        // Truncate inside the scale section: drop the last data bytes so the
        // payload ends mid-scale, re-stamp length and CRC so framing is valid.
        let cut = 8; // removes all 8 i8 values: payload now ends inside scales
        let mut frame = good[..good.len() - FRAME_TRAILER_BYTES - cut].to_vec();
        let payload_len = (frame.len() - FRAME_HEADER_BYTES) as u32;
        frame[8..12].copy_from_slice(&payload_len.to_be_bytes());
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");

        // Garbage scale: an infinite per-sample scale must be rejected.
        let mut frame = good;
        let scale_offset = FRAME_HEADER_BYTES + 4 + 4 + 2 * 4;
        frame[scale_offset..scale_offset + 4].copy_from_slice(&f32::INFINITY.to_le_bytes());
        let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
        let crc = crc32(&frame[..crc_offset]);
        frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_message(&Message::Hello(Hello::legacy(1)));
        frame[0] ^= 0xFF;
        assert!(matches!(decode_message(&frame), Err(ServeError::Frame(_))));
    }

    #[test]
    fn future_version_is_rejected_as_unsupported() {
        let mut frame = encode_message(&Message::Hello(Hello::legacy(1)));
        frame[4..6].copy_from_slice(&99u16.to_be_bytes());
        // Re-stamp the checksum so the version check is what fires.
        let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
        let crc = crc32(&frame[..crc_offset]);
        frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(ServeError::UnsupportedVersion {
                offered: 99,
                supported: PROTOCOL_VERSION
            })
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut frame = encode_message(&Message::ServerOutputsRequest {
            transmitted: Tensor::ones(&[1, 2, 2, 2]),
        });
        let byte = FRAME_HEADER_BYTES + 10;
        frame[byte] ^= 0x01;
        assert!(matches!(
            decode_message(&frame),
            Err(ServeError::Checksum { .. })
        ));
    }

    #[test]
    fn unknown_message_type_is_rejected() {
        let mut frame = encode_message(&Message::Hello(Hello::legacy(1)));
        frame[6] = 0x42;
        let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
        let crc = crc32(&frame[..crc_offset]);
        frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("unknown message type"));
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let mut frame = encode_message(&Message::Hello(Hello::legacy(1)));
        frame[7] = 0x80;
        let crc_offset = frame.len() - FRAME_TRAILER_BYTES;
        let crc = crc32(&frame[..crc_offset]);
        frame[crc_offset..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(decode_message(&frame), Err(ServeError::Frame(_))));
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let frame = encode_message(&Message::Hello(Hello::legacy(1)));
        assert!(decode_message(&frame[..frame.len() - 1]).is_err());
        assert!(decode_message(&frame[..4]).is_err());
        assert!(decode_message(&[]).is_err());
        let mut padded = frame.clone();
        padded.push(0);
        assert!(decode_message(&padded).is_err());
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build a version-1 Hello frame whose payload is one byte too
        // long (in a v3 frame those bytes would parse as a model name).
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        frame.extend_from_slice(&1u16.to_be_bytes());
        frame.push(MessageType::Hello as u8);
        frame.push(0);
        frame.extend_from_slice(&3u32.to_be_bytes());
        frame.extend_from_slice(&[0, 1, 0xAA]);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn absurd_tensor_count_is_rejected_before_allocating() {
        // Untagged frame (stamped with the newest version that carries no
        // request id) …
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        frame.extend_from_slice(&(TAGGED_WIRE_VERSION - 1).to_be_bytes());
        frame.push(MessageType::ServerOutputsResponse as u8);
        frame.push(0);
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // tensor count
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_be_bytes());
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("tensors"), "{err}");

        // … and its tagged twin hit the same allocation guard.
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        frame.extend_from_slice(&TAGGED_WIRE_VERSION.to_be_bytes());
        frame.push(MessageType::ServerOutputsResponse as u8);
        frame.push(0);
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&77u64.to_be_bytes()); // request id
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // tensor count
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_be_bytes());
        let err = decode_tagged(&frame).unwrap_err();
        assert!(err.to_string().contains("tensors"), "{err}");
    }

    #[test]
    fn read_message_enforces_the_payload_cap() {
        let frame = encode_message(&Message::ServerOutputsRequest {
            transmitted: Tensor::ones(&[1, 4, 8, 8]),
        });
        let mut reader = frame.as_slice();
        let err = read_message(&mut reader, 16).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        let mut reader = frame.as_slice();
        assert!(read_message(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES).is_ok());
    }

    #[test]
    fn unknown_error_codes_degrade_to_internal() {
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::Internal);
        assert_eq!(ErrorCode::from_u16(5), ErrorCode::Inference);
    }

    #[test]
    fn tagged_frames_round_trip_with_their_request_id() {
        let q = QTensorBatch::quantize_batch(&Tensor::ones(&[1, 1, 2, 2]));
        let messages = vec![
            Message::ServerOutputsRequest {
                transmitted: Tensor::ones(&[1, 1, 2, 2]),
            },
            Message::ServerOutputsResponse {
                maps: vec![Tensor::ones(&[1, 4])],
            },
            Message::ServerOutputsRequestQ {
                transmitted: q.clone(),
            },
            Message::ServerOutputsResponseQ {
                maps: vec![QTensorBatch::quantize_batch(&Tensor::ones(&[1, 4]))],
            },
            Message::ServerOutputsRequestRange {
                lo: 0,
                hi: 1,
                transmitted: Tensor::ones(&[1, 1, 2, 2]),
            },
            Message::ServerOutputsRequestRangeQ {
                lo: 0,
                hi: 1,
                transmitted: q,
            },
            Message::Error(WireError {
                code: ErrorCode::Overloaded,
                message: "busy".to_string(),
            }),
        ];
        for (k, message) in messages.into_iter().enumerate() {
            let id = u64::MAX - k as u64;
            let frame = encode_tagged(&message, Some(id));
            assert_eq!(
                &frame[4..6],
                &TAGGED_WIRE_VERSION.to_be_bytes(),
                "{message:?}"
            );
            let tagged = decode_tagged(&frame).expect("tagged round trip");
            assert_eq!(tagged.request_id, Some(id));
            assert_eq!(tagged.message, message);
        }
    }

    #[test]
    fn tagging_costs_exactly_the_request_id_bytes() {
        let message = Message::ServerOutputsRequest {
            transmitted: Tensor::ones(&[2, 3, 4, 4]),
        };
        let untagged = encode_message(&message);
        let tagged = encode_tagged(&message, Some(7));
        assert_eq!(tagged.len(), untagged.len() + REQUEST_ID_BYTES);
        assert_eq!(
            tagged.len() as u64,
            untagged.len() as u64 + WIRE_OVERHEAD.request_id_bytes
        );
        // The payload bytes are identical: only the version stamp, the id
        // word and the checksum differ between the twins.
        assert_eq!(
            &tagged[FRAME_HEADER_BYTES + REQUEST_ID_BYTES..tagged.len() - FRAME_TRAILER_BYTES],
            &untagged[FRAME_HEADER_BYTES..untagged.len() - FRAME_TRAILER_BYTES]
        );
    }

    #[test]
    fn untagged_frames_are_unchanged_through_the_tagged_api() {
        let message = Message::Hello(Hello::legacy(5));
        assert_eq!(encode_tagged(&message, None), encode_message(&message));
        let tagged = decode_tagged(&encode_message(&message)).expect("untagged decode");
        assert_eq!(tagged.request_id, None);
        assert_eq!(tagged.message, message);
    }

    #[test]
    fn lockstep_decoders_reject_tagged_frames() {
        let frame = encode_tagged(&Message::ServerOutputsResponse { maps: vec![] }, Some(3));
        let err = decode_message(&frame).unwrap_err();
        assert!(err.to_string().contains("tagged"), "{err}");
        let mut reader = frame.as_slice();
        let err = read_message(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES).unwrap_err();
        assert!(err.to_string().contains("tagged"), "{err}");
    }

    #[test]
    fn handshake_frames_are_never_tagged() {
        // Hand-build a v5-stamped Hello frame carrying an id: the decoder
        // rejects it before touching the payload.
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        frame.extend_from_slice(&TAGGED_WIRE_VERSION.to_be_bytes());
        frame.push(MessageType::Hello as u8);
        frame.push(0);
        frame.extend_from_slice(&2u32.to_be_bytes());
        frame.extend_from_slice(&9u64.to_be_bytes()); // request id
        frame.extend_from_slice(&5u16.to_be_bytes()); // payload: max_version
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_be_bytes());
        let err = decode_tagged(&frame).unwrap_err();
        assert!(err.to_string().contains("never tagged"), "{err}");
    }

    #[test]
    fn read_tagged_reads_the_extended_header() {
        let message = Message::ServerOutputsRequest {
            transmitted: Tensor::ones(&[1, 1, 2, 2]),
        };
        let frame = encode_tagged(&message, Some(42));
        let mut reader = frame.as_slice();
        let tagged = read_tagged(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES).expect("read tagged");
        assert_eq!(tagged.request_id, Some(42));
        assert_eq!(tagged.message, message);
        assert!(reader.is_empty(), "the whole frame is consumed");
        // An untagged frame travels through the same reader unchanged.
        let frame = encode_message(&message);
        let mut reader = frame.as_slice();
        let tagged = read_tagged(&mut reader, DEFAULT_MAX_PAYLOAD_BYTES).expect("read untagged");
        assert_eq!(tagged.request_id, None);
    }

    #[test]
    fn truncated_tagged_frames_are_rejected() {
        let frame = encode_tagged(&Message::ServerOutputsResponse { maps: vec![] }, Some(1));
        for cut in 1..frame.len() {
            assert!(
                decode_tagged(&frame[..frame.len() - cut]).is_err(),
                "a frame cut {cut} bytes short must not decode"
            );
        }
    }

    #[test]
    fn wire_overhead_constant_matches_the_encoder() {
        // Upload: one rank-4 tensor.
        let transmitted = Tensor::ones(&[2, 3, 4, 4]);
        let frame = encode_message(&Message::ServerOutputsRequest {
            transmitted: transmitted.clone(),
        });
        let expected = WIRE_OVERHEAD.frame_bytes
            + WIRE_OVERHEAD.tensor_base_bytes
            + 4 * WIRE_OVERHEAD.per_dim_bytes
            + 4 * transmitted.len() as u64;
        assert_eq!(frame.len() as u64, expected);

        // Return: a list of rank-2 tensors.
        let maps: Vec<Tensor> = (0..3).map(|_| Tensor::ones(&[2, 5])).collect();
        let frame = encode_message(&Message::ServerOutputsResponse { maps: maps.clone() });
        let per_tensor = WIRE_OVERHEAD.per_tensor_prefix_bytes
            + WIRE_OVERHEAD.tensor_base_bytes
            + 2 * WIRE_OVERHEAD.per_dim_bytes
            + 4 * maps[0].len() as u64;
        let expected = WIRE_OVERHEAD.frame_bytes + WIRE_OVERHEAD.list_header_bytes + 3 * per_tensor;
        assert_eq!(frame.len() as u64, expected);
    }
}
