//! Saving and restoring layer parameters (a minimal `state_dict` equivalent).
//!
//! The Ensembler workflow needs this in two places: the stage-1 server bodies
//! are trained once and then reused (frozen) by stage 3 and by every attack
//! experiment, and a deployment wants to ship trained weights from the
//! training machine to the client and the server. The checkpoint format is a
//! plain ordered list of tensors (JSON-serialisable), matched positionally
//! against [`Layer::params`] — the same convention optimizers use.

use crate::Layer;
use ensembler_tensor::json::{JsonError, JsonValue};
use ensembler_tensor::{ShapeError, Tensor};

/// A serialisable snapshot of a layer's (or whole network's) parameters.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Checkpoint, Layer, Linear};
/// use ensembler_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let a = Linear::new(4, 2, &mut rng);
/// let mut b = Linear::new(4, 2, &mut rng);
/// let snapshot = Checkpoint::capture(&a);
/// snapshot.restore(&mut b)?;
/// assert_eq!(a.weight().value, b.weight().value);
/// # Ok::<(), ensembler_nn::RestoreCheckpointError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    tensors: Vec<Tensor>,
}

/// Error returned when a checkpoint does not fit the target layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreCheckpointError {
    message: String,
}

impl std::fmt::Display for RestoreCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RestoreCheckpointError {}

impl From<ShapeError> for RestoreCheckpointError {
    fn from(err: ShapeError) -> Self {
        Self {
            message: err.to_string(),
        }
    }
}

impl Checkpoint {
    /// Captures the current parameter values of a layer.
    pub fn capture(layer: &dyn Layer) -> Self {
        Self {
            tensors: layer.params().iter().map(|p| p.value.clone()).collect(),
        }
    }

    /// Builds a snapshot directly from an ordered tensor list (the model
    /// artifact loader's path: tensors decoded from disk, matched
    /// positionally against a freshly built architecture).
    pub fn from_tensors(tensors: Vec<Tensor>) -> Self {
        Self { tensors }
    }

    /// The captured parameter tensors, in [`Layer::params`] order.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Returns `true` if the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar values stored.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Converts the snapshot into its JSON representation
    /// (`{"tensors": [...]}`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![(
            "tensors".to_string(),
            JsonValue::Array(self.tensors.iter().map(Tensor::to_json).collect()),
        )])
    }

    /// Reconstructs a snapshot from the representation produced by
    /// [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or malformed tensors.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let tensors = value
            .require("tensors")?
            .as_array()?
            .iter()
            .map(Tensor::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { tensors })
    }

    /// Writes the snapshot's values into `layer`, matching parameters by
    /// position.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter count or any tensor shape differs
    /// from the target layer; in that case the layer is left unchanged.
    pub fn restore(&self, layer: &mut dyn Layer) -> Result<(), RestoreCheckpointError> {
        {
            let params = layer.params();
            if params.len() != self.tensors.len() {
                return Err(RestoreCheckpointError {
                    message: format!(
                        "checkpoint has {} tensors but the layer has {} parameters",
                        self.tensors.len(),
                        params.len()
                    ),
                });
            }
            for (i, (param, tensor)) in params.iter().zip(&self.tensors).enumerate() {
                if param.value.shape() != tensor.shape() {
                    return Err(RestoreCheckpointError {
                        message: format!(
                            "parameter {i} has shape {:?} but the checkpoint stores {:?}",
                            param.value.shape(),
                            tensor.shape()
                        ),
                    });
                }
            }
        }
        for (param, tensor) in layer.params_mut().into_iter().zip(&self.tensors) {
            param.value = tensor.clone();
            param.zero_grad();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_body, ResNetConfig};
    use crate::{Linear, Mode, Relu, Sequential};
    use ensembler_tensor::Rng;

    #[test]
    fn capture_and_restore_round_trips_a_network() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(0);
        let source = build_body(&config, &mut rng);
        let mut target = build_body(&config, &mut rng);

        let snapshot = Checkpoint::capture(&source);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.scalar_count(), source.parameter_count());
        snapshot.restore(&mut target).unwrap();

        let shape = config.head_output_shape();
        let x = Tensor::from_fn(&[2, shape[0], shape[1], shape[2]], |i| {
            (i as f32 * 0.01).sin()
        });
        let ya = source.forward(&x, Mode::Eval);
        let yb = target.forward(&x, Mode::Eval);
        assert_eq!(ya, yb, "restored network must compute identical outputs");
    }

    #[test]
    fn restore_rejects_mismatched_architectures() {
        let mut rng = Rng::seed_from(1);
        let small = Linear::new(4, 2, &mut rng);
        let mut large = Linear::new(8, 2, &mut rng);
        let snapshot = Checkpoint::capture(&small);
        let err = snapshot.restore(&mut large).unwrap_err();
        assert!(err.to_string().contains("shape"));

        let mut different_count = Sequential::new(vec![
            Box::new(Linear::new(4, 2, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(2, 2, &mut rng)),
        ]);
        let err = snapshot.restore(&mut different_count).unwrap_err();
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn restore_failure_leaves_the_target_unchanged() {
        let mut rng = Rng::seed_from(2);
        let small = Linear::new(4, 2, &mut rng);
        let mut target = Linear::new(8, 2, &mut rng);
        let before = target.weight().value.clone();
        let _ = Checkpoint::capture(&small).restore(&mut target);
        assert_eq!(target.weight().value, before);
    }

    #[test]
    fn json_round_trip_preserves_weights() {
        let mut rng = Rng::seed_from(3);
        let layer = Linear::new(3, 3, &mut rng);
        let snapshot = Checkpoint::capture(&layer);
        let json = snapshot.to_json().render();
        let back =
            Checkpoint::from_json(&ensembler_tensor::JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, snapshot);
    }
}
