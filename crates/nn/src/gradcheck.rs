//! Finite-difference gradient checking used by the layer unit tests.
//!
//! Every manually derived backward pass in this crate is validated by
//! comparing its analytic gradients with central finite differences of the
//! forward pass. The helpers here are public so downstream crates (the
//! Ensembler trainer, the attack decoder) can reuse them in their own tests.

use crate::{Layer, Mode};
use ensembler_tensor::{Rng, Tensor};

/// Relative error between an analytic and a numeric derivative, guarded
/// against division by very small magnitudes.
fn relative_error(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Checks the input gradient of `layer` against central finite differences.
///
/// The scalar objective is `sum(forward(x) * w)` for a fixed random weighting
/// `w`, so `grad_output = w`. Inputs are drawn uniformly from `[-1, 1]` and
/// shifted by `input_shift`, which lets callers keep piecewise-linear layers
/// (ReLU) away from their kinks.
///
/// # Panics
///
/// Panics if any element's relative error exceeds `tolerance`.
pub fn check_layer_input_grad(
    layer: &mut dyn Layer,
    input_shape: &[usize],
    input_shift: f32,
    tolerance: f32,
) {
    let mut rng = Rng::seed_from(0x5EED);
    let x = Tensor::from_fn(input_shape, |_| rng.uniform(-1.0, 1.0) + input_shift);
    let y = layer.forward_cached(&x, Mode::Eval);
    let w = Tensor::from_fn(y.shape(), |_| rng.uniform(-1.0, 1.0));
    let analytic = layer.backward(&w);

    let eps = 1e-2f32;
    for idx in 0..x.len() {
        let mut plus = x.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = x.clone();
        minus.data_mut()[idx] -= eps;
        // The numeric probes use the pure forward, which leaves the cached
        // activations of the analytic pass untouched.
        let f_plus = layer.forward(&plus, Mode::Eval).dot(&w);
        let f_minus = layer.forward(&minus, Mode::Eval).dot(&w);
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let err = relative_error(analytic.data()[idx], numeric);
        assert!(
            err <= tolerance,
            "input gradient mismatch at {idx}: analytic {} vs numeric {} (rel err {err})",
            analytic.data()[idx],
            numeric
        );
    }
}

/// Checks the parameter gradients of `layer` against central finite
/// differences, using the same weighted-sum objective as
/// [`check_layer_input_grad`].
///
/// To keep the check affordable for large layers, at most `max_checks`
/// randomly chosen scalar parameters per parameter tensor are verified.
///
/// # Panics
///
/// Panics if any checked element's relative error exceeds `tolerance`.
pub fn check_layer_param_grads(
    layer: &mut dyn Layer,
    input_shape: &[usize],
    tolerance: f32,
    max_checks: usize,
) {
    let mut rng = Rng::seed_from(0xBEEF);
    let x = Tensor::from_fn(input_shape, |_| rng.uniform(-1.0, 1.0));
    let y = layer.forward_cached(&x, Mode::Eval);
    let w = Tensor::from_fn(y.shape(), |_| rng.uniform(-1.0, 1.0));
    layer.zero_grad();
    let _ = layer.backward(&w);

    let analytic: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();
    let eps = 1e-2f32;

    for (pi, grad) in analytic.iter().enumerate() {
        let count = grad.len().min(max_checks);
        let indices = rng.choose_indices(grad.len(), count);
        for idx in indices {
            let original = layer.params()[pi].value.data()[idx];

            layer.params_mut()[pi].value.data_mut()[idx] = original + eps;
            let f_plus = layer.forward(&x, Mode::Eval).dot(&w);
            layer.params_mut()[pi].value.data_mut()[idx] = original - eps;
            let f_minus = layer.forward(&x, Mode::Eval).dot(&w);
            layer.params_mut()[pi].value.data_mut()[idx] = original;

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let err = relative_error(grad.data()[idx], numeric);
            assert!(
                err <= tolerance,
                "param {pi} gradient mismatch at {idx}: analytic {} vs numeric {} (rel err {err})",
                grad.data()[idx],
                numeric
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};

    #[test]
    fn relative_error_handles_small_values() {
        assert!(relative_error(0.0, 0.0) == 0.0);
        assert!(relative_error(1.0, 1.0) == 0.0);
        assert!(relative_error(1.0, 2.0) > 0.4);
    }

    #[test]
    fn linear_layer_passes_both_checks() {
        let mut rng = Rng::seed_from(3);
        let mut layer = Linear::new(6, 4, &mut rng);
        check_layer_input_grad(&mut layer, &[3, 6], 0.0, 2e-2);
        check_layer_param_grads(&mut layer, &[3, 6], 2e-2, 16);
    }

    #[test]
    #[should_panic(expected = "input gradient mismatch")]
    fn a_wrong_backward_is_detected() {
        /// A deliberately broken layer whose backward returns a scaled gradient.
        #[derive(Debug, Clone)]
        struct Broken;
        impl Layer for Broken {
            fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
                input.scale(2.0)
            }
            fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
                input.scale(2.0)
            }
            fn backward(&mut self, grad_output: &Tensor) -> Tensor {
                grad_output.scale(3.0) // should be 2.0
            }
            fn clone_layer(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
            fn name(&self) -> &'static str {
                "broken"
            }
        }
        check_layer_input_grad(&mut Broken, &[2, 3], 0.0, 1e-2);
    }

    #[test]
    fn relu_away_from_kink_passes() {
        // Tolerance accounts for f32 finite-difference noise on the tiny
        // gradient magnitudes produced by the random weighting.
        check_layer_input_grad(&mut Relu::new(), &[2, 4], 2.0, 5e-2);
    }
}
