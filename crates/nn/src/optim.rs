//! First-order optimizers operating on [`Param`] collections.

use crate::Param;
use ensembler_tensor::Tensor;

/// A first-order optimizer that updates a fixed, ordered collection of
/// parameters from their accumulated gradients.
///
/// Implementations keep per-parameter state (momentum buffers, Adam moments)
/// indexed by position, so the same parameter ordering must be passed to
/// every [`Optimizer::step`] call. Gathering parameters from the same model
/// via [`crate::Layer::params_mut`] guarantees this.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in the
    /// parameters and then clears those gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Optimizer, Param, Sgd};
/// use ensembler_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2]));
/// p.grad.fill(1.0);
/// let mut opt = Sgd::new(0.1).with_momentum(0.0);
/// opt.step(&mut [&mut p]);
/// assert_eq!(p.value.data(), &[0.9, 0.9]);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with momentum 0.9 and no weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.9,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.weight_decay > 0.0 {
                grad.axpy(self.weight_decay, &p.value);
            }
            let v = &mut self.velocity[i];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter {i} changed shape between optimizer steps"
            );
            v.scale_assign(self.momentum);
            v.add_assign(&grad);
            p.value.axpy(-self.lr, v);
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Sets the L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.first_moment.len() != params.len() {
            self.first_moment = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.second_moment = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.step_count = 0;
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        for (i, p) in params.iter_mut().enumerate() {
            let mut grad = p.grad.clone();
            if self.weight_decay > 0.0 {
                grad.axpy(self.weight_decay, &p.value);
            }
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            assert_eq!(
                m.shape(),
                p.value.shape(),
                "parameter {i} changed shape between optimizer steps"
            );
            for j in 0..grad.len() {
                let g = grad.data()[j];
                let mj = self.beta1 * m.data()[j] + (1.0 - self.beta1) * g;
                let vj = self.beta2 * v.data()[j] + (1.0 - self.beta2) * g * g;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let m_hat = mj / bias1;
                let v_hat = vj / bias2;
                p.value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // Gradient of f(x) = 0.5 * ||x - 3||^2 is (x - 3).
        p.value.add_scalar(-3.0)
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut p = Param::new(Tensor::from_vec(vec![2.0, -1.0], &[2]).unwrap());
        p.grad = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut opt = Sgd::new(0.2).with_momentum(0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data(), &[1.9, -0.9]);
        assert_eq!(p.grad.data(), &[0.0, 0.0], "step clears gradients");
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..200 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]);
        }
        for v in p.value.data() {
            assert!((v - 3.0).abs() < 1e-3, "converged value {v}");
        }
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]);
        }
        for v in p.value.data() {
            assert!((v - 3.0).abs() < 1e-2, "converged value {v}");
        }
        assert_eq!(opt.steps_taken(), 500);
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut p = Param::new(Tensor::ones(&[3]));
        let mut opt = Sgd::new(0.1).with_momentum(0.0).with_weight_decay(0.5);
        opt.step(&mut [&mut p]);
        for v in p.value.data() {
            assert!((v - 0.95).abs() < 1e-6);
        }
    }

    #[test]
    fn learning_rate_can_be_scheduled() {
        let mut opt = Sgd::new(0.1);
        assert!((opt.learning_rate() - 0.1).abs() < f32::EPSILON);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < f32::EPSILON);
        let mut adam = Adam::new(1e-3);
        adam.set_learning_rate(1e-4);
        assert!((adam.learning_rate() - 1e-4).abs() < f32::EPSILON);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_handles_two_parameter_groups() {
        let mut a = Param::new(Tensor::zeros(&[2]));
        let mut b = Param::new(Tensor::zeros(&[5]));
        let mut opt = Adam::new(0.1);
        for _ in 0..100 {
            a.grad = a.value.add_scalar(-1.0);
            b.grad = b.value.add_scalar(2.0);
            opt.step(&mut [&mut a, &mut b]);
        }
        assert!(a.value.data().iter().all(|v| (v - 1.0).abs() < 0.05));
        assert!(b.value.data().iter().all(|v| (v + 2.0).abs() < 0.05));
    }
}
