//! Inverted dropout layer, used by the DR-single / DR-N baseline defences.

use crate::{Layer, Mode};
use ensembler_tensor::{Rng, Tensor};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1 / (1 - p)`; during evaluation the layer
/// is the identity.
///
/// The He et al. dropout defence ("DR") reuses this layer at inference time by
/// running it in [`Mode::Train`], so the layer exposes
/// [`Dropout::set_active_in_eval`] for that use case.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Dropout, Layer, Mode};
/// use ensembler_tensor::Tensor;
///
/// let mut drop = Dropout::new(0.5, 7);
/// let x = Tensor::ones(&[1, 100]);
/// let y = drop.forward(&x, Mode::Eval);
/// assert_eq!(y.data(), x.data()); // identity in eval mode
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    active_in_eval: bool,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a private RNG
    /// seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Self {
            p,
            rng: Rng::seed_from(seed),
            active_in_eval: false,
            mask: None,
        }
    }

    /// Returns the drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Makes the layer drop activations even in [`Mode::Eval`].
    ///
    /// This is how the dropout *defence* (as opposed to dropout
    /// regularization) is deployed: the client keeps the stochastic masking
    /// active at inference time to perturb the features the server sees.
    pub fn set_active_in_eval(&mut self, active: bool) {
        self.active_in_eval = active;
    }

    fn is_active(&self, mode: Mode) -> bool {
        mode.is_train() || self.active_in_eval
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if !self.is_active(mode) || self.p == 0.0 {
            self.mask = Some(Tensor::ones(input.shape()));
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.shape(), |_| {
            if self.rng.next_f32() < self.p {
                0.0
            } else {
                scale
            }
        });
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on Dropout");
        grad_output.mul(mask)
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity_by_default() {
        let mut drop = Dropout::new(0.8, 1);
        let x = Tensor::from_fn(&[2, 10], |i| i as f32);
        assert_eq!(drop.forward(&x, Mode::Eval), x);
        assert_eq!(drop.probability(), 0.8);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction_and_rescales() {
        let mut drop = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[1, 10_000]);
        let y = drop.forward(&x, Mode::Train);
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // Inverted dropout keeps the expected activation scale.
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_the_same_mask_as_forward() {
        let mut drop = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1, 64]);
        let y = drop.forward(&x, Mode::Train);
        let g = drop.backward(&Tensor::ones(&[1, 64]));
        // Positions zeroed in the output receive zero gradient; survivors get
        // the same 1/(1-p) scaling.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn active_in_eval_enables_the_defence_behaviour() {
        let mut drop = Dropout::new(0.5, 4);
        drop.set_active_in_eval(true);
        let x = Tensor::ones(&[1, 1000]);
        let y = drop.forward(&x, Mode::Eval);
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 300, "dropout should stay active in eval mode");
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let mut drop = Dropout::new(0.0, 5);
        let x = Tensor::from_fn(&[2, 4], |i| i as f32);
        assert_eq!(drop.forward(&x, Mode::Train), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_rejected() {
        let _ = Dropout::new(1.0, 6);
    }
}
