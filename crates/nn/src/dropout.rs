//! Inverted dropout layer, used by the DR-single / DR-N baseline defences.

use crate::{Layer, Mode};
use ensembler_tensor::{Rng, Tensor};

/// Inverted dropout: when active, each element is zeroed with probability `p`
/// and survivors are scaled by `1 / (1 - p)`; during evaluation the layer is
/// the identity.
///
/// The He et al. dropout defence ("DR") reuses this layer at inference time by
/// keeping the masking active in [`Mode::Eval`], so the layer exposes
/// [`Dropout::set_active_in_eval`] for that use case.
///
/// The mask is derived deterministically from the layer's seed and a hash of
/// each **individual sample** (axis 0 is the batch axis), not from mutable
/// RNG state. That is what lets [`Layer::forward`] take `&self`: a pipeline
/// with an active dropout defence can be shared across threads, concurrent
/// inference produces bit-identical results to sequential inference, and a
/// sample's mask does not depend on which other samples happen to share its
/// mini-batch — serving a request alone or coalesced into a larger batch
/// (see `ensembler::engine`) yields the same output.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Dropout, Layer, Mode};
/// use ensembler_tensor::Tensor;
///
/// let drop = Dropout::new(0.5, 7);
/// let x = Tensor::ones(&[1, 100]);
/// let y = drop.forward(&x, Mode::Eval);
/// assert_eq!(y.data(), x.data()); // identity in eval mode
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    active_in_eval: bool,
    mask: Option<Tensor>,
}

/// FNV-1a over one sample's per-sample shape and bit patterns: a cheap,
/// deterministic fingerprint that seeds that sample's mask stream. The batch
/// dimension is deliberately excluded so the fingerprint is identical
/// whether the sample travels alone or inside a larger batch.
fn sample_fingerprint(per_sample_shape: &[usize], sample: &[f32]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for &dim in per_sample_shape {
        eat(dim as u64);
    }
    for &v in sample {
        eat(v.to_bits() as u64);
    }
    hash
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a private seed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            seed,
            active_in_eval: false,
            mask: None,
        }
    }

    /// Returns the drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// The private seed the per-sample masks are derived from (exported into
    /// model artifacts so a reloaded defence masks identically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Makes the layer drop activations even in [`Mode::Eval`].
    ///
    /// This is how the dropout *defence* (as opposed to dropout
    /// regularization) is deployed: the client keeps the stochastic masking
    /// active at inference time to perturb the features the server sees.
    pub fn set_active_in_eval(&mut self, active: bool) {
        self.active_in_eval = active;
    }

    fn is_active(&self, mode: Mode) -> bool {
        mode.is_train() || self.active_in_eval
    }

    /// The deterministic mask this layer applies to `input`, derived one
    /// batch sample at a time.
    fn mask_for(&self, input: &Tensor) -> Tensor {
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let batch = input.shape().first().copied().unwrap_or(1).max(1);
        let per_sample = input.len() / batch;
        let per_sample_shape = &input.shape()[1..];
        let mut mask = Tensor::zeros(input.shape());
        for (n, chunk) in mask.data_mut().chunks_mut(per_sample).enumerate() {
            let sample = &input.data()[n * per_sample..(n + 1) * per_sample];
            let mut rng = Rng::seed_from(self.seed ^ sample_fingerprint(per_sample_shape, sample));
            for slot in chunk {
                *slot = if rng.next_f32() < self.p { 0.0 } else { scale };
            }
        }
        mask
    }
}

impl Layer for Dropout {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        if !self.is_active(mode) || self.p == 0.0 {
            return input.clone();
        }
        input.mul(&self.mask_for(input))
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if !self.is_active(mode) || self.p == 0.0 {
            self.mask = Some(Tensor::ones(input.shape()));
            return input.clone();
        }
        let mask = self.mask_for(input);
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on Dropout");
        grad_output.mul(mask)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity_by_default() {
        let drop = Dropout::new(0.8, 1);
        let x = Tensor::from_fn(&[2, 10], |i| i as f32);
        assert_eq!(drop.forward(&x, Mode::Eval), x);
        assert_eq!(drop.probability(), 0.8);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction_and_rescales() {
        let drop = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[1, 10_000]);
        let y = drop.forward(&x, Mode::Train);
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // Inverted dropout keeps the expected activation scale.
        assert!((y.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_the_same_mask_as_forward() {
        let mut drop = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1, 64]);
        let y = drop.forward_cached(&x, Mode::Train);
        let g = drop.backward(&Tensor::ones(&[1, 64]));
        // Positions zeroed in the output receive zero gradient; survivors get
        // the same 1/(1-p) scaling.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn pure_and_cached_forward_agree() {
        let mut drop = Dropout::new(0.4, 9);
        let x = Tensor::from_fn(&[2, 128], |i| (i as f32 * 0.1).sin());
        let pure = drop.forward(&x, Mode::Train);
        let cached = drop.forward_cached(&x, Mode::Train);
        assert_eq!(pure, cached, "both paths must use the derived mask");
    }

    #[test]
    fn masks_differ_across_inputs_and_seeds() {
        let a = Dropout::new(0.5, 10);
        let b = Dropout::new(0.5, 11);
        let x = Tensor::ones(&[1, 256]);
        let y = Tensor::full(&[1, 256], 2.0);
        // Different seeds mask the same input differently.
        assert_ne!(a.forward(&x, Mode::Train), b.forward(&x, Mode::Train));
        // The same layer masks different inputs differently.
        let on_x = a.forward(&x, Mode::Train);
        let on_y = a.forward(&y, Mode::Train);
        let zeros_x: Vec<usize> = on_x
            .data()
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == 0.0)
            .map(|(i, _)| i)
            .collect();
        let zeros_y: Vec<usize> = on_y
            .data()
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_ne!(zeros_x, zeros_y);
    }

    #[test]
    fn a_samples_mask_is_independent_of_its_batch_mates() {
        // The property batched serving relies on: classifying an image alone
        // must equal classifying it inside any coalesced mini-batch.
        let drop = Dropout::new(0.5, 21);
        let sample = Tensor::from_fn(&[1, 64], |i| (i as f32 * 0.11).sin());
        let other = Tensor::from_fn(&[1, 64], |i| (i as f32 * 0.29).cos());
        let alone = drop.forward(&sample, Mode::Train);

        let mut stacked_data = sample.data().to_vec();
        stacked_data.extend_from_slice(other.data());
        let stacked = Tensor::from_vec(stacked_data, &[2, 64]).unwrap();
        let batched = drop.forward(&stacked, Mode::Train);

        assert_eq!(
            alone.data(),
            &batched.data()[..64],
            "batch composition must not change a sample's mask"
        );
    }

    #[test]
    fn active_in_eval_enables_the_defence_behaviour() {
        let mut drop = Dropout::new(0.5, 4);
        drop.set_active_in_eval(true);
        let x = Tensor::ones(&[1, 1000]);
        let y = drop.forward(&x, Mode::Eval);
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 300, "dropout should stay active in eval mode");
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let drop = Dropout::new(0.0, 5);
        let x = Tensor::from_fn(&[2, 4], |i| i as f32);
        assert_eq!(drop.forward(&x, Mode::Train), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_rejected() {
        let _ = Dropout::new(1.0, 6);
    }
}
