//! Int8 inference counterparts of the GEMM-backed layers.
//!
//! The quantization scheme (see [`ensembler_tensor::quant`]) is symmetric:
//! weights carry one per-tensor scale fixed at quantization time; activations
//! are quantized on the fly with one scale **per batch sample**, so a
//! sample's int8 result never depends on what else shares its mini-batch —
//! the inference engine's coalescing guarantee carries over to int8
//! unchanged.
//!
//! Only the layers that are GEMMs at heart ([`Linear`], [`Conv2d`] and the
//! convolutions inside [`crate::ResidualBlock`]) get true int8 arithmetic;
//! everything
//! else (batch norm, activations, pooling, noise) is cheap and element-wise
//! and keeps running in `f32` between the quantized GEMMs, exactly like the
//! mixed-precision int8 pipelines surveyed in the LUT-DNN hardware
//! literature. A layer that has no quantized counterpart falls back to its
//! normal `f32` forward ([`QLayer::Fallback`]).
//!
//! # Examples
//!
//! ```
//! use ensembler_nn::quant::QSequential;
//! use ensembler_nn::{Layer, Linear, Mode, Relu, Sequential};
//! use ensembler_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let net = Sequential::new(vec![
//!     Box::new(Linear::new(8, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 4, &mut rng)),
//! ]);
//! let qnet = QSequential::from_sequential(&net);
//! let x = Tensor::ones(&[2, 8]);
//! let (y, qy) = (net.forward(&x, Mode::Eval), qnet.forward(&x));
//! assert_eq!(y.shape(), qy.shape());
//! // Quantized outputs track the f32 ones to within a few quantization steps.
//! for (a, b) in y.data().iter().zip(qy.data()) {
//!     assert!((a - b).abs() < 0.1, "{a} vs {b}");
//! }
//! ```

use crate::{BatchNorm2d, Conv2d, Layer, Linear, Mode, Sequential};
use ensembler_tensor::{im2col_i8, qgemm_nn, Conv2dGeometry, QTensor, QTensorBatch, Tensor};

/// Transposes a row-major `[rows, cols]` `i8` matrix into `[cols, rows]`.
///
/// Weight matrices are transposed once at quantization time so every int8
/// product runs through the one packed [`qgemm_nn`] kernel layout.
fn transpose_i8(data: &[i8], rows: usize, cols: usize) -> Vec<i8> {
    let mut out = vec![0i8; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    out
}

/// Int8 counterpart of [`Linear`]: pre-quantized weights, activations
/// quantized per sample on the fly, `i8×i8→i32` accumulation, dequantized
/// `f32` output with the bias added in full precision.
#[derive(Debug, Clone)]
pub struct QLinear {
    /// Quantized weight, stored transposed as `[in, out]`.
    weight_t: Vec<i8>,
    weight_scale: f32,
    bias: Tensor,
    in_features: usize,
    out_features: usize,
}

impl QLinear {
    /// Quantizes a trained [`Linear`] layer's weights for int8 inference.
    pub fn from_linear(layer: &Linear) -> Self {
        let q = QTensor::quantize(&layer.weight().value);
        let (out_features, in_features) = (layer.out_features(), layer.in_features());
        Self {
            weight_t: transpose_i8(q.data(), out_features, in_features),
            weight_scale: q.scale(),
            bias: layer.bias().value.clone(),
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Transposed quantized weight (`[in, out]`), for the fused plan stages.
    pub(crate) fn weight_t(&self) -> &[i8] {
        &self.weight_t
    }

    /// Per-tensor weight scale.
    pub(crate) fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    /// Full-precision bias.
    pub(crate) fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Computes `y = x W^T + b` with int8 arithmetic: each input row is
    /// quantized with its own scale, so row `i` of the output is independent
    /// of the rest of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[batch, in_features]`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 2, "QLinear expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "QLinear expected {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        let batch = input.shape()[0];
        let q = QTensorBatch::quantize_batch(input);
        let acc = qgemm_nn(
            q.data(),
            &self.weight_t,
            batch,
            self.in_features,
            self.out_features,
        );
        let mut out = vec![0.0f32; batch * self.out_features];
        let bias = self.bias.data();
        for n in 0..batch {
            let rescale = q.scales()[n] * self.weight_scale;
            let row = &acc[n * self.out_features..(n + 1) * self.out_features];
            let out_row = &mut out[n * self.out_features..(n + 1) * self.out_features];
            for ((o, &a), &b) in out_row.iter_mut().zip(row).zip(bias) {
                *o = a as f32 * rescale + b;
            }
        }
        Tensor::from_vec(out, &[batch, self.out_features]).expect("output sized to batch*out")
    }
}

/// Int8 counterpart of [`Conv2d`]: the input is quantized per sample, lowered
/// with the `i8` `im2col`, multiplied through [`qgemm_nn`] against the
/// pre-quantized (transposed) weight and dequantized straight into NCHW with
/// the bias added in `f32`.
#[derive(Debug, Clone)]
pub struct QConv2d {
    /// Quantized weight, stored transposed as `[in_channels*k*k, out_channels]`.
    weight_t: Vec<i8>,
    weight_scale: f32,
    bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    geometry: Conv2dGeometry,
}

impl QConv2d {
    /// Quantizes a trained [`Conv2d`] layer's weights for int8 inference.
    pub fn from_conv(layer: &Conv2d) -> Self {
        let q = QTensor::quantize(&layer.weight().value);
        let geometry = layer.geometry();
        let fan_in = layer.in_channels() * geometry.kernel * geometry.kernel;
        Self {
            weight_t: transpose_i8(q.data(), layer.out_channels(), fan_in),
            weight_scale: q.scale(),
            bias: layer.bias().value.clone(),
            in_channels: layer.in_channels(),
            out_channels: layer.out_channels(),
            geometry,
        }
    }

    /// Output shape for a given NCHW input shape.
    ///
    /// # Panics
    ///
    /// Panics if `input_shape` is not rank-4 or the channel count differs.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 4, "expected NCHW shape");
        assert_eq!(input_shape[1], self.in_channels, "channel mismatch");
        vec![
            input_shape[0],
            self.out_channels,
            self.geometry.output_extent(input_shape[2]),
            self.geometry.output_extent(input_shape[3]),
        ]
    }

    /// Transposed quantized weight (`[fan_in, out]`), for the fused plan
    /// stages.
    pub(crate) fn weight_t(&self) -> &[i8] {
        &self.weight_t
    }

    /// Per-tensor weight scale.
    pub(crate) fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    /// Full-precision bias.
    pub(crate) fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Number of input channels.
    pub(crate) fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub(crate) fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The convolution geometry.
    pub(crate) fn geometry(&self) -> Conv2dGeometry {
        self.geometry
    }

    /// Runs the int8 convolution on an NCHW batch.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not rank-4 or its channel count differs.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "QConv2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "QConv2d expected {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let out_shape = self.output_shape(input.shape());
        let (out_c, out_h, out_w) = (out_shape[1], out_shape[2], out_shape[3]);
        let plane = out_h * out_w;
        let fan_in = c * self.geometry.kernel * self.geometry.kernel;

        // Per-sample quantization, then an i8 lowering: zero padding maps to
        // quantized zero, so lowering commutes with quantization exactly.
        let q = QTensorBatch::quantize_batch(input);
        let cols = im2col_i8(q.data(), b, c, h, w, self.geometry);
        let acc = qgemm_nn(&cols, &self.weight_t, b * plane, fan_in, out_c);

        // Dequantize + bias, transposing the [B*OH*OW, Cout] rows into NCHW.
        let mut out = vec![0.0f32; b * out_c * plane];
        let bias = self.bias.data();
        for n in 0..b {
            let rescale = q.scales()[n] * self.weight_scale;
            for p in 0..plane {
                let row = &acc[(n * plane + p) * out_c..(n * plane + p + 1) * out_c];
                for (co, &a) in row.iter().enumerate() {
                    out[n * out_c * plane + co * plane + p] = a as f32 * rescale + bias[co];
                }
            }
        }
        Tensor::from_vec(out, &out_shape).expect("output sized to NCHW shape")
    }
}

/// Int8 counterpart of [`crate::ResidualBlock`]: the three convolutions run
/// int8, the batch norms and ReLUs stay `f32`.
#[derive(Debug, Clone)]
pub struct QResidualBlock {
    conv1: QConv2d,
    bn1: BatchNorm2d,
    conv2: QConv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(QConv2d, BatchNorm2d)>,
}

impl QResidualBlock {
    /// Assembles the quantized block from a block's parts (called by
    /// [`crate::ResidualBlock`]'s `quantize_layer`).
    #[allow(clippy::similar_names)]
    pub(crate) fn from_parts(
        conv1: &Conv2d,
        bn1: &BatchNorm2d,
        conv2: &Conv2d,
        bn2: &BatchNorm2d,
        shortcut: Option<(&Conv2d, &BatchNorm2d)>,
    ) -> Self {
        Self {
            conv1: QConv2d::from_conv(conv1),
            bn1: bn1.clone(),
            conv2: QConv2d::from_conv(conv2),
            bn2: bn2.clone(),
            shortcut: shortcut.map(|(conv, bn)| (QConv2d::from_conv(conv), bn.clone())),
        }
    }

    /// Runs the block with int8 convolutions (inference only).
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let main = self.conv1.forward(input);
        let main = self.bn1.forward(&main, Mode::Eval);
        let main = main.map(|x| x.max(0.0));
        let main = self.conv2.forward(&main);
        let main = self.bn2.forward(&main, Mode::Eval);

        let skip = match &self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input);
                bn.forward(&s, Mode::Eval)
            }
            None => input.clone(),
        };
        main.add(&skip).map(|x| x.max(0.0))
    }
}

/// One stage of a quantized pipeline: an int8 layer where one exists, the
/// original `f32` layer otherwise.
#[derive(Debug, Clone)]
pub enum QLayer {
    /// An int8 fully-connected layer.
    Linear(QLinear),
    /// An int8 convolution.
    Conv(QConv2d),
    /// A residual block with int8 convolutions (boxed: it is by far
    /// the largest variant).
    Residual(Box<QResidualBlock>),
    /// A nested quantized pipeline.
    Sequential(QSequential),
    /// A layer with no int8 counterpart, evaluated in `f32` (inference mode).
    Fallback(Box<dyn Layer>),
}

impl QLayer {
    /// Runs the layer on `input` (inference only).
    pub fn forward(&self, input: &Tensor) -> Tensor {
        match self {
            QLayer::Linear(l) => l.forward(input),
            QLayer::Conv(l) => l.forward(input),
            QLayer::Residual(l) => l.forward(input),
            QLayer::Sequential(l) => l.forward(input),
            QLayer::Fallback(l) => l.forward(input, Mode::Eval),
        }
    }

    /// Short human-readable name mirroring [`Layer::name`].
    pub fn name(&self) -> &'static str {
        match self {
            QLayer::Linear(_) => "q_linear",
            QLayer::Conv(_) => "q_conv2d",
            QLayer::Residual(_) => "q_residual_block",
            QLayer::Sequential(_) => "q_sequential",
            QLayer::Fallback(l) => l.name(),
        }
    }
}

/// The int8 counterpart of [`Sequential`]: every contained layer replaced by
/// its [`Layer::quantize_layer`] result.
///
/// Inference-only and immutable: `forward` takes `&self`, so a quantized
/// pipeline can be shared behind an `Arc` and serve concurrent batches under
/// the same contract as the `f32` [`crate::Layer::forward`] path.
#[derive(Debug, Clone)]
pub struct QSequential {
    layers: Vec<QLayer>,
}

impl QSequential {
    /// Quantizes every layer of a pipeline (weights are quantized once,
    /// here; activations are quantized per batch at inference time).
    pub fn from_sequential(net: &Sequential) -> Self {
        Self {
            layers: net.layers().iter().map(|l| l.quantize_layer()).collect(),
        }
    }

    /// The contained stages.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Number of stages that actually run int8 arithmetic (recursing into
    /// nested pipelines and residual blocks).
    pub fn quantized_layer_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Linear(_) | QLayer::Conv(_) => 1,
                QLayer::Residual(r) => 2 + usize::from(r.shortcut.is_some()),
                QLayer::Sequential(s) => s.quantized_layer_count(),
                QLayer::Fallback(_) => 0,
            })
            .sum()
    }

    /// Runs the pipeline on `input` (inference only).
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_body, ResNetConfig};
    use crate::{Relu, ResidualBlock};
    use ensembler_tensor::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn qlinear_tracks_the_f32_forward() {
        let mut rng = Rng::seed_from(3);
        let fc = Linear::new(32, 16, &mut rng);
        let x = Tensor::from_fn(&[4, 32], |_| rng.uniform(-1.5, 1.5));
        let qfc = QLinear::from_linear(&fc);
        assert_eq!(qfc.in_features(), 32);
        assert_eq!(qfc.out_features(), 16);
        assert_close(&qfc.forward(&x), &fc.forward(&x, Mode::Eval), 0.05);
    }

    #[test]
    fn qconv_tracks_the_f32_forward() {
        let mut rng = Rng::seed_from(4);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |_| rng.uniform(-1.0, 1.0));
        let qconv = QConv2d::from_conv(&conv);
        assert_eq!(qconv.output_shape(&[2, 3, 8, 8]), vec![2, 8, 8, 8]);
        assert_close(&qconv.forward(&x), &conv.forward(&x, Mode::Eval), 0.08);
    }

    #[test]
    fn strided_qconv_matches_shapes_and_values() {
        let mut rng = Rng::seed_from(5);
        let conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let x = Tensor::from_fn(&[1, 2, 8, 8], |_| rng.uniform(-1.0, 1.0));
        let qconv = QConv2d::from_conv(&conv);
        assert_close(&qconv.forward(&x), &conv.forward(&x, Mode::Eval), 0.08);
    }

    #[test]
    fn quantized_outputs_are_independent_of_batch_composition() {
        // The coalescing guarantee: a sample's int8 result must not depend on
        // its batch mates, even though activation scales are data-dependent.
        let mut rng = Rng::seed_from(6);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let qconv = QConv2d::from_conv(&conv);
        let small = Tensor::from_fn(&[1, 2, 6, 6], |_| rng.uniform(-0.1, 0.1));
        let huge = Tensor::from_fn(&[1, 2, 6, 6], |_| rng.uniform(-50.0, 50.0));
        let alone = qconv.forward(&small);
        let together = qconv.forward(&Tensor::stack_batch(&[small, huge]));
        assert_eq!(alone.data(), &together.data()[..alone.len()]);
    }

    #[test]
    fn qresidual_block_tracks_the_f32_block() {
        let mut rng = Rng::seed_from(7);
        let block = ResidualBlock::new(4, 8, 2, &mut rng);
        let x = Tensor::from_fn(&[2, 4, 8, 8], |_| rng.uniform(-1.0, 1.0));
        let qblock = match block.quantize_layer() {
            QLayer::Residual(q) => q,
            other => panic!("expected a quantized residual block, got {}", other.name()),
        };
        assert_close(&qblock.forward(&x), &block.forward(&x, Mode::Eval), 0.15);
    }

    #[test]
    fn qsequential_quantizes_gemm_layers_and_falls_back_elsewhere() {
        let mut rng = Rng::seed_from(8);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(crate::Flatten::new()),
            Box::new(Linear::new(4 * 36, 5, &mut rng)),
        ]);
        let qnet = QSequential::from_sequential(&net);
        assert_eq!(qnet.layers().len(), 4);
        assert_eq!(qnet.quantized_layer_count(), 2);
        assert!(matches!(qnet.layers()[0], QLayer::Conv(_)));
        assert!(matches!(qnet.layers()[1], QLayer::Fallback(_)));
        let x = Tensor::from_fn(&[3, 2, 6, 6], |_| rng.uniform(-1.0, 1.0));
        assert_close(&qnet.forward(&x), &net.forward(&x, Mode::Eval), 0.15);
    }

    #[test]
    fn a_quantized_body_tracks_the_f32_body() {
        let config = ResNetConfig::cifar10_like();
        let mut rng = Rng::seed_from(9);
        let body = build_body(&config, &mut rng);
        let qbody = QSequential::from_sequential(&body);
        assert!(qbody.quantized_layer_count() >= 4);
        let head = config.head_output_shape();
        let x = Tensor::from_fn(&[2, head[0], head[1], head[2]], |_| rng.uniform(-1.0, 1.0));
        assert_close(&qbody.forward(&x), &body.forward(&x, Mode::Eval), 0.25);
    }
}
