//! Element-wise activation layers.

use crate::{Layer, Mode};
use ensembler_tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Layer, Mode, Relu};
/// use ensembler_tensor::Tensor;
///
/// let relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?;
/// assert_eq!(relu.forward(&x, Mode::Eval).data(), &[0.0, 2.0]);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self { mask: None }
    }

    fn mask_of(input: &Tensor) -> Tensor {
        input.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
    }
}

impl Layer for Relu {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.mul(&Self::mask_of(input))
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mask = Self::mask_of(input);
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on Relu");
        grad_output.mul(mask)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Relu
    }
}

/// Leaky rectified linear unit: `x` for positive inputs, `alpha * x` otherwise.
///
/// Used by the model-inversion decoder, where a hard zero gradient would stall
/// reconstruction training.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-slope `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha >= 0.0, "negative slope must be non-negative");
        Self { alpha, mask: None }
    }

    /// Returns the negative slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    fn mask_of(&self, input: &Tensor) -> Tensor {
        let alpha = self.alpha;
        input.map(|x| if x > 0.0 { 1.0 } else { alpha })
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.mul(&self.mask_of(input))
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let mask = self.mask_of(input);
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward called before forward on LeakyRelu");
        grad_output.mul(mask)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Logistic sigmoid activation: `1 / (1 + exp(-x))`.
///
/// The model-inversion decoder ends with a sigmoid so reconstructions land in
/// the `[0, 1]` image range.
#[derive(Debug, Default, Clone)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Layer for Sigmoid {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = self.forward(input, mode);
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self
            .output
            .as_ref()
            .expect("backward called before forward on Sigmoid");
        grad_output.zip_map(y, |g, y| g * y * (1.0 - y))
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default, Clone)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.map(f32::tanh)
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let out = self.forward(input, mode);
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self
            .output
            .as_ref()
            .expect("backward called before forward on Tanh");
        grad_output.zip_map(y, |g, y| g * (1.0 - y * y))
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_input_grad;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 1.5], &[1, 4]).unwrap();
        let y = relu.forward_cached(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 1.5]);
        // The pure forward computes the same output without caching.
        assert_eq!(relu.forward(&x, Mode::Train), y);
        let g = relu.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_gradient() {
        let mut layer = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap();
        let y = layer.forward_cached(&x, Mode::Train);
        assert!((y.data()[0] + 0.1).abs() < 1e-6);
        let g = layer.backward(&Tensor::ones(&[1, 2]));
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(layer.alpha(), 0.1);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut layer = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[1, 3]).unwrap();
        let y = layer.forward_cached(&x, Mode::Eval);
        assert!(y.data()[0] < 0.01);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.99);
        let g = layer.backward(&Tensor::ones(&[1, 3]));
        // Gradient peaks at x = 0 (0.25) and vanishes at the extremes.
        assert!(g.data()[1] > g.data()[0]);
        assert!(g.data()[1] > g.data()[2]);
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let layer = Tanh::new();
        let x = Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[1, 3]).unwrap();
        let y = layer.forward(&x, Mode::Eval);
        assert!((y.data()[0] + y.data()[2]).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut relu = Relu::new();
        let _ = relu.backward(&Tensor::ones(&[1]));
    }

    #[test]
    fn activation_input_gradients_match_finite_differences() {
        // ReLU/LeakyReLU are not differentiable at 0; keep inputs away from it.
        check_layer_input_grad(&mut LeakyRelu::new(0.2), &[2, 5], 0.3, 1e-2);
        check_layer_input_grad(&mut Sigmoid::new(), &[2, 5], 0.0, 1e-2);
        check_layer_input_grad(&mut Tanh::new(), &[2, 5], 0.0, 1e-2);
    }

    #[test]
    #[should_panic(expected = "negative slope")]
    fn leaky_relu_rejects_negative_alpha() {
        let _ = LeakyRelu::new(-0.5);
    }
}
