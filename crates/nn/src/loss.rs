//! Loss functions: cross-entropy, mean-squared error and the cosine-similarity
//! regularizer of the Ensembler stage-3 objective.

use ensembler_tensor::Tensor;

/// The value of a loss together with the gradient with respect to the
/// predictions, ready to be fed into a backward pass.
#[derive(Debug, Clone)]
pub struct LossValue {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the predictions.
    pub grad: Tensor,
}

/// Row-wise softmax of a `[batch, classes]` logit matrix.
///
/// Degenerate rows are handled explicitly instead of producing NaNs:
/// a row that is entirely `-inf` (e.g. a fully masked attention row or a
/// saturated scaled output) yields the uniform distribution, and a row
/// containing `+inf` puts all mass uniformly on its `+inf` entries (one-hot
/// when there is a single one). Finite rows use the usual max-shifted
/// exponentials and are unaffected.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
///
/// # Examples
///
/// ```
/// use ensembler_nn::softmax;
/// use ensembler_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2])?;
/// let p = softmax(&logits);
/// assert!((p.at2(0, 0) - 0.5).abs() < 1e-6);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax expects [batch, classes] logits");
    let (rows, cols) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            // Every logit is -inf: (x - max) would be NaN. No class is
            // preferred, so fall back to the uniform distribution.
            let p = 1.0 / cols as f32;
            out.data_mut()[r * cols..(r + 1) * cols].fill(p);
        } else if max == f32::INFINITY {
            // A +inf logit dominates every finite one: split the mass
            // uniformly over the +inf entries (one-hot for a single spike)
            // instead of computing inf/inf = NaN.
            let spikes = row.iter().filter(|&&x| x == f32::INFINITY).count();
            let p = 1.0 / spikes as f32;
            for (c, &x) in row.iter().enumerate() {
                out.data_mut()[r * cols + c] = if x == f32::INFINITY { p } else { 0.0 };
            }
        } else {
            let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (c, &e) in exps.iter().enumerate() {
                out.data_mut()[r * cols + c] = e / sum;
            }
        }
    }
    out
}

/// Softmax cross-entropy loss for classification.
///
/// # Examples
///
/// ```
/// use ensembler_nn::CrossEntropyLoss;
/// use ensembler_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0], &[2, 2])?;
/// let out = CrossEntropyLoss::new().compute(&logits, &[0, 1]);
/// assert!(out.loss < 0.01);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates a cross-entropy loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean cross-entropy and its gradient with respect to the
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[batch, classes]`, `targets.len() != batch`
    /// or any target index is out of range.
    pub fn compute(&self, logits: &Tensor, targets: &[usize]) -> LossValue {
        assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(targets.len(), batch, "one target per sample required");
        assert!(
            targets.iter().all(|&t| t < classes),
            "target class out of range"
        );
        let probs = softmax(logits);
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        for (n, &t) in targets.iter().enumerate() {
            let p = probs.at2(n, t).max(1e-12);
            loss -= p.ln();
            grad.data_mut()[n * classes + t] -= 1.0;
        }
        let scale = 1.0 / batch as f32;
        LossValue {
            loss: loss * scale,
            grad: grad.scale(scale),
        }
    }
}

/// Mean-squared-error loss, used to train the model-inversion decoder.
///
/// # Examples
///
/// ```
/// use ensembler_nn::MseLoss;
/// use ensembler_tensor::Tensor;
///
/// let pred = Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?;
/// let target = Tensor::from_vec(vec![0.0, 2.0], &[1, 2])?;
/// let out = MseLoss::new().compute(&pred, &target);
/// assert!((out.loss - 0.5).abs() < 1e-6);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct MseLoss;

impl MseLoss {
    /// Creates a mean-squared-error loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean squared error and its gradient with respect to
    /// `prediction`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn compute(&self, prediction: &Tensor, target: &Tensor) -> LossValue {
        assert_eq!(
            prediction.shape(),
            target.shape(),
            "prediction and target shapes must match"
        );
        let n = prediction.len().max(1) as f32;
        let diff = prediction.sub(target);
        let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
        LossValue {
            loss,
            grad: diff.scale(2.0 / n),
        }
    }
}

/// Result of the cosine-similarity penalty used by stage-3 training (Eq. 3).
#[derive(Debug, Clone)]
pub struct CosinePenalty {
    /// Mean (over the batch) of the maximal cosine similarity against the
    /// reference feature maps.
    pub penalty: f32,
    /// Gradient of the penalty with respect to the current features.
    pub grad: Tensor,
}

/// Computes `lambda * mean_batch( max_i CS(features, references[i]) )` and its
/// gradient with respect to `features`.
///
/// `features` are the current client-head activations `M_c,h(x)`; each entry
/// of `references` holds the activations produced by one of the stage-1 heads
/// `M^i_c,h(x)` on the same batch. Only the reference achieving the per-sample
/// maximum contributes gradient for that sample, mirroring the `max` in Eq. 3
/// of the paper.
///
/// # Panics
///
/// Panics if `references` is empty or any reference shape differs from
/// `features`.
///
/// # Examples
///
/// ```
/// use ensembler_nn::cosine_penalty;
/// use ensembler_tensor::Tensor;
///
/// let f = Tensor::from_vec(vec![1.0, 0.0], &[1, 2])?;
/// let r = Tensor::from_vec(vec![1.0, 0.0], &[1, 2])?;
/// let out = cosine_penalty(&f, &[r], 1.0);
/// assert!((out.penalty - 1.0).abs() < 1e-6);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
pub fn cosine_penalty(features: &Tensor, references: &[Tensor], lambda: f32) -> CosinePenalty {
    assert!(!references.is_empty(), "at least one reference is required");
    for r in references {
        assert_eq!(
            r.shape(),
            features.shape(),
            "reference shape must match features"
        );
    }
    let batch = features.shape()[0];
    let feat_len = features.len().checked_div(batch).unwrap_or(0);

    let mut grad = Tensor::zeros(features.shape());
    let mut penalty = 0.0f32;

    for n in 0..batch {
        let a = &features.data()[n * feat_len..(n + 1) * feat_len];
        // Find the reference with the highest cosine similarity for sample n.
        let mut best = f32::NEG_INFINITY;
        let mut best_ref: Option<&Tensor> = None;
        for r in references {
            let b = &r.data()[n * feat_len..(n + 1) * feat_len];
            let cs = cosine(a, b);
            if cs > best {
                best = cs;
                best_ref = Some(r);
            }
        }
        penalty += best;
        let r = best_ref.expect("references is non-empty");
        let b = &r.data()[n * feat_len..(n + 1) * feat_len];

        // d/da [ a.b / (|a||b|) ] = b/(|a||b|) - (a.b) a / (|a|^3 |b|)
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na > 1e-12 && nb > 1e-12 {
            let inv = 1.0 / (na * nb);
            let coeff = dot / (na * na * na * nb);
            let g = &mut grad.data_mut()[n * feat_len..(n + 1) * feat_len];
            for i in 0..feat_len {
                g[i] = lambda * (b[i] * inv - coeff * a[i]) / batch as f32;
            }
        }
    }
    CosinePenalty {
        penalty: lambda * penalty / batch.max(1) as f32,
        grad,
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na > 1e-12 && nb > 1e-12 {
        dot / (na * nb)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_tensor::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(0);
        let logits = Tensor::from_fn(&[5, 7], |_| rng.uniform(-4.0, 4.0));
        let p = softmax(&logits);
        for r in 0..5 {
            let sum: f32 = (0..7).map(|c| p.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for c in 0..7 {
                assert!(p.at2(r, c) >= 0.0);
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.add_scalar(100.0);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_of_an_all_negative_infinity_row_is_uniform() {
        let logits = Tensor::from_vec(
            vec![
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
            ],
            &[1, 4],
        )
        .unwrap();
        let p = softmax(&logits);
        assert_eq!(p.data(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn softmax_of_a_positive_infinity_spike_is_one_hot() {
        let logits = Tensor::from_vec(vec![0.0, f32::INFINITY, -3.0, 7.0], &[1, 4]).unwrap();
        let p = softmax(&logits);
        assert_eq!(p.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_splits_mass_over_tied_positive_infinities() {
        let logits = Tensor::from_vec(
            vec![f32::INFINITY, 1.0, f32::INFINITY, f32::NEG_INFINITY],
            &[1, 4],
        )
        .unwrap();
        let p = softmax(&logits);
        assert_eq!(p.data(), &[0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn softmax_degenerate_rows_do_not_contaminate_finite_rows() {
        let logits = Tensor::from_vec(
            vec![
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                1.0,
                2.0,
                f32::INFINITY,
                0.5,
            ],
            &[3, 2],
        )
        .unwrap();
        let p = softmax(&logits);
        let finite = softmax(&Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        assert_eq!(p.data()[..2], [0.5, 0.5]);
        // The finite middle row is bit-identical to a standalone softmax.
        assert_eq!(p.data()[2..4], finite.data()[..2]);
        assert_eq!(p.data()[4..6], [1.0, 0.0]);
        assert!(p.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_survives_fully_masked_logit_rows() {
        let mut logits = Tensor::zeros(&[2, 4]);
        for c in 0..4 {
            logits.data_mut()[c] = f32::NEG_INFINITY;
        }
        let out = CrossEntropyLoss::new().compute(&logits, &[1, 2]);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = CrossEntropyLoss::new().compute(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::from_fn(&[3, 4], |_| rng.uniform(-2.0, 2.0));
        let targets = [1usize, 0, 3];
        let loss = CrossEntropyLoss::new();
        let out = loss.compute(&logits, &targets);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss.compute(&plus, &targets).loss
                - loss.compute(&minus, &targets).loss)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad.data()[idx]).abs() < 1e-3,
                "index {idx}: numeric {numeric} vs analytic {}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::from_fn(&[2, 5], |_| rng.uniform(-1.0, 1.0));
        let out = CrossEntropyLoss::new().compute(&logits, &[4, 2]);
        for r in 0..2 {
            let s: f32 = (0..5).map(|c| out.grad.at2(r, c)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn cross_entropy_rejects_bad_targets() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = CrossEntropyLoss::new().compute(&logits, &[3]);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 0.0, 3.0, 0.0], &[2, 2]).unwrap();
        let out = MseLoss::new().compute(&pred, &target);
        assert!((out.loss - (4.0 + 16.0) / 4.0).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn cosine_penalty_is_one_for_identical_features() {
        let f = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0], &[2, 2]).unwrap();
        let out = cosine_penalty(&f, std::slice::from_ref(&f), 2.0);
        assert!((out.penalty - 2.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_penalty_picks_the_maximal_reference() {
        let f = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]).unwrap();
        let aligned = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]).unwrap();
        let orthogonal = Tensor::from_vec(vec![0.0, 5.0], &[1, 2]).unwrap();
        let out = cosine_penalty(&f, &[orthogonal, aligned], 1.0);
        assert!((out.penalty - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_penalty_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(3);
        let f = Tensor::from_fn(&[2, 6], |_| rng.uniform(-1.0, 1.0));
        let refs = vec![
            Tensor::from_fn(&[2, 6], |_| rng.uniform(-1.0, 1.0)),
            Tensor::from_fn(&[2, 6], |_| rng.uniform(-1.0, 1.0)),
        ];
        let lambda = 0.7;
        let out = cosine_penalty(&f, &refs, lambda);
        let eps = 1e-3;
        for idx in 0..f.len() {
            let mut plus = f.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = f.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (cosine_penalty(&plus, &refs, lambda).penalty
                - cosine_penalty(&minus, &refs, lambda).penalty)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad.data()[idx]).abs() < 2e-3,
                "index {idx}: numeric {numeric} vs analytic {}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn cosine_penalty_of_zero_vector_is_zero_without_nan() {
        let f = Tensor::zeros(&[1, 4]);
        let r = Tensor::ones(&[1, 4]);
        let out = cosine_penalty(&f, &[r], 1.0);
        assert_eq!(out.penalty, 0.0);
        assert!(out.grad.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn cosine_penalty_requires_references() {
        let f = Tensor::ones(&[1, 4]);
        let _ = cosine_penalty(&f, &[], 1.0);
    }
}
