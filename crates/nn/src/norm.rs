//! Batch normalization over NCHW feature maps.

use crate::{Layer, Mode, Param};
use ensembler_tensor::Tensor;

/// Batch normalization for convolutional feature maps (`[B, C, H, W]`).
///
/// In [`Mode::Train`] the layer normalizes with the statistics of the current
/// batch; in [`Mode::Eval`] the running statistics are used. The learnable
/// per-channel scale (`gamma`) and shift (`beta`) follow the usual
/// convention.
///
/// Only [`Layer::forward_cached`] (the training path) updates the exponential
/// running statistics — the pure [`Layer::forward`] never mutates the layer,
/// which is what makes shared-pipeline inference thread-safe.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{BatchNorm2d, Layer, Mode};
/// use ensembler_tensor::Tensor;
///
/// let mut bn = BatchNorm2d::new(4);
/// let x = Tensor::ones(&[2, 4, 3, 3]);
/// let y = bn.forward_cached(&x, Mode::Train);
/// assert_eq!(y.shape(), &[2, 4, 3, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
    /// Whether the forward pass used batch statistics (training) or the
    /// frozen running statistics (evaluation). The backward formula differs:
    /// in evaluation mode the normalization statistics are constants.
    used_batch_stats: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be positive");
        Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Returns the running mean tracked across training batches.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Returns the running variance tracked across training batches.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// The numerical-stability epsilon added to the variance before the
    /// square root. Conv+bn folding needs it to reproduce the exact
    /// normalization constant.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Immutable view of the per-channel scale (`gamma`) parameter.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Immutable view of the per-channel shift (`beta`) parameter.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Mutable access to the running mean (tests and weight surgery).
    pub fn running_mean_mut(&mut self) -> &mut Tensor {
        &mut self.running_mean
    }

    /// Mutable access to the running variance (tests and weight surgery).
    pub fn running_var_mut(&mut self) -> &mut Tensor {
        &mut self.running_var
    }

    /// Mutable view of the per-channel scale (`gamma`) parameter.
    pub fn gamma_mut(&mut self) -> &mut Param {
        &mut self.gamma
    }

    /// Mutable view of the per-channel shift (`beta`) parameter.
    pub fn beta_mut(&mut self) -> &mut Param {
        &mut self.beta
    }

    fn per_channel_stats(&self, input: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let plane = h * w;
        let count = (b * plane) as f32;
        let mut means = vec![0.0f32; c];
        let mut vars = vec![0.0f32; c];
        for (ch, mean) in means.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for n in 0..b {
                let base = n * c * plane + ch * plane;
                sum += input.data()[base..base + plane].iter().sum::<f32>();
            }
            *mean = sum / count;
        }
        for ch in 0..c {
            let mut sq = 0.0f32;
            for n in 0..b {
                let base = n * c * plane + ch * plane;
                for &v in &input.data()[base..base + plane] {
                    let d = v - means[ch];
                    sq += d * d;
                }
            }
            vars[ch] = sq / count;
        }
        (means, vars)
    }

    /// Per-channel statistics to normalize with under `mode`.
    fn stats_for(&self, input: &Tensor, mode: Mode) -> (Vec<f32>, Vec<f32>) {
        if mode.is_train() {
            self.per_channel_stats(input)
        } else {
            (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            )
        }
    }

    /// Shared normalization with the given statistics: returns the output
    /// together with the cache a backward pass would need.
    fn normalize(
        &self,
        input: &Tensor,
        means: &[f32],
        vars: &[f32],
        used_batch_stats: bool,
    ) -> (Tensor, BnCache) {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.channels,
            "BatchNorm2d expected {} channels, got {}",
            self.channels,
            input.shape()[1]
        );
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let plane = h * w;

        let inv_std: Vec<f32> = vars.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        for n in 0..b {
            for ch in 0..c {
                let base = n * c * plane + ch * plane;
                let g = self.gamma.value.data()[ch];
                let beta = self.beta.value.data()[ch];
                for p in 0..plane {
                    let xh = (input.data()[base + p] - means[ch]) * inv_std[ch];
                    x_hat.data_mut()[base + p] = xh;
                    out.data_mut()[base + p] = g * xh + beta;
                }
            }
        }
        let cache = BnCache {
            x_hat,
            inv_std,
            input_shape: input.shape().to_vec(),
            used_batch_stats,
        };
        (out, cache)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        let (means, vars) = self.stats_for(input, mode);
        self.normalize(input, &means, &vars, mode.is_train()).0
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let (means, vars) = self.stats_for(input, mode);
        if mode.is_train() {
            for ch in 0..self.channels {
                self.running_mean.data_mut()[ch] = (1.0 - self.momentum)
                    * self.running_mean.data()[ch]
                    + self.momentum * means[ch];
                self.running_var.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_var.data()[ch] + self.momentum * vars[ch];
            }
        }
        let (out, cache) = self.normalize(input, &means, &vars, mode.is_train());
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before forward on BatchNorm2d");
        assert_eq!(
            grad_output.shape(),
            &cache.input_shape[..],
            "grad_output shape mismatch in BatchNorm2d"
        );
        let [b, c, h, w] = [
            cache.input_shape[0],
            cache.input_shape[1],
            cache.input_shape[2],
            cache.input_shape[3],
        ];
        let plane = h * w;
        let count = (b * plane) as f32;

        let mut grad_input = Tensor::zeros(grad_output.shape());
        for ch in 0..c {
            // Per-channel reductions of dY and dY*x_hat.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for n in 0..b {
                let base = n * c * plane + ch * plane;
                for p in 0..plane {
                    let dy = grad_output.data()[base + p];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[base + p];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;
            self.beta.grad.data_mut()[ch] += sum_dy;

            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            for n in 0..b {
                let base = n * c * plane + ch * plane;
                for p in 0..plane {
                    let dy = grad_output.data()[base + p];
                    let xh = cache.x_hat.data()[base + p];
                    grad_input.data_mut()[base + p] = if cache.used_batch_stats {
                        // Standard batch-norm backward (training statistics
                        // depend on the input).
                        g * inv_std * (dy - sum_dy / count - xh * sum_dy_xhat / count)
                    } else {
                        // Evaluation mode: the running statistics are constants.
                        g * inv_std * dy
                    };
                }
            }
        }
        grad_input
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "batch_norm2d"
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::BatchNorm(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_input_grad;
    use ensembler_tensor::Rng;

    #[test]
    fn train_mode_normalizes_batch_statistics() {
        let bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(0);
        let x = Tensor::from_fn(&[4, 2, 3, 3], |_| rng.normal_with(5.0, 2.0));
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ~ 0 and variance ~ 1 after normalization.
        let stats = y.sum_per_channel();
        for ch in 0..2 {
            assert!(stats.data()[ch].abs() / (4.0 * 9.0) < 1e-4);
        }
        let var: f32 = y.data().iter().map(|v| v * v).sum::<f32>() / y.len() as f32;
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert_eq!(bn.channels(), 2);
    }

    #[test]
    fn running_statistics_move_toward_batch_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        for _ in 0..200 {
            let _ = bn.forward_cached(&x, Mode::Train);
        }
        assert!((bn.running_mean().data()[0] - 10.0).abs() < 0.2);
        assert!(bn.running_var().data()[0] < 0.2);
        // Eval mode now maps the constant input close to zero.
        let y = bn.forward(&x, Mode::Eval);
        assert!(y.data().iter().all(|v| v.abs() < 0.5));
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let bn = BatchNorm2d::new(3);
        let x = Tensor::from_fn(&[1, 3, 2, 2], |i| i as f32);
        let a = bn.forward(&x, Mode::Eval);
        let b = bn.forward(&x, Mode::Eval);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_forward_never_touches_running_statistics() {
        let bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(9);
        let x = Tensor::from_fn(&[4, 2, 3, 3], |_| rng.normal_with(3.0, 1.5));
        let before = (bn.running_mean().clone(), bn.running_var().clone());
        let _ = bn.forward(&x, Mode::Train);
        let _ = bn.forward(&x, Mode::Eval);
        assert_eq!(bn.running_mean(), &before.0);
        assert_eq!(bn.running_var(), &before.1);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.params_mut()[0].value.fill(2.0); // gamma
        bn.params_mut()[1].value.fill(1.0); // beta
        let mut rng = Rng::seed_from(1);
        let x = Tensor::from_fn(&[2, 1, 2, 2], |_| rng.normal());
        let y = bn.forward_cached(&x, Mode::Train);
        let mean = y.mean();
        assert!(
            (mean - 1.0).abs() < 1e-4,
            "beta should shift mean to 1, got {mean}"
        );
    }

    #[test]
    fn train_gradients_match_finite_differences() {
        // Gradient check in Eval mode (running stats constant) for the affine
        // part, and a coarse Train-mode check for the full normalization.
        let mut bn = BatchNorm2d::new(2);
        check_layer_input_grad(&mut bn, &[2, 2, 3, 3], 0.0, 3e-2);
    }

    #[test]
    fn train_mode_input_gradient_sums_to_zero_per_channel() {
        // Because the output is invariant to adding a constant per channel in
        // train mode, the input gradient must sum to ~0 per channel.
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(2);
        let x = Tensor::from_fn(&[3, 2, 4, 4], |_| rng.normal());
        let _ = bn.forward_cached(&x, Mode::Train);
        let g = Tensor::from_fn(&[3, 2, 4, 4], |_| rng.normal());
        let gi = bn.backward(&g);
        let sums = gi.sum_per_channel();
        for v in sums.data() {
            assert!(v.abs() < 1e-3, "per-channel gradient sum {v} should vanish");
        }
    }

    #[test]
    #[should_panic(expected = "expected 2 channels")]
    fn channel_mismatch_panics() {
        let bn = BatchNorm2d::new(2);
        let _ = bn.forward(&Tensor::ones(&[1, 3, 2, 2]), Mode::Train);
    }
}
