//! The [`Layer`] trait, training mode flag and trainable [`Param`] container.

use ensembler_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Whether a forward pass should behave as training or evaluation.
///
/// Layers such as [`crate::Dropout`] and [`crate::BatchNorm2d`] change
/// behaviour between the two modes; all other layers ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Training: dropout active, batch statistics used and updated.
    Train,
    /// Inference: deterministic behaviour, running statistics used.
    Eval,
}

impl Mode {
    /// Returns `true` for [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// # Examples
///
/// ```
/// use ensembler_nn::Param;
/// use ensembler_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad.sum(), 0.0);
/// p.grad.fill(1.0);
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable computation stage with explicit forward and backward
/// passes.
///
/// Layers own whatever activations they need to cache between `forward` and
/// `backward`; callers must therefore invoke `backward` with the gradient of
/// the *most recent* forward call. Parameter gradients are **accumulated**
/// into [`Param::grad`]; call [`Layer::zero_grad`] (or an optimizer that does
/// it) between steps.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output for `input`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_output` (gradient of the loss with respect to this
    /// layer's output) back to the input, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the cached forward output.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable access to the trainable parameters (empty by default).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters (empty by default).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Clears the accumulated gradients of every parameter.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Short human-readable layer name used in summaries.
    fn name(&self) -> &'static str;

    /// Total number of trainable scalars in the layer.
    fn parameter_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// Boxed layers can be used wherever a layer is expected, which is what
/// [`crate::Sequential`] relies on.
impl Layer for Box<dyn Layer> {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.as_mut().forward(input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.as_mut().backward(grad_output)
    }

    fn params(&self) -> Vec<&Param> {
        self.as_ref().params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.as_mut().params_mut()
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn param_construction_and_zeroing() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.grad.shape(), &[2]);
        p.grad.fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn boxed_layer_delegates() {
        let boxed: Box<dyn Layer> = Box::new(crate::Relu::new());
        assert_eq!(boxed.name(), "relu");
        assert_eq!(boxed.parameter_count(), 0);
    }
}
