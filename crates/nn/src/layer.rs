//! The [`Layer`] trait, training mode flag and trainable [`Param`] container.

use ensembler_tensor::Tensor;

/// Whether a forward pass should behave as training or evaluation.
///
/// Layers such as [`crate::Dropout`] and [`crate::BatchNorm2d`] change
/// behaviour between the two modes; all other layers ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: dropout active, batch statistics used and updated.
    Train,
    /// Inference: deterministic behaviour, running statistics used.
    Eval,
}

impl Mode {
    /// Returns `true` for [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// # Examples
///
/// ```
/// use ensembler_nn::Param;
/// use ensembler_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad.sum(), 0.0);
/// p.grad.fill(1.0);
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable computation stage with explicit forward and backward
/// passes.
///
/// The trait distinguishes two forward entry points:
///
/// * [`Layer::forward`] is **pure**: it takes `&self`, never mutates layer
///   state and is safe to call from many threads at once. This is the path
///   every inference API in the workspace uses — it is what lets a whole
///   pipeline be shared behind an `Arc` and serve concurrent batches.
/// * [`Layer::forward_cached`] takes `&mut self` and additionally stores
///   whatever activations the subsequent [`Layer::backward`] call needs.
///   Training loops use this path; callers must invoke `backward` with the
///   gradient of the *most recent* cached forward call.
///
/// Both entry points compute identical outputs for identical inputs.
/// Parameter gradients are **accumulated** into [`Param::grad`]; call
/// [`Layer::zero_grad`] (or an optimizer that does it) between steps.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output for `input` without touching layer state.
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor;

    /// Computes the layer output for `input`, caching the activations that
    /// [`Layer::backward`] needs.
    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_output` (gradient of the loss with respect to this
    /// layer's output) back to the input, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward_cached` or with a
    /// gradient whose shape does not match the cached forward output.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Clones the layer behind a fresh box.
    ///
    /// This is what lets [`crate::Sequential`] (a vector of boxed layers) be
    /// `Clone`, which the attack crate relies on: under the paper's threat
    /// model the adversarial server *owns* the body weights, so it clones
    /// them out of a shared pipeline into its own mutable copies.
    fn clone_layer(&self) -> Box<dyn Layer>;

    /// Immutable access to the trainable parameters (empty by default).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters (empty by default).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Clears the accumulated gradients of every parameter.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Short human-readable layer name used in summaries.
    fn name(&self) -> &'static str;

    /// Total number of trainable scalars in the layer.
    fn parameter_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// The int8 inference counterpart of this layer.
    ///
    /// GEMM-backed layers ([`crate::Linear`], [`crate::Conv2d`], the
    /// containers that hold them) override this to quantize their weights
    /// once and run `i8×i8→i32` arithmetic at inference time; every other
    /// layer keeps its `f32` forward via the default
    /// [`crate::quant::QLayer::Fallback`].
    fn quantize_layer(&self) -> crate::quant::QLayer {
        crate::quant::QLayer::Fallback(self.clone_layer())
    }

    /// Lowers this layer to a node of the lazy compute-graph IR.
    ///
    /// Layers with a typed graph representation (convolutions, batch norm,
    /// ReLU, pooling, flatten, linear, the containers) override this so the
    /// [`crate::compiler`] can validate shapes and fuse across op
    /// boundaries; every other layer becomes a [`crate::graph::GraphOp::Opaque`]
    /// node whose plan stage runs the layer's own `forward` unchanged.
    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Opaque(self.clone_layer())
    }
}

/// Boxed layers can be used wherever a layer is expected, which is what
/// [`crate::Sequential`] relies on.
impl Layer for Box<dyn Layer> {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        self.as_ref().forward(input, mode)
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.as_mut().forward_cached(input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.as_mut().backward(grad_output)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        self.as_ref().clone_layer()
    }

    fn params(&self) -> Vec<&Param> {
        self.as_ref().params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.as_mut().params_mut()
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn quantize_layer(&self) -> crate::quant::QLayer {
        self.as_ref().quantize_layer()
    }

    fn lower(&self) -> crate::graph::GraphOp {
        self.as_ref().lower()
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.as_ref().clone_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn param_construction_and_zeroing() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.grad.shape(), &[2]);
        p.grad.fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn boxed_layer_delegates() {
        let boxed: Box<dyn Layer> = Box::new(crate::Relu::new());
        assert_eq!(boxed.name(), "relu");
        assert_eq!(boxed.parameter_count(), 0);
    }
}
