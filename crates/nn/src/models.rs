//! The MicroResNet model family: the reproduction's stand-in for ResNet-18.
//!
//! The Ensembler paper splits ResNet-18 at `h = 1, t = 1`: the client keeps the
//! first convolutional layer (plus, for CIFAR-10, the stem max-pool) and the
//! final fully-connected layer; everything in between runs on the server. This
//! module builds those three pieces separately so the `ensembler` crate can
//! assemble split-inference pipelines out of them.
//!
//! `MicroResNet` keeps the structure of the paper's backbone — a stem
//! convolution, a stack of residual stages, global average pooling and a
//! linear classifier — but scales channel counts and depths down so that the
//! whole three-stage Ensembler training pipeline runs on a CPU in seconds.
//! The full-width ResNet-18 configuration remains constructible via
//! [`ResNetConfig::paper_resnet18`] for users with more compute.

use crate::{Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu, ResidualBlock, Sequential};
use ensembler_tensor::Rng;

/// Configuration of a MicroResNet backbone and its h=1 / t=1 split.
///
/// # Examples
///
/// ```
/// use ensembler_nn::models::ResNetConfig;
///
/// let cfg = ResNetConfig::cifar10_like();
/// assert_eq!(cfg.num_classes, 10);
/// assert_eq!(cfg.head_output_shape(), vec![16, 8, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Number of image channels (3 for RGB).
    pub input_channels: usize,
    /// Square input image extent in pixels.
    pub image_size: usize,
    /// Channels produced by the stem convolution (the client head).
    pub stem_channels: usize,
    /// Output channels of each residual stage; the first block of every stage
    /// after the first downsamples by 2.
    pub stage_channels: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Whether the client head applies a 2x2 max-pool after the stem
    /// convolution (the paper keeps it for CIFAR-10 and removes it for
    /// CIFAR-100).
    pub use_stem_pool: bool,
}

impl ResNetConfig {
    /// Scaled-down configuration playing the role of ResNet-18 on CIFAR-10.
    pub fn cifar10_like() -> Self {
        Self {
            input_channels: 3,
            image_size: 16,
            stem_channels: 16,
            stage_channels: vec![16, 32],
            blocks_per_stage: 1,
            num_classes: 10,
            use_stem_pool: true,
        }
    }

    /// Scaled-down configuration playing the role of ResNet-18 on CIFAR-100
    /// (stem pool removed, more classes).
    pub fn cifar100_like() -> Self {
        Self {
            input_channels: 3,
            image_size: 16,
            stem_channels: 16,
            stage_channels: vec![16, 32],
            blocks_per_stage: 1,
            num_classes: 20,
            use_stem_pool: false,
        }
    }

    /// Scaled-down configuration playing the role of ResNet-18 on the
    /// CelebA-HQ attribute-classification subset (larger images, few classes).
    pub fn celeba_like() -> Self {
        Self {
            input_channels: 3,
            image_size: 32,
            stem_channels: 16,
            stage_channels: vec![16, 32],
            blocks_per_stage: 1,
            num_classes: 4,
            use_stem_pool: true,
        }
    }

    /// The full-width ResNet-18 shape used by the paper (64/128/256/512
    /// channels, two blocks per stage). Provided for completeness and for the
    /// latency model; far too slow to train inside the test suite.
    pub fn paper_resnet18(num_classes: usize, image_size: usize, use_stem_pool: bool) -> Self {
        Self {
            input_channels: 3,
            image_size,
            stem_channels: 64,
            stage_channels: vec![64, 128, 256, 512],
            blocks_per_stage: 2,
            num_classes,
            use_stem_pool,
        }
    }

    /// A deliberately tiny configuration for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            input_channels: 3,
            image_size: 8,
            stem_channels: 4,
            stage_channels: vec![4],
            blocks_per_stage: 1,
            num_classes: 3,
            use_stem_pool: false,
        }
    }

    /// Shape `[C, H, W]` of the intermediate features the client sends to the
    /// server (the output of the head).
    pub fn head_output_shape(&self) -> Vec<usize> {
        let spatial = if self.use_stem_pool {
            self.image_size / 2
        } else {
            self.image_size
        };
        vec![self.stem_channels, spatial, spatial]
    }

    /// Number of features produced by the server body (after global average
    /// pooling), i.e. the width of the classifier input for a single network.
    pub fn body_output_features(&self) -> usize {
        *self
            .stage_channels
            .last()
            .expect("at least one residual stage is required")
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if the configuration cannot be built
    /// (no stages, zero sizes, or a stem pool that does not divide the image).
    pub fn validate(&self) -> Result<(), String> {
        if self.input_channels == 0
            || self.image_size == 0
            || self.stem_channels == 0
            || self.num_classes == 0
            || self.blocks_per_stage == 0
        {
            return Err("all size fields must be positive".to_string());
        }
        if self.stage_channels.is_empty() {
            return Err("at least one residual stage is required".to_string());
        }
        if self.use_stem_pool && !self.image_size.is_multiple_of(2) {
            return Err("stem pooling requires an even image size".to_string());
        }
        let spatial_after_head = self.head_output_shape()[1];
        let downsamples = self.stage_channels.len().saturating_sub(1) as u32;
        if !spatial_after_head.is_multiple_of(1usize << downsamples) {
            return Err(format!(
                "spatial extent {spatial_after_head} not divisible by the {downsamples} stage downsamples"
            ));
        }
        Ok(())
    }
}

/// Builds the client head `M_c,h`: the stem convolution (plus optional
/// max-pool), exactly the layers the paper leaves on the edge device.
pub fn build_head(config: &ResNetConfig, rng: &mut Rng) -> Sequential {
    let mut head = Sequential::empty();
    head.push(Box::new(Conv2d::new(
        config.input_channels,
        config.stem_channels,
        3,
        1,
        1,
        rng,
    )));
    head.push(Box::new(Relu::new()));
    if config.use_stem_pool {
        head.push(Box::new(MaxPool2d::new(2)));
    }
    head
}

/// Builds one server body `M_s^i`: the residual stages followed by global
/// average pooling and flattening into `[batch, features]`.
pub fn build_body(config: &ResNetConfig, rng: &mut Rng) -> Sequential {
    let mut body = Sequential::empty();
    let mut in_channels = config.stem_channels;
    for (stage_idx, &out_channels) in config.stage_channels.iter().enumerate() {
        for block_idx in 0..config.blocks_per_stage {
            let stride = if stage_idx > 0 && block_idx == 0 {
                2
            } else {
                1
            };
            body.push(Box::new(ResidualBlock::new(
                in_channels,
                out_channels,
                stride,
                rng,
            )));
            in_channels = out_channels;
        }
    }
    body.push(Box::new(GlobalAvgPool::new()));
    body
}

/// Builds the client tail `M_c,t`: a single fully-connected classifier taking
/// `in_features` inputs (which is `P * body_output_features()` when the
/// Ensembler selector concatenates `P` server feature maps).
pub fn build_tail(config: &ResNetConfig, in_features: usize, rng: &mut Rng) -> Sequential {
    let mut tail = Sequential::empty();
    tail.push(Box::new(Flatten::new()));
    tail.push(Box::new(Linear::new(in_features, config.num_classes, rng)));
    tail
}

/// Builds the complete single-network pipeline (head, body, tail fused), used
/// by baselines and by tests that don't need the split.
pub fn build_full_network(config: &ResNetConfig, rng: &mut Rng) -> Sequential {
    let mut net = Sequential::empty();
    net.push(Box::new(build_head(config, rng)));
    net.push(Box::new(build_body(config, rng)));
    net.push(Box::new(build_tail(
        config,
        config.body_output_features(),
        rng,
    )));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Mode};
    use ensembler_tensor::Tensor;

    #[test]
    fn presets_validate() {
        for cfg in [
            ResNetConfig::cifar10_like(),
            ResNetConfig::cifar100_like(),
            ResNetConfig::celeba_like(),
            ResNetConfig::paper_resnet18(10, 32, true),
            ResNetConfig::tiny_for_tests(),
        ] {
            assert!(cfg.validate().is_ok(), "{cfg:?} should validate");
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = ResNetConfig::cifar10_like();
        cfg.stage_channels.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = ResNetConfig::cifar10_like();
        cfg.image_size = 15;
        assert!(cfg.validate().is_err());

        let mut cfg = ResNetConfig::cifar10_like();
        cfg.num_classes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn head_output_shape_matches_forward_pass() {
        let cfg = ResNetConfig::cifar10_like();
        let mut rng = Rng::seed_from(0);
        let head = build_head(&cfg, &mut rng);
        let x = Tensor::ones(&[2, 3, cfg.image_size, cfg.image_size]);
        let y = head.forward(&x, Mode::Eval);
        let expected = cfg.head_output_shape();
        assert_eq!(y.shape(), &[2, expected[0], expected[1], expected[2]]);
    }

    #[test]
    fn cifar100_head_keeps_full_resolution() {
        let cfg = ResNetConfig::cifar100_like();
        assert_eq!(cfg.head_output_shape(), vec![16, 16, 16]);
    }

    #[test]
    fn body_produces_flat_features() {
        let cfg = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(1);
        let body = build_body(&cfg, &mut rng);
        let head_shape = cfg.head_output_shape();
        let x = Tensor::ones(&[2, head_shape[0], head_shape[1], head_shape[2]]);
        let y = body.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, cfg.body_output_features()]);
    }

    #[test]
    fn tail_maps_features_to_class_logits() {
        let cfg = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(2);
        let tail = build_tail(&cfg, 3 * cfg.body_output_features(), &mut rng);
        let x = Tensor::ones(&[5, 3 * cfg.body_output_features()]);
        let y = tail.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[5, cfg.num_classes]);
    }

    #[test]
    fn full_network_end_to_end_shapes_and_backward() {
        let cfg = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(3);
        let mut net = build_full_network(&cfg, &mut rng);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32 * 0.01).sin());
        let y = net.forward_cached(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, cfg.num_classes]);
        let g = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
        assert!(g.is_finite());
    }

    #[test]
    fn paper_configuration_has_resnet18_structure() {
        let cfg = ResNetConfig::paper_resnet18(10, 32, true);
        assert_eq!(cfg.stage_channels, vec![64, 128, 256, 512]);
        assert_eq!(cfg.blocks_per_stage, 2);
        assert_eq!(cfg.body_output_features(), 512);
        assert_eq!(cfg.head_output_shape(), vec![64, 16, 16]);
    }

    #[test]
    fn two_builds_with_the_same_seed_are_identical() {
        let cfg = ResNetConfig::tiny_for_tests();
        let mut rng_a = Rng::seed_from(7);
        let mut rng_b = Rng::seed_from(7);
        let a = build_full_network(&cfg, &mut rng_a);
        let b = build_full_network(&cfg, &mut rng_b);
        let pa = a.params();
        let pb = b.params();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!(x.value, y.value);
        }
    }
}
