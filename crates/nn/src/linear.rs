//! Fully-connected (affine) layer.

use crate::{Layer, Mode, Param};
use ensembler_tensor::{Init, Rng, Tensor};

/// Fully-connected layer computing `y = x W^T + b`.
///
/// Weights are stored as `[out_features, in_features]` and the bias as
/// `[out_features]`, mirroring the usual deep-learning convention. Inputs are
/// `[batch, in_features]`.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Layer, Linear, Mode};
/// use ensembler_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(1);
/// let fc = Linear::new(3, 2, &mut rng);
/// let y = fc.forward(&Tensor::ones(&[4, 3]), Mode::Eval);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(in_features > 0, "in_features must be positive");
        assert!(out_features > 0, "out_features must be positive");
        let weight = Init::KaimingNormal {
            fan_in: in_features,
        }
        .tensor(&[out_features, in_features], rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weight and bias tensors.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not `[out, in]` or `bias` is not `[out]`.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "weight must be rank-2");
        let (out_features, in_features) = (weight.shape()[0], weight.shape()[1]);
        assert_eq!(bias.shape(), &[out_features], "bias must be [out_features]");
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable view of the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    fn affine(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 2, "Linear expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Linear expected {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        // y = x W^T + b
        let mut out = input.matmul_nt(&self.weight.value);
        let batch = input.shape()[0];
        for n in 0..batch {
            for j in 0..self.out_features {
                out.data_mut()[n * self.out_features + j] += self.bias.value.data()[j];
            }
        }
        out
    }
}

impl Layer for Linear {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        self.affine(input)
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = self.affine(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward on Linear");
        assert_eq!(
            grad_output.shape(),
            &[input.shape()[0], self.out_features],
            "grad_output shape mismatch in Linear"
        );
        // dW = dY^T X, db = sum_batch dY, dX = dY W
        let grad_w = grad_output.matmul_tn(input);
        self.weight.grad.add_assign(&grad_w);
        self.bias.grad.add_assign(&grad_output.sum_axis0());
        grad_output.matmul(&self.weight.value)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn quantize_layer(&self) -> crate::quant::QLayer {
        crate::quant::QLayer::Linear(crate::quant::QLinear::from_linear(self))
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Linear(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_input_grad, check_layer_param_grads};

    #[test]
    fn forward_matches_manual_affine() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let fc = Linear::from_parts(weight, bias);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0], &[2, 3]).unwrap();
        let y = fc.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[6.5, 14.5, 2.5, 4.5]);
        assert_eq!(fc.in_features(), 3);
        assert_eq!(fc.out_features(), 2);
    }

    #[test]
    fn parameter_count_and_access() {
        let mut rng = Rng::seed_from(0);
        let fc = Linear::new(4, 3, &mut rng);
        assert_eq!(fc.parameter_count(), 4 * 3 + 3);
        assert_eq!(fc.weight().value.shape(), &[3, 4]);
        assert_eq!(fc.bias().value.shape(), &[3]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(11);
        let mut fc = Linear::new(5, 3, &mut rng);
        check_layer_input_grad(&mut fc, &[2, 5], 0.0, 2e-2);
        check_layer_param_grads(&mut fc, &[2, 5], 2e-2, 20);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Rng::seed_from(5);
        let mut fc = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        fc.forward_cached(&x, Mode::Train);
        fc.backward(&g);
        let first = fc.weight().grad.clone();
        fc.forward_cached(&x, Mode::Train);
        fc.backward(&g);
        let doubled = fc.weight().grad.clone();
        assert_eq!(doubled.data(), first.scale(2.0).data());
        fc.zero_grad();
        assert_eq!(fc.weight().grad.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "expected 3 input features")]
    fn wrong_input_width_panics() {
        let mut rng = Rng::seed_from(0);
        let fc = Linear::new(3, 2, &mut rng);
        let _ = fc.forward(&Tensor::ones(&[1, 4]), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "bias must be [out_features]")]
    fn from_parts_validates_bias() {
        let _ = Linear::from_parts(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3]));
    }
}
