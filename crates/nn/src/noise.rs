//! Noise-injection layers: the paper's fixed Gaussian noise and the trainable
//! Shredder-style noise mask.

use crate::{Layer, Mode, Param};
use ensembler_tensor::{Rng, Tensor};

/// Additive noise with a *fixed* pattern, the `N(0, σ)` term of the Ensembler
/// paper (Eq. 2 and 3).
///
/// The noise tensor has the shape of a single sample's feature map and is
/// broadcast over the batch. Because the pattern is fixed (not resampled per
/// forward pass), each stage-1 network learns to undo *its own* noise, which
/// is what drives the N client heads apart — the property Proposition 1 of
/// the paper relies on.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{FixedNoise, Layer, Mode};
/// use ensembler_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(9);
/// let noise = FixedNoise::new(&[4, 8, 8], 0.1, &mut rng);
/// let x = Tensor::zeros(&[2, 4, 8, 8]);
/// let y = noise.forward(&x, Mode::Eval);
/// // Both samples receive the same pattern.
/// assert_eq!(&y.data()[..256], &y.data()[256..]);
/// ```
#[derive(Debug, Clone)]
pub struct FixedNoise {
    pattern: Tensor,
    sigma: f32,
}

impl FixedNoise {
    /// Samples a fixed Gaussian pattern of the given per-sample `shape` with
    /// standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(shape: &[usize], sigma: f32, rng: &mut Rng) -> Self {
        assert!(
            sigma >= 0.0,
            "noise standard deviation must be non-negative"
        );
        let pattern = Tensor::from_fn(shape, |_| rng.normal_with(0.0, sigma));
        Self { pattern, sigma }
    }

    /// Reconstructs a layer from a previously sampled `pattern` (the model
    /// artifact loader's path). The pattern is adopted verbatim, so a
    /// restored client transmits bit-identical features.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite; artifact loading
    /// validates the stored sigma before calling this.
    pub fn from_pattern(pattern: Tensor, sigma: f32) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise standard deviation must be finite and non-negative"
        );
        Self { pattern, sigma }
    }

    /// Creates a noiseless layer (identity), useful for the "None" baseline.
    pub fn disabled(shape: &[usize]) -> Self {
        Self {
            pattern: Tensor::zeros(shape),
            sigma: 0.0,
        }
    }

    /// The standard deviation the pattern was drawn with.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// The fixed per-sample noise pattern.
    pub fn pattern(&self) -> &Tensor {
        &self.pattern
    }

    /// Replaces the noise pattern with a freshly sampled one (used between
    /// training stages when the client re-keys its noise).
    pub fn resample(&mut self, rng: &mut Rng) {
        let sigma = self.sigma;
        self.pattern = Tensor::from_fn(self.pattern.shape(), |_| rng.normal_with(0.0, sigma));
    }

    fn add_pattern(&self, input: &Tensor) -> Tensor {
        let per_sample = self.pattern.len();
        assert!(
            !input.is_empty() && input.len().is_multiple_of(per_sample),
            "input length {} is not a multiple of the noise pattern length {per_sample}",
            input.len()
        );
        let mut out = input.clone();
        for chunk in out.data_mut().chunks_mut(per_sample) {
            for (v, n) in chunk.iter_mut().zip(self.pattern.data()) {
                *v += n;
            }
        }
        out
    }
}

impl Layer for FixedNoise {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        self.add_pattern(input)
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        // Backward needs no cache: the pattern is an additive constant.
        self.add_pattern(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // Additive constant: gradient passes through unchanged.
        grad_output.clone()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "fixed_noise"
    }
}

/// Trainable additive noise mask — the Shredder baseline.
///
/// Shredder (Mireshghallah et al., ASPLOS 2020) learns a noise tensor that is
/// added to the intermediate features before they leave the client. The noise
/// is trained with two opposing objectives: keep classification accuracy
/// (cross-entropy gradient flowing through this layer) while growing the
/// noise magnitude to destroy mutual information with the input. The second
/// objective appears here as a configurable "expansion" term added directly
/// to the noise gradient during [`LearnedNoise::apply_expansion_grad`].
#[derive(Debug, Clone)]
pub struct LearnedNoise {
    noise: Param,
    expansion_weight: f32,
}

impl LearnedNoise {
    /// Creates a trainable noise mask of the given per-sample `shape`,
    /// initialised from `N(0, sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new(shape: &[usize], sigma: f32, expansion_weight: f32, rng: &mut Rng) -> Self {
        assert!(
            sigma >= 0.0,
            "noise standard deviation must be non-negative"
        );
        let init = Tensor::from_fn(shape, |_| rng.normal_with(0.0, sigma));
        Self {
            noise: Param::new(init),
            expansion_weight,
        }
    }

    /// The current noise tensor.
    pub fn noise(&self) -> &Tensor {
        &self.noise.value
    }

    /// Weight of the noise-expansion objective.
    pub fn expansion_weight(&self) -> f32 {
        self.expansion_weight
    }

    /// Adds the gradient of the Shredder noise-expansion objective
    /// `-expansion_weight * ||noise||^2 / len` to the accumulated noise
    /// gradient. Minimising the total loss therefore *grows* the noise.
    pub fn apply_expansion_grad(&mut self) {
        let len = self.noise.value.len().max(1) as f32;
        let scale = -2.0 * self.expansion_weight / len;
        let contribution = self.noise.value.scale(scale);
        self.noise.grad.add_assign(&contribution);
    }
}

impl Layer for LearnedNoise {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        let per_sample = self.noise.value.len();
        assert!(
            !input.is_empty() && input.len().is_multiple_of(per_sample),
            "input length {} is not a multiple of the noise length {per_sample}",
            input.len()
        );
        let mut out = input.clone();
        for chunk in out.data_mut().chunks_mut(per_sample) {
            for (v, n) in chunk.iter_mut().zip(self.noise.value.data()) {
                *v += n;
            }
        }
        out
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        // Backward needs no cache: the mask gradient is dY summed per sample.
        self.forward(input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // d(out)/d(noise) = 1 for every sample in the batch: accumulate the
        // per-sample gradients into the shared mask.
        let per_sample = self.noise.value.len();
        for chunk in grad_output.data().chunks(per_sample) {
            for (g, acc) in chunk.iter().zip(self.noise.grad.data_mut()) {
                *acc += g;
            }
        }
        grad_output.clone()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.noise]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.noise]
    }

    fn name(&self) -> &'static str {
        "learned_noise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_noise_is_deterministic_and_broadcasts() {
        let mut rng = Rng::seed_from(0);
        let noise = FixedNoise::new(&[2, 3, 3], 0.5, &mut rng);
        let x = Tensor::zeros(&[4, 2, 3, 3]);
        let y1 = noise.forward(&x, Mode::Train);
        let y2 = noise.forward(&x, Mode::Eval);
        assert_eq!(y1, y2, "fixed noise must not be resampled per call");
        let per = 2 * 3 * 3;
        assert_eq!(&y1.data()[..per], noise.pattern().data());
        assert_eq!(&y1.data()[per..2 * per], noise.pattern().data());
        assert!((noise.sigma() - 0.5).abs() < f32::EPSILON);
    }

    #[test]
    fn fixed_noise_gradient_is_identity() {
        let mut rng = Rng::seed_from(1);
        let mut noise = FixedNoise::new(&[2, 2, 2], 0.1, &mut rng);
        let _ = noise.forward(&Tensor::zeros(&[1, 2, 2, 2]), Mode::Train);
        let g = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        assert_eq!(noise.backward(&g), g);
        assert_eq!(noise.parameter_count(), 0);
    }

    #[test]
    fn disabled_noise_is_identity() {
        let noise = FixedNoise::disabled(&[3, 4, 4]);
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        assert_eq!(noise.forward(&x, Mode::Train), x);
        assert_eq!(noise.sigma(), 0.0);
    }

    #[test]
    fn resample_changes_the_pattern() {
        let mut rng = Rng::seed_from(2);
        let mut noise = FixedNoise::new(&[8], 1.0, &mut rng);
        let before = noise.pattern().clone();
        noise.resample(&mut rng);
        assert_ne!(before, *noise.pattern());
    }

    #[test]
    fn distinct_seeds_give_quasi_orthogonal_patterns() {
        // The paper's stage-1 argument: independently sampled Gaussian noise
        // patterns are nearly orthogonal in high dimension.
        let mut rng_a = Rng::seed_from(10);
        let mut rng_b = Rng::seed_from(20);
        let a = FixedNoise::new(&[1, 2048], 0.1, &mut rng_a);
        let b = FixedNoise::new(&[1, 2048], 0.1, &mut rng_b);
        let cs = a.pattern().cosine_similarity_per_sample(b.pattern()).item();
        assert!(cs.abs() < 0.1, "expected quasi-orthogonality, got {cs}");
    }

    #[test]
    fn learned_noise_accumulates_batch_gradient() {
        let mut rng = Rng::seed_from(3);
        let mut noise = LearnedNoise::new(&[4], 0.1, 0.0, &mut rng);
        let x = Tensor::zeros(&[3, 4]);
        let _ = noise.forward(&x, Mode::Train);
        let g = Tensor::ones(&[3, 4]);
        let gi = noise.backward(&g);
        assert_eq!(gi, g);
        // Three samples each contribute a gradient of one.
        assert_eq!(noise.params()[0].grad.data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn expansion_gradient_grows_the_noise() {
        let mut rng = Rng::seed_from(4);
        let mut noise = LearnedNoise::new(&[4], 1.0, 0.5, &mut rng);
        noise.apply_expansion_grad();
        // Gradient must point opposite to the noise value (so that a gradient
        // descent step increases the magnitude).
        for (n, g) in noise
            .noise()
            .data()
            .iter()
            .zip(noise.params()[0].grad.data())
        {
            assert!(n * g <= 0.0);
        }
        assert!((noise.expansion_weight() - 0.5).abs() < f32::EPSILON);
    }

    #[test]
    #[should_panic(expected = "not a multiple of the noise pattern length")]
    fn mismatched_feature_shape_panics() {
        let mut rng = Rng::seed_from(5);
        let noise = FixedNoise::new(&[5], 0.1, &mut rng);
        let _ = noise.forward(&Tensor::zeros(&[2, 4]), Mode::Train);
    }
}
