//! Neural-network layers, losses and optimizers with manually differentiated
//! backward passes.
//!
//! This crate replaces the role PyTorch plays in the original Ensembler paper.
//! Every layer implements the [`Layer`] trait with an explicit `forward` /
//! `backward` pair; there is no tape-based autograd. The backward passes are
//! validated against finite differences by the [`gradcheck`] helpers, which
//! the unit tests in each module use.
//!
//! The layer set is exactly what the Ensembler pipeline and the model
//! inversion attack need:
//!
//! * [`Conv2d`], [`ConvTranspose2d`], [`Linear`], [`BatchNorm2d`]
//! * [`Relu`], [`LeakyRelu`], [`Sigmoid`], [`Tanh`]
//! * [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`], [`Dropout`]
//! * [`FixedNoise`] (the paper's predefined Gaussian noise) and
//!   [`LearnedNoise`] (the Shredder baseline)
//! * [`Sequential`] and [`ResidualBlock`] containers
//! * [`CrossEntropyLoss`], [`MseLoss`], [`cosine_penalty`]
//! * [`Sgd`] and [`Adam`] optimizers
//! * [`models`] — the `MicroResNet` family used as the stand-in for ResNet-18
//! * [`quant`] — int8 inference counterparts of the GEMM-backed layers
//!   ([`QLinear`], [`QConv2d`], [`QSequential`]), built via
//!   [`Layer::quantize_layer`].
//! * [`graph`] — the lazy graph IR layers lower into, and [`compiler`] —
//!   fusion passes (conv+bn folding, GEMM epilogue fusion) producing
//!   [`CompiledPlan`] / [`QCompiledPlan`] fused forward paths with typed
//!   shape errors instead of panics.
//!
//! # Examples
//!
//! ```
//! use ensembler_nn::{Layer, Linear, Mode, Relu, Sequential};
//! use ensembler_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::ones(&[3, 4]);
//! let y = net.forward(&x, Mode::Eval);
//! assert_eq!(y.shape(), &[3, 2]);
//! ```

mod activation;
pub mod artifact;
mod checkpoint;
pub mod compiler;
mod container;
mod conv;
mod dropout;
pub mod gradcheck;
pub mod graph;
mod layer;
mod linear;
mod loss;
pub mod models;
mod noise;
mod norm;
mod optim;
mod pool;
pub mod quant;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use artifact::{ArtifactError, ArtifactPrecision, ModelArtifact};
pub use checkpoint::{Checkpoint, RestoreCheckpointError};
pub use compiler::{CompiledPlan, FusionConfig, QCompiledPlan};
pub use container::{Flatten, Identity, ResidualBlock, Sequential};
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use graph::GraphOp;
pub use layer::{Layer, Mode, Param};
pub use linear::Linear;
pub use loss::{cosine_penalty, softmax, CosinePenalty, CrossEntropyLoss, LossValue, MseLoss};
pub use noise::{FixedNoise, LearnedNoise};
pub use norm::BatchNorm2d;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use quant::{QConv2d, QLayer, QLinear, QSequential};
