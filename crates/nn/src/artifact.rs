//! Versioned, checksummed binary model artifacts.
//!
//! This is the boundary between training and serving: a trained split
//! pipeline is exported once into a self-describing byte container and every
//! serving binary loads it back without re-running training (or, today,
//! without re-deriving weights from a seed). The container is designed in the
//! spirit of the serving wire codec — a magic word, an explicit format
//! version, length-prefixed fields, and a CRC-32 trailer over everything that
//! precedes it — so a corrupted, truncated or stale file is always rejected
//! with a typed [`ArtifactError`], never loaded as a silently wrong model.
//!
//! Byte layout (all integers big-endian, tensor data little-endian `f32`,
//! matching the wire tensor blobs):
//!
//! ```text
//! u32  magic            0x454E534D ("ENSM")
//! u16  format version   1
//! str  name             u32 length + UTF-8 bytes
//! str  label            u32 length + UTF-8 bytes
//! u32  n                ensemble size
//! u32  p                selected count
//! u8   precision        0 = f32, 1 = int8
//! —    architecture     ResNetConfig fields (see below)
//! u32  selector count   + that many u32 active indices
//! f32  noise sigma      (bit pattern, big-endian)
//! —    noise pattern    one tensor blob
//! u8   dropout flag     0 = none; 1 = f32 probability + u64 seed follow
//! —    head             tensor group (u32 count + tensors)
//! u32  body count       + that many tensor groups
//! —    tail             tensor group
//! u32  CRC-32 trailer   IEEE 802.3, over every byte above
//! ```
//!
//! A tensor blob is `u32 rank + rank × u32 dims + dims-product × f32 LE`.
//! Decoding is structural only — bounds-checked reads, sane rank/count
//! guards, no trailing bytes — while *semantic* validation (does this
//! describe a buildable pipeline?) happens when the `ensembler` crate
//! reconstructs a model from the artifact, so a hand-written tiny artifact
//! still round-trips bytes exactly for documentation and tests.
//!
//! # Examples
//!
//! ```
//! use ensembler_nn::{ArtifactPrecision, ModelArtifact};
//! use ensembler_nn::models::ResNetConfig;
//! use ensembler_tensor::Tensor;
//!
//! let artifact = ModelArtifact {
//!     name: "demo".to_string(),
//!     label: "Ensembler".to_string(),
//!     n: 1,
//!     p: 1,
//!     precision: ArtifactPrecision::F32,
//!     config: ResNetConfig::tiny_for_tests(),
//!     selector: vec![0],
//!     noise_sigma: 0.0,
//!     noise_pattern: Tensor::zeros(&[1]),
//!     dropout: None,
//!     head: vec![Tensor::zeros(&[2])],
//!     bodies: vec![vec![Tensor::zeros(&[2])]],
//!     tail: vec![Tensor::zeros(&[2])],
//! };
//! let bytes = artifact.encode();
//! let back = ModelArtifact::decode(&bytes)?;
//! assert_eq!(back, artifact);
//! # Ok::<(), ensembler_nn::ArtifactError>(())
//! ```

use crate::models::ResNetConfig;
use ensembler_tensor::Tensor;
use std::path::Path;

/// Magic word opening every model artifact: `"ENSM"` as a big-endian `u32`.
pub const ARTIFACT_MAGIC: u32 = 0x454E_534D;

/// The current (and only) artifact format version.
pub const ARTIFACT_VERSION: u16 = 1;

/// Tensor rank above which a blob is considered malformed rather than merely
/// exotic — the same bound the wire codec enforces.
const MAX_TENSOR_RANK: usize = 8;

/// Numeric precision the artifact's weights are intended to serve at.
///
/// Int8 artifacts still store `f32` tensors: quantization is deterministic
/// from the float weights, so re-quantizing at load time reproduces the
/// exact serving model while keeping one canonical weight encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactPrecision {
    /// Serve the weights as plain `f32`.
    F32,
    /// Quantize the server bodies to int8 at load time.
    Int8,
}

impl ArtifactPrecision {
    fn to_byte(self) -> u8 {
        match self {
            ArtifactPrecision::F32 => 0,
            ArtifactPrecision::Int8 => 1,
        }
    }

    fn from_byte(byte: u8) -> Result<Self, ArtifactError> {
        match byte {
            0 => Ok(ArtifactPrecision::F32),
            1 => Ok(ArtifactPrecision::Int8),
            other => Err(ArtifactError::Malformed(format!(
                "unknown precision byte {other:#04x}"
            ))),
        }
    }
}

/// A decoded (or to-be-encoded) model artifact: metadata, architecture and
/// every parameter tensor of a split-inference pipeline.
///
/// The struct is plain data on purpose — the `ensembler` crate owns the
/// conversion to and from a live pipeline, and tests can hand-craft tiny
/// artifacts without building a real model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Registry name the model is served under.
    pub name: String,
    /// Human-readable defence label (e.g. `"Ensembler"`).
    pub label: String,
    /// Ensemble size `N` (number of server bodies).
    pub n: u32,
    /// Selected count `P` (number of active bodies).
    pub p: u32,
    /// Serving precision the exporter intended.
    pub precision: ArtifactPrecision,
    /// The backbone architecture; rebuilt deterministically at load time.
    pub config: ResNetConfig,
    /// The client's private selector: active body indices, sorted ascending.
    pub selector: Vec<u32>,
    /// Standard deviation the fixed noise pattern was drawn with.
    pub noise_sigma: f32,
    /// The fixed per-sample noise pattern added to transmitted features.
    pub noise_pattern: Tensor,
    /// Optional feature-dropout defence: `(probability, seed)`.
    pub dropout: Option<(f32, u64)>,
    /// Parameter tensors of the client head, in [`crate::Layer::params`]
    /// order.
    pub head: Vec<Tensor>,
    /// Parameter tensors of each server body, one group per body.
    pub bodies: Vec<Vec<Tensor>>,
    /// Parameter tensors of the client tail.
    pub tail: Vec<Tensor>,
}

/// Typed rejection of an artifact that cannot be decoded or loaded.
///
/// Every corruption mode — truncation, bit flips, absurd declared sizes,
/// stale versions — maps to one of these variants; decoding never panics and
/// never returns a partially-filled artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file does not start with [`ARTIFACT_MAGIC`].
    Magic {
        /// The word actually found where the magic should be.
        found: u32,
    },
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion {
        /// The version stamped on the artifact.
        found: u16,
        /// The version this build supports.
        supported: u16,
    },
    /// The CRC-32 trailer does not match the preceding bytes.
    Checksum {
        /// Checksum recomputed over the received bytes.
        expected: u32,
        /// Checksum stored in the trailer.
        found: u32,
    },
    /// The byte structure is invalid: truncated fields, implausible counts,
    /// bad UTF-8 or trailing garbage.
    Malformed(String),
    /// The bytes decoded cleanly but do not describe a buildable model
    /// (inconsistent architecture, out-of-range selector, shape mismatches).
    Invalid(String),
    /// Reading or writing the artifact file failed.
    Io(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Magic { found } => {
                write!(f, "not a model artifact: magic word {found:#010x}")
            }
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads version {supported})"
            ),
            ArtifactError::Checksum { expected, found } => write!(
                f,
                "artifact checksum mismatch: computed {expected:#010x}, trailer says {found:#010x}"
            ),
            ArtifactError::Malformed(message) => write!(f, "malformed artifact: {message}"),
            ArtifactError::Invalid(message) => write!(f, "invalid model artifact: {message}"),
            ArtifactError::Io(message) => write!(f, "artifact I/O error: {message}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes` — the artifact
/// trailer checksum, identical to the one the serving wire protocol uses.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut n = 0usize;
        while n < 256 {
            let mut c = n as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[n] = c;
            n += 1;
        }
        table
    }
    const TABLE: [u32; 256] = make_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn put_u8(buf: &mut Vec<u8>, value: u8) {
    buf.push(value);
}

fn put_u16(buf: &mut Vec<u8>, value: u16) {
    buf.extend_from_slice(&value.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_be_bytes());
}

fn put_f32(buf: &mut Vec<u8>, value: f32) {
    put_u32(buf, value.to_bits());
}

fn put_string(buf: &mut Vec<u8>, value: &str) {
    put_u32(buf, value.len() as u32);
    buf.extend_from_slice(value.as_bytes());
}

fn put_tensor(buf: &mut Vec<u8>, tensor: &Tensor) {
    put_u32(buf, tensor.rank() as u32);
    for &dim in tensor.shape() {
        put_u32(buf, dim as u32);
    }
    for &v in tensor.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_tensor_group(buf: &mut Vec<u8>, tensors: &[Tensor]) {
    put_u32(buf, tensors.len() as u32);
    for tensor in tensors {
        put_tensor(buf, tensor);
    }
}

/// A strict bounds-checked reader over the artifact payload, mirroring the
/// wire codec's parser: no read past the end, no allocation driven by an
/// unchecked declared count, and trailing bytes are rejected.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Self { rest }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        if self.rest.len() < n {
            return Err(ArtifactError::Malformed(format!(
                "truncated inside the {what}: need {n} bytes, have {}",
                self.rest.len()
            )));
        }
        let (head, rest) = self.rest.split_at(n);
        self.rest = rest;
        Ok(head)
    }

    fn take_u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_f32(&mut self, what: &str) -> Result<f32, ArtifactError> {
        Ok(f32::from_bits(self.take_u32(what)?))
    }

    fn take_string(&mut self, what: &str) -> Result<String, ArtifactError> {
        let len = self.take_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed(format!("{what} is not valid UTF-8")))
    }

    /// Guards a declared element count against the bytes actually remaining
    /// (each element costs at least `min_bytes`), so an absurd count cannot
    /// force an absurd allocation.
    fn check_count(&self, count: usize, min_bytes: usize, what: &str) -> Result<(), ArtifactError> {
        if count > self.rest.len() / min_bytes.max(1) {
            return Err(ArtifactError::Malformed(format!(
                "{what} declares {count} entries but only {} bytes remain",
                self.rest.len()
            )));
        }
        Ok(())
    }

    fn take_tensor(&mut self, what: &str) -> Result<Tensor, ArtifactError> {
        let rank = self.take_u32(what)? as usize;
        if rank > MAX_TENSOR_RANK {
            return Err(ArtifactError::Malformed(format!(
                "{what} declares implausible tensor rank {rank}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(self.take_u32(what)? as usize);
        }
        let elements = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| {
                ArtifactError::Malformed(format!("{what} tensor shape {shape:?} overflows"))
            })?;
        let byte_len = elements.checked_mul(4).ok_or_else(|| {
            ArtifactError::Malformed(format!("{what} tensor shape {shape:?} overflows"))
        })?;
        let bytes = self.take(byte_len, what)?;
        let data = bytes
            .chunks_exact(4)
            .map(|chunk| f32::from_le_bytes(chunk.try_into().expect("4 bytes")))
            .collect();
        Tensor::from_vec(data, &shape)
            .map_err(|e| ArtifactError::Malformed(format!("{what} tensor is malformed: {e}")))
    }

    fn take_tensor_group(&mut self, what: &str) -> Result<Vec<Tensor>, ArtifactError> {
        let count = self.take_u32(what)? as usize;
        // Each tensor costs at least its rank word.
        self.check_count(count, 4, what)?;
        let mut tensors = Vec::with_capacity(count);
        for index in 0..count {
            tensors.push(self.take_tensor(&format!("{what} tensor {index}"))?);
        }
        Ok(tensors)
    }

    fn finish(self, what: &str) -> Result<(), ArtifactError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after the {what}",
                self.rest.len()
            )))
        }
    }
}

impl ModelArtifact {
    /// Serialises the artifact into its canonical byte form, CRC trailer
    /// included. Encoding is deterministic: the same artifact always produces
    /// the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, ARTIFACT_MAGIC);
        put_u16(&mut buf, ARTIFACT_VERSION);
        put_string(&mut buf, &self.name);
        put_string(&mut buf, &self.label);
        put_u32(&mut buf, self.n);
        put_u32(&mut buf, self.p);
        put_u8(&mut buf, self.precision.to_byte());
        put_u32(&mut buf, self.config.input_channels as u32);
        put_u32(&mut buf, self.config.image_size as u32);
        put_u32(&mut buf, self.config.stem_channels as u32);
        put_u32(&mut buf, self.config.stage_channels.len() as u32);
        for &channels in &self.config.stage_channels {
            put_u32(&mut buf, channels as u32);
        }
        put_u32(&mut buf, self.config.blocks_per_stage as u32);
        put_u32(&mut buf, self.config.num_classes as u32);
        put_u8(&mut buf, u8::from(self.config.use_stem_pool));
        put_u32(&mut buf, self.selector.len() as u32);
        for &index in &self.selector {
            put_u32(&mut buf, index);
        }
        put_f32(&mut buf, self.noise_sigma);
        put_tensor(&mut buf, &self.noise_pattern);
        match self.dropout {
            None => put_u8(&mut buf, 0),
            Some((probability, seed)) => {
                put_u8(&mut buf, 1);
                put_f32(&mut buf, probability);
                put_u64(&mut buf, seed);
            }
        }
        put_tensor_group(&mut buf, &self.head);
        put_u32(&mut buf, self.bodies.len() as u32);
        for body in &self.bodies {
            put_tensor_group(&mut buf, body);
        }
        put_tensor_group(&mut buf, &self.tail);
        let checksum = crc32(&buf);
        put_u32(&mut buf, checksum);
        buf
    }

    /// Decodes an artifact from its byte form.
    ///
    /// Validation here is *structural*: magic, version, checksum and byte
    /// layout. Whether the decoded artifact describes a buildable model is
    /// checked when a pipeline is reconstructed from it.
    ///
    /// # Errors
    ///
    /// Returns the matching [`ArtifactError`] variant for a wrong magic word,
    /// an unsupported format version, a checksum mismatch, or any structural
    /// defect (truncation, implausible counts, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Self, ArtifactError> {
        // magic + version + trailer is the absolute minimum.
        if bytes.len() < 10 {
            return Err(ArtifactError::Malformed(format!(
                "{} bytes is too short for an artifact header and trailer",
                bytes.len()
            )));
        }
        let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::Magic { found: magic });
        }
        let version = u16::from_be_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let found = u32::from_be_bytes(trailer.try_into().expect("4 bytes"));
        let expected = crc32(body);
        if expected != found {
            return Err(ArtifactError::Checksum { expected, found });
        }

        let mut cursor = Cursor::new(&body[6..]);
        let name = cursor.take_string("model name")?;
        let label = cursor.take_string("model label")?;
        let n = cursor.take_u32("ensemble size")?;
        let p = cursor.take_u32("selected count")?;
        let precision = ArtifactPrecision::from_byte(cursor.take_u8("precision")?)?;

        let input_channels = cursor.take_u32("architecture")? as usize;
        let image_size = cursor.take_u32("architecture")? as usize;
        let stem_channels = cursor.take_u32("architecture")? as usize;
        let stage_count = cursor.take_u32("architecture")? as usize;
        cursor.check_count(stage_count, 4, "stage channel list")?;
        let mut stage_channels = Vec::with_capacity(stage_count);
        for _ in 0..stage_count {
            stage_channels.push(cursor.take_u32("stage channels")? as usize);
        }
        let blocks_per_stage = cursor.take_u32("architecture")? as usize;
        let num_classes = cursor.take_u32("architecture")? as usize;
        let use_stem_pool = match cursor.take_u8("stem pool flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "stem pool flag must be 0 or 1, found {other}"
                )))
            }
        };
        let config = ResNetConfig {
            input_channels,
            image_size,
            stem_channels,
            stage_channels,
            blocks_per_stage,
            num_classes,
            use_stem_pool,
        };

        let selector_count = cursor.take_u32("selector")? as usize;
        cursor.check_count(selector_count, 4, "selector index list")?;
        let mut selector = Vec::with_capacity(selector_count);
        for _ in 0..selector_count {
            selector.push(cursor.take_u32("selector indices")?);
        }

        let noise_sigma = cursor.take_f32("noise sigma")?;
        let noise_pattern = cursor.take_tensor("noise pattern")?;
        let dropout = match cursor.take_u8("dropout flag")? {
            0 => None,
            1 => {
                let probability = cursor.take_f32("dropout probability")?;
                let seed = cursor.take_u64("dropout seed")?;
                Some((probability, seed))
            }
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "dropout flag must be 0 or 1, found {other}"
                )))
            }
        };

        let head = cursor.take_tensor_group("head")?;
        let body_count = cursor.take_u32("body count")? as usize;
        // Each body group costs at least its count word.
        cursor.check_count(body_count, 4, "body list")?;
        let mut bodies = Vec::with_capacity(body_count);
        for index in 0..body_count {
            bodies.push(cursor.take_tensor_group(&format!("body {index}"))?);
        }
        let tail = cursor.take_tensor_group("tail")?;
        cursor.finish("artifact payload")?;

        Ok(Self {
            name,
            label,
            n,
            p,
            precision,
            config,
            selector,
            noise_sigma,
            noise_pattern,
            dropout,
            head,
            bodies,
            tail,
        })
    }

    /// Writes the encoded artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] if the file cannot be written.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        std::fs::write(path, self.encode())
            .map_err(|e| ArtifactError::Io(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads and decodes an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] if the file cannot be read, or any
    /// [`ModelArtifact::decode`] error if its contents are not a valid
    /// artifact.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("cannot read {}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// Total number of parameter scalars stored across head, bodies and tail.
    pub fn scalar_count(&self) -> usize {
        let group: usize = self.head.iter().map(Tensor::len).sum::<usize>()
            + self.tail.iter().map(Tensor::len).sum::<usize>();
        group
            + self
                .bodies
                .iter()
                .flat_map(|body| body.iter().map(Tensor::len))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    fn tiny_artifact() -> ModelArtifact {
        ModelArtifact {
            name: "m".to_string(),
            label: "Ensembler".to_string(),
            n: 2,
            p: 1,
            precision: ArtifactPrecision::Int8,
            config: ResNetConfig::tiny_for_tests(),
            selector: vec![1],
            noise_sigma: 0.25,
            noise_pattern: t(vec![0.5, -0.5], &[2]),
            dropout: Some((0.5, 99)),
            head: vec![t(vec![1.0], &[1])],
            bodies: vec![vec![t(vec![2.0], &[1])], vec![t(vec![3.0], &[1])]],
            tail: vec![t(vec![4.0, 5.0], &[2, 1])],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let artifact = tiny_artifact();
        let bytes = artifact.encode();
        let back = ModelArtifact::decode(&bytes).unwrap();
        assert_eq!(back, artifact);
    }

    #[test]
    fn encoding_is_deterministic() {
        let artifact = tiny_artifact();
        assert_eq!(artifact.encode(), artifact.encode());
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        let mut bytes = tiny_artifact().encode();
        bytes[0] = b'X';
        // Re-stamp the trailer so the magic check (not the CRC) fires.
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Magic { .. })
        ));
    }

    #[test]
    fn stale_version_is_a_typed_error() {
        let mut bytes = tiny_artifact().encode();
        bytes[4..6].copy_from_slice(&(ARTIFACT_VERSION + 1).to_be_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::UnsupportedVersion {
                found: ARTIFACT_VERSION + 1,
                supported: ARTIFACT_VERSION
            })
        );
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let mut bytes = tiny_artifact().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Checksum { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = tiny_artifact().encode();
        for len in 0..bytes.len() {
            assert!(
                ModelArtifact::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let artifact = tiny_artifact();
        let mut bytes = artifact.encode();
        let len = bytes.len();
        bytes.splice(len - 4..len - 4, [0u8; 4]);
        let crc = crc32(&bytes[..len]);
        bytes[len..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let artifact = tiny_artifact();
        let dir = std::env::temp_dir().join("ensembler-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.bin");
        artifact.write_to_file(&path).unwrap();
        let back = ModelArtifact::read_from_file(&path).unwrap();
        assert_eq!(back, artifact);
        let missing = ModelArtifact::read_from_file(dir.join("nope.bin"));
        assert!(matches!(missing, Err(ArtifactError::Io(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scalar_count_sums_all_groups() {
        assert_eq!(tiny_artifact().scalar_count(), 1 + 1 + 1 + 2);
    }
}
