//! Lazy compute-graph IR over the layer zoo.
//!
//! Instead of walking `Box<dyn Layer>` chains and calling
//! [`Layer::forward`] eagerly, a pipeline can be **lowered** into a vector
//! of typed [`GraphOp`] nodes once, handed to the
//! [`crate::compiler`], and executed through a fused
//! [`crate::compiler::CompiledPlan`] on every subsequent request. The IR is
//! deliberately tiny: it only distinguishes the ops the fusion passes care
//! about (convolution, batch norm, ReLU, pooling, flatten, linear, residual
//! blocks); everything else stays an opaque node that runs the original
//! layer unchanged, so lowering is always total and never changes semantics.
//!
//! Lowering happens through [`Layer::lower`], which each typed layer
//! overrides; the default implementation produces [`GraphOp::Opaque`].
//!
//! # Examples
//!
//! ```
//! use ensembler_nn::graph::{lower_sequential, GraphOp};
//! use ensembler_nn::{Conv2d, Relu, Sequential};
//! use ensembler_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)),
//!     Box::new(Relu::new()),
//! ]);
//! let ops = lower_sequential(&net);
//! assert!(matches!(ops[0], GraphOp::Conv(_)));
//! assert!(matches!(ops[1], GraphOp::Relu));
//! ```

use crate::{BatchNorm2d, Conv2d, Layer, Linear, Sequential};

/// One node of the lazy compute-graph IR.
///
/// Typed variants own a clone of the layer they were lowered from, so a
/// compiled plan is self-contained and immune to later mutation of the
/// source pipeline (plan caches invalidate and re-lower instead).
#[derive(Debug, Clone)]
pub enum GraphOp {
    /// 2-D convolution (weights and bias owned by the node).
    Conv(Conv2d),
    /// Batch normalization, executed with its frozen running statistics
    /// (plans are inference-only).
    BatchNorm(BatchNorm2d),
    /// ReLU in the mask-multiply formulation the eager [`crate::Relu`]
    /// layer uses: `v * (v > 0 ? 1 : 0)`.
    Relu,
    /// Square max pooling with the given window (stride = window).
    MaxPool(usize),
    /// Global average pooling, `[B, C, H, W] -> [B, C]`.
    GlobalAvgPool,
    /// Flattens feature maps to `[B, features]`.
    Flatten,
    /// Fully-connected layer (weights and bias owned by the node).
    Linear(Linear),
    /// A residual block: the main branch, an optional projection shortcut
    /// (`None` means identity), and the implicit `relu(main + shortcut)`
    /// terminator.
    Residual {
        /// Ops of the main branch, applied in order.
        main: Vec<GraphOp>,
        /// Ops of the projection shortcut, or `None` for identity.
        shortcut: Option<Vec<GraphOp>>,
    },
    /// A nested sequence of ops. [`lower_sequential`] and the compiler
    /// flatten sequences away; the variant only exists so
    /// [`crate::Sequential::lower`](Layer::lower) can return one node.
    Sequence(Vec<GraphOp>),
    /// A layer with no typed IR representation; the plan runs the layer's
    /// own [`Layer::forward`] (inference mode) unchanged.
    Opaque(Box<dyn Layer>),
}

impl GraphOp {
    /// Short human-readable op name for summaries and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            GraphOp::Conv(_) => "conv",
            GraphOp::BatchNorm(_) => "batch_norm",
            GraphOp::Relu => "relu",
            GraphOp::MaxPool(_) => "max_pool",
            GraphOp::GlobalAvgPool => "global_avg_pool",
            GraphOp::Flatten => "flatten",
            GraphOp::Linear(_) => "linear",
            GraphOp::Residual { .. } => "residual",
            GraphOp::Sequence(_) => "sequence",
            GraphOp::Opaque(l) => l.name(),
        }
    }
}

/// Lowers a [`Sequential`] pipeline into a flat op list, recursively
/// flattening nested sequences so peephole fusion sees adjacent ops.
pub fn lower_sequential(net: &Sequential) -> Vec<GraphOp> {
    let mut ops = Vec::with_capacity(net.len());
    for layer in net.layers() {
        flatten_into(layer.lower(), &mut ops);
    }
    ops
}

fn flatten_into(op: GraphOp, out: &mut Vec<GraphOp>) {
    match op {
        GraphOp::Sequence(ops) => {
            for op in ops {
                flatten_into(op, out);
            }
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Flatten, GlobalAvgPool, MaxPool2d, Relu, ResidualBlock, Sigmoid};
    use ensembler_tensor::Rng;

    #[test]
    fn typed_layers_lower_to_typed_ops() {
        let mut rng = Rng::seed_from(0);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, &mut rng)),
            Box::new(BatchNorm2d::new(4)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 2, &mut rng)),
        ]);
        let ops = lower_sequential(&net);
        let names: Vec<_> = ops.iter().map(GraphOp::name).collect();
        assert_eq!(
            names,
            [
                "conv",
                "batch_norm",
                "relu",
                "max_pool",
                "global_avg_pool",
                "flatten",
                "linear"
            ]
        );
    }

    #[test]
    fn untyped_layers_lower_to_opaque() {
        let op = Sigmoid::new().lower();
        assert!(matches!(op, GraphOp::Opaque(_)));
        assert_eq!(op.name(), "sigmoid");
    }

    #[test]
    fn nested_sequentials_flatten() {
        let mut rng = Rng::seed_from(1);
        let inner = Sequential::new(vec![
            Box::new(Linear::new(4, 4, &mut rng)),
            Box::new(Relu::new()),
        ]);
        let outer = Sequential::new(vec![Box::new(inner), Box::new(Linear::new(4, 2, &mut rng))]);
        let ops = lower_sequential(&outer);
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], GraphOp::Linear(_)));
        assert!(matches!(ops[2], GraphOp::Linear(_)));
    }

    #[test]
    fn residual_blocks_lower_with_branch_structure() {
        let mut rng = Rng::seed_from(2);
        let plain = ResidualBlock::new(4, 4, 1, &mut rng).lower();
        match &plain {
            GraphOp::Residual { main, shortcut } => {
                assert_eq!(main.len(), 5, "conv, bn, relu, conv, bn");
                assert!(shortcut.is_none(), "identity shortcut stays None");
            }
            other => panic!("expected residual, got {}", other.name()),
        }
        let down = ResidualBlock::new(4, 8, 2, &mut rng).lower();
        match &down {
            GraphOp::Residual { shortcut, .. } => {
                assert_eq!(shortcut.as_ref().map(Vec::len), Some(2), "conv + bn");
            }
            other => panic!("expected residual, got {}", other.name()),
        }
    }
}
