//! 2-D convolution and transposed convolution layers (GEMM / im2col based).

use crate::{Layer, Mode, Param};
use ensembler_tensor::{col2im, im2col, Conv2dGeometry, Init, Rng, Tensor};

/// Converts a `[B, C, H, W]` tensor into the `[B*H*W, C]` matrix whose rows
/// follow the same `(n, y, x)` ordering as `im2col` output rows.
fn nchw_to_rows(t: &Tensor) -> Tensor {
    let [b, c, h, w] = [t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]];
    let plane = h * w;
    let mut out = vec![0.0f32; b * plane * c];
    for n in 0..b {
        for ch in 0..c {
            for p in 0..plane {
                out[(n * plane + p) * c + ch] = t.data()[n * c * plane + ch * plane + p];
            }
        }
    }
    Tensor::from_vec(out, &[b * plane, c]).expect("row matrix length matches")
}

/// Inverse of [`nchw_to_rows`]. Also used by the plan compiler to transpose
/// fused GEMM output rows back into NCHW.
pub(crate) fn rows_to_nchw(rows: &Tensor, b: usize, c: usize, h: usize, w: usize) -> Tensor {
    assert_eq!(rows.shape(), &[b * h * w, c], "row matrix shape mismatch");
    let plane = h * w;
    let mut out = vec![0.0f32; b * c * plane];
    for n in 0..b {
        for p in 0..plane {
            for ch in 0..c {
                out[n * c * plane + ch * plane + p] = rows.data()[(n * plane + p) * c + ch];
            }
        }
    }
    Tensor::from_vec(out, &[b, c, h, w]).expect("NCHW length matches")
}

/// 2-D convolution with square kernels, implemented as an `im2col` GEMM.
///
/// Weight layout is `[out_channels, in_channels * kernel * kernel]`; bias is
/// `[out_channels]`.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Conv2d, Layer, Mode};
/// use ensembler_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(0);
/// let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::ones(&[2, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geometry: Conv2dGeometry,
    cached_cols: Option<Tensor>,
    cached_input_shape: Option<Vec<usize>>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if a channel count, the kernel size or the stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channel counts must be positive"
        );
        let geometry = Conv2dGeometry::new(kernel, stride, padding);
        let fan_in = in_channels * kernel * kernel;
        let weight = Init::KaimingNormal { fan_in }.tensor(&[out_channels, fan_in], rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geometry,
            cached_cols: None,
            cached_input_shape: None,
        }
    }

    /// Creates a convolution from explicit weight and bias tensors.
    ///
    /// `weight` must be `[out_channels, in_channels * kernel * kernel]` and
    /// `bias` `[out_channels]`. This is what conv+bn folding uses to build
    /// the folded convolution at compile time.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes are inconsistent with `in_channels` and
    /// `geometry`.
    pub fn from_parts(
        weight: Tensor,
        bias: Tensor,
        in_channels: usize,
        geometry: Conv2dGeometry,
    ) -> Self {
        assert_eq!(weight.rank(), 2, "conv weight must be rank-2");
        let out_channels = weight.shape()[0];
        let fan_in = in_channels * geometry.kernel * geometry.kernel;
        assert_eq!(
            weight.shape()[1],
            fan_in,
            "conv weight columns must be in_channels * kernel^2"
        );
        assert_eq!(bias.shape(), &[out_channels], "bias must be [out_channels]");
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_channels,
            out_channels,
            geometry,
            cached_cols: None,
            cached_input_shape: None,
        }
    }

    /// Returns the convolution geometry (kernel, stride, padding).
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geometry
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable view of the weight parameter (used by weight-copy utilities).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Immutable view of the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Output shape for a given NCHW input shape.
    ///
    /// # Panics
    ///
    /// Panics if `input_shape` is not rank-4 or the channel count differs.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 4, "expected NCHW shape");
        assert_eq!(input_shape[1], self.in_channels, "channel mismatch");
        vec![
            input_shape[0],
            self.out_channels,
            self.geometry.output_extent(input_shape[2]),
            self.geometry.output_extent(input_shape[3]),
        ]
    }

    /// Shared forward computation: returns the output and the `im2col`
    /// matrix (which the cached path stores for backward).
    fn run(&self, input: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(input.rank(), 4, "Conv2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d expected {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let out_shape = self.output_shape(input.shape());
        let cols = im2col(input, self.geometry);
        // [B*OH*OW, Cin*K*K] x [Cout, Cin*K*K]^T -> [B*OH*OW, Cout]
        let out_rows = cols.matmul_nt(&self.weight.value);
        let out = rows_to_nchw(
            &out_rows,
            out_shape[0],
            out_shape[1],
            out_shape[2],
            out_shape[3],
        );
        (out.add_channel_bias(&self.bias.value), cols)
    }
}

impl Layer for Conv2d {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        self.run(input).0
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (out, cols) = self.run(input);
        self.cached_cols = Some(cols);
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward on Conv2d");
        let input_shape = self
            .cached_input_shape
            .as_ref()
            .expect("input shape cached by forward");
        let grad_rows = nchw_to_rows(grad_output);
        // dW = dY_rows^T * cols
        let grad_w = grad_rows.matmul_tn(cols);
        self.weight.grad.add_assign(&grad_w);
        self.bias.grad.add_assign(&grad_output.sum_per_channel());
        // dCols = dY_rows * W ; dX = col2im(dCols)
        let grad_cols = grad_rows.matmul(&self.weight.value);
        col2im(
            &grad_cols,
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
            self.geometry,
        )
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn quantize_layer(&self) -> crate::quant::QLayer {
        crate::quant::QLayer::Conv(crate::quant::QConv2d::from_conv(self))
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Conv(self.clone())
    }
}

/// 2-D transposed convolution (a.k.a. deconvolution), the building block of
/// the model-inversion decoder.
///
/// The layer shares its connectivity pattern with a forward [`Conv2d`] of the
/// same geometry: `ConvTranspose2d` maps a `[B, Cin, h, w]` feature map back
/// to the `[B, Cout, H, W]` spatial extent that a forward convolution with
/// this geometry would have consumed to produce `h x w`.
///
/// Weight layout is `[in_channels, out_channels * kernel * kernel]`.
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    geometry: Conv2dGeometry,
    cached_input_rows: Option<Tensor>,
    cached_input_shape: Option<Vec<usize>>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if a channel count, the kernel size or the stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channel counts must be positive"
        );
        let geometry = Conv2dGeometry::new(kernel, stride, padding);
        let fan_in = in_channels;
        let weight = Init::KaimingNormal { fan_in }
            .tensor(&[in_channels, out_channels * kernel * kernel], rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            geometry,
            cached_input_rows: None,
            cached_input_shape: None,
        }
    }

    /// Returns the shared geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geometry
    }

    /// Output shape for a given NCHW input shape.
    ///
    /// # Panics
    ///
    /// Panics if `input_shape` is not rank-4 or the channel count differs.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 4, "expected NCHW shape");
        assert_eq!(input_shape[1], self.in_channels, "channel mismatch");
        vec![
            input_shape[0],
            self.out_channels,
            self.geometry.transposed_output_extent(input_shape[2]),
            self.geometry.transposed_output_extent(input_shape[3]),
        ]
    }

    /// Shared forward computation: returns the output and the input-row
    /// matrix (which the cached path stores for backward).
    fn run(&self, input: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(input.rank(), 4, "ConvTranspose2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "ConvTranspose2d expected {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let out_shape = self.output_shape(input.shape());
        let input_rows = nchw_to_rows(input); // [B*h*w, Cin]
                                              // cols = X_rows * W : [B*h*w, Cout*K*K]
        let cols = input_rows.matmul(&self.weight.value);
        let out = col2im(
            &cols,
            out_shape[0],
            out_shape[1],
            out_shape[2],
            out_shape[3],
            self.geometry,
        );
        (out.add_channel_bias(&self.bias.value), input_rows)
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        self.run(input).0
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (out, input_rows) = self.run(input);
        self.cached_input_rows = Some(input_rows);
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input_rows = self
            .cached_input_rows
            .as_ref()
            .expect("backward called before forward on ConvTranspose2d");
        let input_shape = self
            .cached_input_shape
            .as_ref()
            .expect("input shape cached by forward");
        // grad wrt cols is im2col(grad_output) because forward used col2im.
        let grad_cols = im2col(grad_output, self.geometry); // [B*h*w, Cout*K*K]
                                                            // dW = X_rows^T * grad_cols
        let grad_w = input_rows.matmul_tn(&grad_cols);
        self.weight.grad.add_assign(&grad_w);
        self.bias.grad.add_assign(&grad_output.sum_per_channel());
        // dX_rows = grad_cols * W^T
        let grad_rows = grad_cols.matmul_nt(&self.weight.value);
        rows_to_nchw(
            &grad_rows,
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        )
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv_transpose2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_input_grad, check_layer_param_grads};

    #[test]
    fn row_conversion_round_trips() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let rows = nchw_to_rows(&t);
        assert_eq!(rows.shape(), &[2 * 4 * 5, 3]);
        assert_eq!(rows_to_nchw(&rows, 2, 3, 4, 5), t);
    }

    #[test]
    fn conv_forward_known_values() {
        // Single 2x2 input, one input channel, one output channel, 2x2 kernel
        // of ones, no padding: output is the sum of the input patch.
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        conv.params_mut()[0].value.fill(1.0);
        conv.params_mut()[1].value.fill(0.5);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.item(), 10.5);
    }

    #[test]
    fn conv_same_padding_preserves_spatial_size() {
        let mut rng = Rng::seed_from(1);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let y = conv.forward(&Tensor::ones(&[2, 3, 7, 7]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 8, 7, 7]);
        assert_eq!(conv.output_shape(&[2, 3, 7, 7]), vec![2, 8, 7, 7]);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 8);
    }

    #[test]
    fn strided_conv_downsamples() {
        let mut rng = Rng::seed_from(2);
        let conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let y = conv.forward(&Tensor::ones(&[1, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_input_grad(&mut conv, &[1, 2, 5, 5], 0.0, 3e-2);
        check_layer_param_grads(&mut conv, &[1, 2, 5, 5], 3e-2, 24);
    }

    #[test]
    fn strided_conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(4);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        check_layer_input_grad(&mut conv, &[1, 2, 6, 6], 0.0, 3e-2);
        check_layer_param_grads(&mut conv, &[1, 2, 6, 6], 3e-2, 24);
    }

    #[test]
    fn transposed_conv_inverts_spatial_downsampling() {
        let mut rng = Rng::seed_from(5);
        let deconv = ConvTranspose2d::new(4, 2, 2, 2, 0, &mut rng);
        let y = deconv.forward(&Tensor::ones(&[1, 4, 4, 4]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 8, 8]);
        assert_eq!(deconv.output_shape(&[1, 4, 4, 4]), vec![1, 2, 8, 8]);
    }

    #[test]
    fn transposed_conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(6);
        let mut deconv = ConvTranspose2d::new(2, 2, 3, 1, 1, &mut rng);
        check_layer_input_grad(&mut deconv, &[1, 2, 4, 4], 0.0, 3e-2);
        check_layer_param_grads(&mut deconv, &[1, 2, 4, 4], 3e-2, 24);
    }

    #[test]
    fn strided_transposed_conv_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(7);
        let mut deconv = ConvTranspose2d::new(3, 2, 2, 2, 0, &mut rng);
        check_layer_input_grad(&mut deconv, &[1, 3, 3, 3], 0.0, 3e-2);
        check_layer_param_grads(&mut deconv, &[1, 3, 3, 3], 3e-2, 24);
    }

    #[test]
    fn conv_transpose_is_adjoint_of_conv_with_shared_weights() {
        // With the same geometry and tied weights, <conv(x), y> == <x, convT(y)>.
        let mut rng = Rng::seed_from(8);
        let geometry_kernel = 3;
        let mut conv = Conv2d::new(2, 3, geometry_kernel, 1, 1, &mut rng);
        let mut deconv = ConvTranspose2d::new(3, 2, geometry_kernel, 1, 1, &mut rng);
        // Tie weights: conv weight is [Cout, Cin*K*K]; deconv weight is
        // [Cin_deconv=Cout, Cout_deconv*K*K=Cin*K*K]. They share the layout.
        deconv.params_mut()[0]
            .value
            .data_mut()
            .copy_from_slice(conv.params()[0].value.data());
        // Remove biases so the identity is exact.
        conv.params_mut()[1].value.fill_zero();
        deconv.params_mut()[1].value.fill_zero();

        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| ((i % 11) as f32) * 0.3 - 1.0);
        let y = Tensor::from_fn(&[1, 3, 5, 5], |i| ((i % 7) as f32) * 0.2 - 0.5);
        let lhs = conv.forward(&x, Mode::Eval).dot(&y);
        let rhs = x.dot(&deconv.forward(&y, Mode::Eval));
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }

    #[test]
    #[should_panic(expected = "expected 2 input channels")]
    fn conv_rejects_wrong_channel_count() {
        let mut rng = Rng::seed_from(9);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let _ = conv.forward(&Tensor::ones(&[1, 3, 5, 5]), Mode::Eval);
    }

    #[test]
    fn parameter_counts() {
        let mut rng = Rng::seed_from(10);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        assert_eq!(conv.parameter_count(), 8 * 3 * 9 + 8);
        let deconv = ConvTranspose2d::new(8, 3, 3, 1, 1, &mut rng);
        assert_eq!(deconv.parameter_count(), 8 * 3 * 9 + 3);
        assert_eq!(conv.geometry(), deconv.geometry());
    }
}
