//! Compilation of the lazy graph IR into fused, panic-free execution plans.
//!
//! [`CompiledPlan::compile`] lowers a [`Sequential`] pipeline through
//! [`crate::graph`] and runs two fusion passes over the op list:
//!
//! 1. **Conv+bn folding** ([`FusionConfig::fold_conv_bn`]): an eval-mode
//!    batch norm directly after a convolution is folded into the conv's
//!    weights and bias (`w'_c = w_c * gamma_c / sqrt(var_c + eps)`,
//!    `b'_c = (b_c - mean_c) * gamma_c / sqrt(var_c + eps) + beta_c`),
//!    removing a full pass over the feature map. Folding reassociates float
//!    arithmetic, so outputs match the eager pipeline to a small tolerance
//!    rather than bit-exactly.
//! 2. **Epilogue fusion** ([`FusionConfig::fuse_epilogue`]): the bias add
//!    and a directly following ReLU are applied inside the GEMM epilogue
//!    while the output band is cache-hot
//!    ([`ensembler_tensor::gemm::gemm_nt_fused`]), an eval-mode batch norm
//!    (and the ReLU after it) directly following a conv is merged into the
//!    conv's single output pass, and the int8 conv stages dequantize their
//!    `i32` accumulators, apply bias, the merged batch norm and ReLU, and
//!    transpose into NCHW in one pass (the int8 linear stages keep the
//!    dequantize in the qgemm epilogue,
//!    [`ensembler_tensor::qgemm_nn_dequant`]). Epilogue fusion performs
//!    exactly the eager per-element expressions, so it is bit-exact.
//!
//! Every typed stage validates its input shape first and returns a
//! [`ShapeError`] instead of panicking, so a hostile or corrupt request
//! shape surfaces as a typed error at the pipeline boundary rather than
//! unwinding a server thread.
//!
//! # Examples
//!
//! ```
//! use ensembler_nn::compiler::{CompiledPlan, FusionConfig};
//! use ensembler_nn::{Conv2d, Layer, Mode, Relu, Sequential};
//! use ensembler_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)),
//!     Box::new(Relu::new()),
//! ]);
//! let plan = CompiledPlan::compile(&net, FusionConfig::bit_exact());
//! let x = Tensor::ones(&[2, 3, 8, 8]);
//! let fused = plan.run(&x).unwrap();
//! assert_eq!(fused, net.forward(&x, Mode::Eval));
//! // A hostile shape is a typed error, not a panic:
//! assert!(plan.run(&Tensor::ones(&[2, 5, 8, 8])).is_err());
//! ```

use crate::conv::rows_to_nchw;
use crate::graph::{lower_sequential, GraphOp};
use crate::quant::{QConv2d, QLinear};
use crate::{BatchNorm2d, Conv2d, Layer, Linear, MaxPool2d, Mode, Sequential};
use ensembler_tensor::gemm::{gemm_nt_fused, GemmEpilogue, Parallelism};
use ensembler_tensor::{
    im2col, im2col_i8, qgemm_nn, qgemm_nn_dequant, Conv2dGeometry, QGemmEpilogue, QTensorBatch,
    ShapeError, Tensor,
};

/// Which fusion passes a compiled plan applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// Fold eval-mode batch norms into the preceding convolution's weights.
    /// Reassociates float math: outputs match eager to a tolerance, not
    /// bit-exactly.
    pub fold_conv_bn: bool,
    /// Apply bias (and a directly following batch norm and ReLU) in the
    /// conv/GEMM output pass and keep int8 `i32` accumulators live through
    /// a fused dequantize. Bit-exact with respect to the eager pipeline.
    pub fuse_epilogue: bool,
}

impl FusionConfig {
    /// No fusion: the plan validates shapes and then runs each layer's own
    /// eager forward. The baseline the `fusion` benchmarks compare against.
    pub fn none() -> Self {
        Self {
            fold_conv_bn: false,
            fuse_epilogue: false,
        }
    }

    /// Epilogue fusion only — every optimization that is bit-exact with the
    /// eager pipeline. The default for serving pipelines.
    pub fn bit_exact() -> Self {
        Self {
            fold_conv_bn: false,
            fuse_epilogue: true,
        }
    }

    /// All passes, including conv+bn folding (documented tolerance vs eager).
    pub fn full() -> Self {
        Self {
            fold_conv_bn: true,
            fuse_epilogue: true,
        }
    }
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self::bit_exact()
    }
}

/// Folds an eval-mode [`BatchNorm2d`] into the preceding [`Conv2d`],
/// producing a single convolution computing `bn(conv(x))` with the running
/// statistics frozen.
///
/// # Panics
///
/// Panics if the batch norm's channel count differs from the convolution's
/// output channels (the fold pass only calls this when they match).
pub fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Conv2d {
    let cout = conv.out_channels();
    assert_eq!(bn.channels(), cout, "bn channels must match conv output");
    let fan_in = conv.weight().value.shape()[1];
    let mut weight = conv.weight().value.data().to_vec();
    let mut bias = vec![0.0f32; cout];
    let gamma = bn.gamma().value.data();
    let beta = bn.beta().value.data();
    let mean = bn.running_mean().data();
    let var = bn.running_var().data();
    let conv_bias = conv.bias().value.data();
    for c in 0..cout {
        let inv_std = 1.0 / (var[c] + bn.eps()).sqrt();
        let scale = gamma[c] * inv_std;
        for v in &mut weight[c * fan_in..(c + 1) * fan_in] {
            *v *= scale;
        }
        bias[c] = (conv_bias[c] - mean[c]) * scale + beta[c];
    }
    Conv2d::from_parts(
        Tensor::from_vec(weight, &[cout, fan_in]).expect("folded weight keeps its shape"),
        Tensor::from_vec(bias, &[cout]).expect("folded bias is [out_channels]"),
        conv.in_channels(),
        conv.geometry(),
    )
}

/// The fold pass: rewrites `Conv, BatchNorm` pairs into a single folded
/// conv, recursing into residual branches.
fn fold_pass(ops: Vec<GraphOp>) -> Vec<GraphOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut iter = ops.into_iter().peekable();
    while let Some(op) = iter.next() {
        match op {
            GraphOp::Conv(conv) => {
                let foldable = matches!(
                    iter.peek(),
                    Some(GraphOp::BatchNorm(bn)) if bn.channels() == conv.out_channels()
                );
                if foldable {
                    let Some(GraphOp::BatchNorm(bn)) = iter.next() else {
                        unreachable!("peeked a batch norm")
                    };
                    out.push(GraphOp::Conv(fold_conv_bn(&conv, &bn)));
                } else {
                    out.push(GraphOp::Conv(conv));
                }
            }
            GraphOp::Residual { main, shortcut } => out.push(GraphOp::Residual {
                main: fold_pass(main),
                shortcut: shortcut.map(fold_pass),
            }),
            GraphOp::Sequence(seq) => out.push(GraphOp::Sequence(fold_pass(seq))),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared shape validation (typed errors instead of the eager asserts)
// ---------------------------------------------------------------------------

fn expect_rank4(shape: &[usize], what: &str) -> Result<(usize, usize, usize, usize), ShapeError> {
    if let [b, c, h, w] = *shape {
        Ok((b, c, h, w))
    } else {
        Err(ShapeError::new(format!(
            "{what} expects NCHW input, got rank-{} shape {shape:?}",
            shape.len()
        )))
    }
}

fn check_conv_input(
    shape: &[usize],
    in_channels: usize,
    geometry: Conv2dGeometry,
    what: &str,
) -> Result<(usize, usize, usize), ShapeError> {
    let (b, c, h, w) = expect_rank4(shape, what)?;
    if c != in_channels {
        return Err(ShapeError::new(format!(
            "{what} expected {in_channels} input channels, got {c}"
        )));
    }
    let k = geometry.kernel;
    let p = geometry.padding;
    if h + 2 * p < k || w + 2 * p < k {
        return Err(ShapeError::new(format!(
            "{what} kernel {k} exceeds padded input extent ({h}x{w}, padding {p})"
        )));
    }
    let oh = (h + 2 * p - k) / geometry.stride + 1;
    let ow = (w + 2 * p - k) / geometry.stride + 1;
    Ok((b, oh, ow))
}

fn check_linear_input(
    shape: &[usize],
    in_features: usize,
    what: &str,
) -> Result<usize, ShapeError> {
    if let [batch, features] = *shape {
        if features == in_features {
            Ok(batch)
        } else {
            Err(ShapeError::new(format!(
                "{what} expected {in_features} input features, got {features}"
            )))
        }
    } else {
        Err(ShapeError::new(format!(
            "{what} expects [batch, features] input, got rank-{} shape {shape:?}",
            shape.len()
        )))
    }
}

fn relu_mask(x: &Tensor) -> Tensor {
    let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    x.mul(&mask)
}

/// Turns `[b*oh*ow, c]` GEMM rows into an NCHW tensor while applying a merged
/// eval-mode batch norm (and optionally the mask-multiply ReLU) in the same
/// pass. Every per-element expression matches the standalone
/// [`BatchNorm2d`]/ReLU forwards exactly, so the merge is bit-exact; the win
/// is running one pass over the feature map instead of three.
fn bn_relu_rows_to_nchw(
    rows: &[f32],
    b: usize,
    c: usize,
    oh: usize,
    ow: usize,
    bn: &BatchNorm2d,
    relu: bool,
) -> Tensor {
    let plane = oh * ow;
    debug_assert_eq!(rows.len(), b * plane * c);
    let mean = bn.running_mean().data();
    let var = bn.running_var().data();
    let gamma = bn.gamma().value.data();
    let beta = bn.beta().value.data();
    let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + bn.eps()).sqrt()).collect();
    let mut out = vec![0.0f32; b * c * plane];
    for n in 0..b {
        for p in 0..plane {
            let row = &rows[(n * plane + p) * c..(n * plane + p + 1) * c];
            for (ch, &v) in row.iter().enumerate() {
                let mut t = gamma[ch] * ((v - mean[ch]) * inv_std[ch]) + beta[ch];
                if relu {
                    t *= if t > 0.0 { 1.0 } else { 0.0 };
                }
                out[n * c * plane + ch * plane + p] = t;
            }
        }
    }
    Tensor::from_vec(out, &[b, c, oh, ow]).expect("output sized to NCHW shape")
}

// ---------------------------------------------------------------------------
// f32 plan
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Stage {
    /// Convolution; `bn` records a directly following eval-mode batch norm
    /// and `relu` a ReLU after it, both fused into the conv's output pass.
    /// The batch norm applies the eager per-element expression
    /// `gamma*((x-mean)*inv_std)+beta` and the ReLU the eager mask multiply,
    /// so the merge is bit-exact with the standalone layers.
    Conv {
        conv: Conv2d,
        bn: Option<Box<BatchNorm2d>>,
        relu: bool,
    },
    BatchNorm(BatchNorm2d),
    Relu,
    MaxPool(MaxPool2d),
    GlobalAvgPool,
    Flatten,
    Linear {
        linear: Linear,
        relu: bool,
    },
    Residual {
        main: Vec<Stage>,
        shortcut: Option<Vec<Stage>>,
    },
    Opaque(Box<dyn Layer>),
}

impl Stage {
    fn run(&self, input: &Tensor, config: FusionConfig) -> Result<Tensor, ShapeError> {
        match self {
            Stage::Conv { conv, bn, relu } => {
                let (b, oh, ow) =
                    check_conv_input(input.shape(), conv.in_channels(), conv.geometry(), "conv")?;
                if !config.fuse_epilogue {
                    return Ok(conv.forward(input, Mode::Eval));
                }
                let g = conv.geometry();
                let cols = im2col(input, g);
                let m = b * oh * ow;
                let k = conv.in_channels() * g.kernel * g.kernel;
                let n = conv.out_channels();
                let rows = gemm_nt_fused(
                    cols.data(),
                    conv.weight().value.data(),
                    m,
                    k,
                    n,
                    Parallelism::Auto,
                    GemmEpilogue {
                        bias: Some(conv.bias().value.data()),
                        // With a merged batch norm the ReLU comes after it,
                        // so it moves out of the GEMM epilogue into the
                        // combined output pass below.
                        relu: *relu && bn.is_none(),
                    },
                );
                match bn {
                    None => {
                        let rows = Tensor::from_vec(rows, &[m, n]).expect("fused rows sized m*n");
                        Ok(rows_to_nchw(&rows, b, n, oh, ow))
                    }
                    Some(bn) => Ok(bn_relu_rows_to_nchw(&rows, b, n, oh, ow, bn, *relu)),
                }
            }
            Stage::BatchNorm(bn) => {
                let (_, c, _, _) = expect_rank4(input.shape(), "batch_norm")?;
                if c != bn.channels() {
                    return Err(ShapeError::new(format!(
                        "batch_norm expected {} channels, got {c}",
                        bn.channels()
                    )));
                }
                Ok(bn.forward(input, Mode::Eval))
            }
            Stage::Relu => Ok(relu_mask(input)),
            Stage::MaxPool(pool) => {
                let (_, _, h, w) = expect_rank4(input.shape(), "max_pool")?;
                let k = pool.window();
                if h % k != 0 || w % k != 0 {
                    return Err(ShapeError::new(format!(
                        "max_pool window {k} must divide spatial dims ({h}x{w})"
                    )));
                }
                Ok(pool.forward(input, Mode::Eval))
            }
            Stage::GlobalAvgPool => {
                expect_rank4(input.shape(), "global_avg_pool")?;
                Ok(crate::GlobalAvgPool::new().forward(input, Mode::Eval))
            }
            Stage::Flatten => {
                if input.rank() < 1 {
                    return Err(ShapeError::new("flatten expects at least rank-1 input"));
                }
                Ok(input.flatten_batch())
            }
            Stage::Linear { linear, relu } => {
                let m = check_linear_input(input.shape(), linear.in_features(), "linear")?;
                if !config.fuse_epilogue {
                    return Ok(linear.forward(input, Mode::Eval));
                }
                let n = linear.out_features();
                let out = gemm_nt_fused(
                    input.data(),
                    linear.weight().value.data(),
                    m,
                    linear.in_features(),
                    n,
                    Parallelism::Auto,
                    GemmEpilogue {
                        bias: Some(linear.bias().value.data()),
                        relu: *relu,
                    },
                );
                Ok(Tensor::from_vec(out, &[m, n]).expect("fused output sized m*n"))
            }
            Stage::Residual { main, shortcut } => {
                let mut x = input.clone();
                for stage in main {
                    x = stage.run(&x, config)?;
                }
                let skip = match shortcut {
                    Some(stages) => {
                        let mut s = input.clone();
                        for stage in stages {
                            s = stage.run(&s, config)?;
                        }
                        s
                    }
                    None => input.clone(),
                };
                if x.shape() != skip.shape() {
                    return Err(ShapeError::new(format!(
                        "residual branches disagree: main {:?} vs shortcut {:?}",
                        x.shape(),
                        skip.shape()
                    )));
                }
                Ok(relu_mask(&x.add(&skip)))
            }
            Stage::Opaque(layer) => Ok(layer.forward(input, Mode::Eval)),
        }
    }
}

fn build_stages(ops: &[GraphOp], config: FusionConfig) -> Vec<Stage> {
    let mut stages = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let fused_relu = config.fuse_epilogue && matches!(ops.get(i + 1), Some(GraphOp::Relu));
        match &ops[i] {
            GraphOp::Conv(conv) => {
                // Merge a following batch norm (channel counts permitting)
                // and then a following ReLU into the conv's output pass.
                let fused_bn = if config.fuse_epilogue {
                    match ops.get(i + 1) {
                        Some(GraphOp::BatchNorm(bn)) if bn.channels() == conv.out_channels() => {
                            Some(Box::new(bn.clone()))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                let after_bn = i + 1 + usize::from(fused_bn.is_some());
                let fused_relu =
                    config.fuse_epilogue && matches!(ops.get(after_bn), Some(GraphOp::Relu));
                stages.push(Stage::Conv {
                    conv: conv.clone(),
                    bn: fused_bn,
                    relu: fused_relu,
                });
                i = after_bn + usize::from(fused_relu);
                continue;
            }
            GraphOp::Linear(linear) => {
                stages.push(Stage::Linear {
                    linear: linear.clone(),
                    relu: fused_relu,
                });
                i += 1 + usize::from(fused_relu);
                continue;
            }
            GraphOp::BatchNorm(bn) => stages.push(Stage::BatchNorm(bn.clone())),
            GraphOp::Relu => stages.push(Stage::Relu),
            GraphOp::MaxPool(k) => stages.push(Stage::MaxPool(MaxPool2d::new(*k))),
            GraphOp::GlobalAvgPool => stages.push(Stage::GlobalAvgPool),
            GraphOp::Flatten => stages.push(Stage::Flatten),
            GraphOp::Residual { main, shortcut } => stages.push(Stage::Residual {
                main: build_stages(main, config),
                shortcut: shortcut.as_ref().map(|s| build_stages(s, config)),
            }),
            GraphOp::Sequence(seq) => stages.extend(build_stages(seq, config)),
            GraphOp::Opaque(layer) => stages.push(Stage::Opaque(layer.clone())),
        }
        i += 1;
    }
    stages
}

/// A fused `f32` execution plan, compiled once per pipeline and shared
/// (immutably) across request threads.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    stages: Vec<Stage>,
    config: FusionConfig,
}

impl CompiledPlan {
    /// Lowers `net` to the graph IR, runs the fusion passes selected by
    /// `config` and returns the executable plan.
    pub fn compile(net: &Sequential, config: FusionConfig) -> Self {
        let mut ops = lower_sequential(net);
        if config.fold_conv_bn {
            ops = fold_pass(ops);
        }
        Self {
            stages: build_stages(&ops, config),
            config,
        }
    }

    /// Runs the plan on an input batch (inference semantics).
    ///
    /// Returns a [`ShapeError`] — never panics — when the input shape does
    /// not fit the pipeline's typed stages.
    pub fn run(&self, input: &Tensor) -> Result<Tensor, ShapeError> {
        let mut x = input.clone();
        for stage in &self.stages {
            x = stage.run(&x, self.config)?;
        }
        Ok(x)
    }

    /// The fusion configuration the plan was compiled with.
    pub fn config(&self) -> FusionConfig {
        self.config
    }

    /// Number of top-level stages after fusion (a fused conv+relu counts
    /// once).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

// ---------------------------------------------------------------------------
// int8 plan
// ---------------------------------------------------------------------------

/// Which ReLU formulation (if any) is merged into a fused int8 conv's
/// output pass. The eager quantized pipeline runs standalone ReLUs as the
/// `f32` mask multiply but residual-internal ones as `max(0,·)`; the merged
/// pass replicates whichever applies so the plan stays bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QRelu {
    None,
    Mask,
    Max,
}

#[derive(Debug, Clone)]
enum QStage {
    /// Int8 convolution with the dequantize, bias, a merged eval-mode batch
    /// norm and the following ReLU all applied in one pass over the `i32`
    /// accumulators while transposing into NCHW — the eager pipeline's
    /// per-element expressions, one feature-map pass instead of up to four.
    Conv {
        conv: QConv2d,
        bn: Option<BatchNorm2d>,
        relu: QRelu,
    },
    Linear {
        linear: QLinear,
        relu: bool,
    },
    BatchNorm(BatchNorm2d),
    /// Standalone ReLU in the mask-multiply formulation, matching the
    /// `f32` fallback layer the eager quantized pipeline runs.
    ReluMask,
    /// ReLU as `max(0, ·)`, matching the eager quantized residual block.
    ReluMax,
    MaxPool(MaxPool2d),
    GlobalAvgPool,
    Flatten,
    Residual {
        main: Vec<QStage>,
        shortcut: Option<Vec<QStage>>,
    },
    Opaque(Box<dyn Layer>),
}

impl QStage {
    fn run(&self, input: &Tensor, config: FusionConfig) -> Result<Tensor, ShapeError> {
        match self {
            QStage::Conv { conv, bn, relu } => {
                let (b, oh, ow) =
                    check_conv_input(input.shape(), conv.in_channels(), conv.geometry(), "q_conv")?;
                if !config.fuse_epilogue {
                    return Ok(conv.forward(input));
                }
                let g = conv.geometry();
                let (c, h, w) = (input.shape()[1], input.shape()[2], input.shape()[3]);
                let plane = oh * ow;
                let fan_in = c * g.kernel * g.kernel;
                let out_c = conv.out_channels();
                let q = QTensorBatch::quantize_batch(input);
                let cols = im2col_i8(q.data(), b, c, h, w, g);
                let acc = qgemm_nn(&cols, conv.weight_t(), b * plane, fan_in, out_c);

                // One pass over the i32 accumulators: dequantize, bias, the
                // merged batch norm and ReLU, transposed straight into NCHW.
                // Each expression matches the eager stage it replaces.
                let bias = conv.bias().data();
                let bn_params = bn.as_ref().map(|bn| {
                    let inv_std: Vec<f32> = bn
                        .running_var()
                        .data()
                        .iter()
                        .map(|v| 1.0 / (v + bn.eps()).sqrt())
                        .collect();
                    (
                        bn.running_mean().data(),
                        inv_std,
                        bn.gamma().value.data(),
                        bn.beta().value.data(),
                    )
                });
                let mut out = vec![0.0f32; b * out_c * plane];
                for n in 0..b {
                    let rescale = q.scales()[n] * conv.weight_scale();
                    for p in 0..plane {
                        let row = &acc[(n * plane + p) * out_c..(n * plane + p + 1) * out_c];
                        for (co, &a) in row.iter().enumerate() {
                            let mut t = a as f32 * rescale + bias[co];
                            if let Some((mean, inv_std, gamma, beta)) = &bn_params {
                                t = gamma[co] * ((t - mean[co]) * inv_std[co]) + beta[co];
                            }
                            t = match relu {
                                QRelu::None => t,
                                QRelu::Mask => t * if t > 0.0 { 1.0 } else { 0.0 },
                                QRelu::Max => t.max(0.0),
                            };
                            out[n * out_c * plane + co * plane + p] = t;
                        }
                    }
                }
                Ok(Tensor::from_vec(out, &[b, out_c, oh, ow]).expect("output sized to NCHW shape"))
            }
            QStage::Linear { linear, relu } => {
                let batch = check_linear_input(input.shape(), linear.in_features(), "q_linear")?;
                if !config.fuse_epilogue {
                    return Ok(linear.forward(input));
                }
                let q = QTensorBatch::quantize_batch(input);
                let row_scales: Vec<f32> = q
                    .scales()
                    .iter()
                    .map(|s| s * linear.weight_scale())
                    .collect();
                let out = qgemm_nn_dequant(
                    q.data(),
                    linear.weight_t(),
                    batch,
                    linear.in_features(),
                    linear.out_features(),
                    Parallelism::Auto,
                    QGemmEpilogue {
                        row_scales: &row_scales,
                        bias: Some(linear.bias().data()),
                        relu: *relu,
                    },
                );
                Ok(Tensor::from_vec(out, &[batch, linear.out_features()])
                    .expect("fused output sized batch*out"))
            }
            QStage::BatchNorm(bn) => {
                let (_, c, _, _) = expect_rank4(input.shape(), "batch_norm")?;
                if c != bn.channels() {
                    return Err(ShapeError::new(format!(
                        "batch_norm expected {} channels, got {c}",
                        bn.channels()
                    )));
                }
                Ok(bn.forward(input, Mode::Eval))
            }
            QStage::ReluMask => Ok(relu_mask(input)),
            QStage::ReluMax => Ok(input.map(|v| v.max(0.0))),
            QStage::MaxPool(pool) => {
                let (_, _, h, w) = expect_rank4(input.shape(), "max_pool")?;
                let k = pool.window();
                if h % k != 0 || w % k != 0 {
                    return Err(ShapeError::new(format!(
                        "max_pool window {k} must divide spatial dims ({h}x{w})"
                    )));
                }
                Ok(pool.forward(input, Mode::Eval))
            }
            QStage::GlobalAvgPool => {
                expect_rank4(input.shape(), "global_avg_pool")?;
                Ok(crate::GlobalAvgPool::new().forward(input, Mode::Eval))
            }
            QStage::Flatten => {
                if input.rank() < 1 {
                    return Err(ShapeError::new("flatten expects at least rank-1 input"));
                }
                Ok(input.flatten_batch())
            }
            QStage::Residual { main, shortcut } => {
                let mut x = input.clone();
                for stage in main {
                    x = stage.run(&x, config)?;
                }
                let skip = match shortcut {
                    Some(stages) => {
                        let mut s = input.clone();
                        for stage in stages {
                            s = stage.run(&s, config)?;
                        }
                        s
                    }
                    None => input.clone(),
                };
                if x.shape() != skip.shape() {
                    return Err(ShapeError::new(format!(
                        "residual branches disagree: main {:?} vs shortcut {:?}",
                        x.shape(),
                        skip.shape()
                    )));
                }
                Ok(x.add(&skip).map(|v| v.max(0.0)))
            }
            QStage::Opaque(layer) => Ok(layer.forward(input, Mode::Eval)),
        }
    }
}

/// Builds int8 stages. `in_residual` tracks whether we are inside a
/// residual branch, where the eager quantized block runs its ReLUs as
/// `max(0, ·)` while standalone ReLUs use the `f32` layer's mask multiply —
/// the merged conv output pass replicates whichever flavor applies, so the
/// int8 plan reproduces [`crate::quant::QSequential`] bit-for-bit either
/// way. A directly following eval-mode batch norm is merged into the same
/// pass (the linear stages keep the dequantize in the qgemm epilogue
/// instead — nothing follows the classifier head).
fn build_qstages(ops: &[GraphOp], config: FusionConfig, in_residual: bool) -> Vec<QStage> {
    let mut stages = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            GraphOp::Conv(conv) => {
                let fused_bn = if config.fuse_epilogue {
                    match ops.get(i + 1) {
                        Some(GraphOp::BatchNorm(bn)) if bn.channels() == conv.out_channels() => {
                            Some(bn.clone())
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                let after_bn = i + 1 + usize::from(fused_bn.is_some());
                let fused_relu =
                    config.fuse_epilogue && matches!(ops.get(after_bn), Some(GraphOp::Relu));
                stages.push(QStage::Conv {
                    conv: QConv2d::from_conv(conv),
                    bn: fused_bn,
                    relu: match (fused_relu, in_residual) {
                        (false, _) => QRelu::None,
                        (true, true) => QRelu::Max,
                        (true, false) => QRelu::Mask,
                    },
                });
                i = after_bn + usize::from(fused_relu);
                continue;
            }
            GraphOp::Linear(linear) => {
                let fused_relu = config.fuse_epilogue
                    && in_residual
                    && matches!(ops.get(i + 1), Some(GraphOp::Relu));
                stages.push(QStage::Linear {
                    linear: QLinear::from_linear(linear),
                    relu: fused_relu,
                });
                i += 1 + usize::from(fused_relu);
                continue;
            }
            GraphOp::BatchNorm(bn) => stages.push(QStage::BatchNorm(bn.clone())),
            GraphOp::Relu => stages.push(if in_residual {
                QStage::ReluMax
            } else {
                QStage::ReluMask
            }),
            GraphOp::MaxPool(k) => stages.push(QStage::MaxPool(MaxPool2d::new(*k))),
            GraphOp::GlobalAvgPool => stages.push(QStage::GlobalAvgPool),
            GraphOp::Flatten => stages.push(QStage::Flatten),
            GraphOp::Residual { main, shortcut } => stages.push(QStage::Residual {
                main: build_qstages(main, config, true),
                shortcut: shortcut.as_ref().map(|s| build_qstages(s, config, true)),
            }),
            GraphOp::Sequence(seq) => stages.extend(build_qstages(seq, config, in_residual)),
            GraphOp::Opaque(layer) => stages.push(QStage::Opaque(layer.clone())),
        }
        i += 1;
    }
    stages
}

/// A fused int8 execution plan: the quantized counterpart of
/// [`CompiledPlan`], with weights quantized once at compile time (after any
/// conv+bn folding) and the dequantize kept in the GEMM epilogue.
#[derive(Debug, Clone)]
pub struct QCompiledPlan {
    stages: Vec<QStage>,
    config: FusionConfig,
}

impl QCompiledPlan {
    /// Lowers `net`, runs the fusion passes on the `f32` graph, then
    /// quantizes the (possibly folded) weights into int8 stages.
    pub fn compile(net: &Sequential, config: FusionConfig) -> Self {
        let mut ops = lower_sequential(net);
        if config.fold_conv_bn {
            ops = fold_pass(ops);
        }
        Self {
            stages: build_qstages(&ops, config, false),
            config,
        }
    }

    /// Runs the plan on an input batch (inference semantics).
    ///
    /// Returns a [`ShapeError`] — never panics — when the input shape does
    /// not fit the pipeline's typed stages.
    pub fn run(&self, input: &Tensor) -> Result<Tensor, ShapeError> {
        let mut x = input.clone();
        for stage in &self.stages {
            x = stage.run(&x, self.config)?;
        }
        Ok(x)
    }

    /// The fusion configuration the plan was compiled with.
    pub fn config(&self) -> FusionConfig {
        self.config
    }

    /// Number of top-level stages after fusion.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_body, build_full_network, ResNetConfig};
    use crate::quant::QSequential;
    use crate::{Flatten, GlobalAvgPool, Relu, ResidualBlock};
    use ensembler_tensor::Rng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    /// A small conv net exercising every typed stage.
    fn small_net(rng: &mut Rng) -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(ResidualBlock::new(8, 16, 2, rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(16, 5, rng)),
        ])
    }

    #[test]
    fn bit_exact_plan_matches_eager_forward_exactly() {
        let mut rng = Rng::seed_from(0);
        let net = small_net(&mut rng);
        let x = Tensor::from_fn(&[3, 3, 8, 8], |_| rng.uniform(-1.0, 1.0));
        let eager = net.forward(&x, Mode::Eval);
        for config in [FusionConfig::none(), FusionConfig::bit_exact()] {
            let plan = CompiledPlan::compile(&net, config);
            assert_eq!(
                plan.run(&x).unwrap(),
                eager,
                "config {config:?} must be bit-exact"
            );
        }
    }

    #[test]
    fn fusion_merges_conv_relu_pairs() {
        let mut rng = Rng::seed_from(1);
        let net = small_net(&mut rng);
        let unfused = CompiledPlan::compile(&net, FusionConfig::none());
        let fused = CompiledPlan::compile(&net, FusionConfig::bit_exact());
        // conv+relu merge into one stage; everything else stays.
        assert_eq!(unfused.stage_count(), 7);
        assert_eq!(fused.stage_count(), 6);
        assert_eq!(fused.config(), FusionConfig::bit_exact());
    }

    #[test]
    fn fusion_merges_conv_bn_relu_triples_bit_exactly() {
        // A conv -> bn -> relu chain collapses into ONE stage under
        // bit_exact (the bn is merged into the conv output pass, not
        // folded into the weights) and still reproduces eager bit-for-bit.
        let mut rng = Rng::seed_from(9);
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(Relu::new()),
        ]);
        // Non-trivial running stats, so the merged bn is not an identity.
        let warm = Tensor::from_fn(&[4, 3, 8, 8], |_| rng.normal_with(0.4, 1.3));
        let _ = net.forward_cached(&warm, Mode::Train);
        let fused = CompiledPlan::compile(&net, FusionConfig::bit_exact());
        assert_eq!(fused.stage_count(), 1);
        assert_eq!(
            CompiledPlan::compile(&net, FusionConfig::none()).stage_count(),
            3
        );
        let x = Tensor::from_fn(&[2, 3, 8, 8], |_| rng.uniform(-1.0, 1.0));
        assert_eq!(fused.run(&x).unwrap(), net.forward(&x, Mode::Eval));
        // Same for the quantized plan vs the eager quantized pipeline.
        let qfused = QCompiledPlan::compile(&net, FusionConfig::bit_exact());
        assert_eq!(qfused.stage_count(), 1);
        assert_eq!(
            qfused.run(&x).unwrap(),
            QSequential::from_sequential(&net).forward(&x)
        );
    }

    #[test]
    fn folded_plan_tracks_eager_forward_within_tolerance() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(2);
        let net = build_full_network(&config, &mut rng);
        // Make the running statistics non-trivial so the fold actually works.
        let x = Tensor::from_fn(&[2, 3, 8, 8], |_| rng.uniform(-1.0, 1.0));
        let eager = net.forward(&x, Mode::Eval);
        let plan = CompiledPlan::compile(&net, FusionConfig::full());
        assert_close(&plan.run(&x).unwrap(), &eager, 1e-4);
    }

    #[test]
    fn fold_conv_bn_reproduces_the_two_layer_computation() {
        let mut rng = Rng::seed_from(3);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let mut bn = BatchNorm2d::new(4);
        // Drive the running stats away from the (0, 1) init.
        for _ in 0..50 {
            let x = Tensor::from_fn(&[4, 4, 5, 5], |_| rng.normal_with(0.7, 1.8));
            let _ = bn.forward_cached(&x, Mode::Train);
        }
        let folded = fold_conv_bn(&conv, &bn);
        let x = Tensor::from_fn(&[2, 2, 6, 6], |_| rng.uniform(-1.0, 1.0));
        let two_layer = bn.forward(&conv.forward(&x, Mode::Eval), Mode::Eval);
        assert_close(&folded.forward(&x, Mode::Eval), &two_layer, 1e-4);
    }

    #[test]
    fn quantized_plan_matches_eager_quantized_forward_exactly() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(4);
        let body = build_body(&config, &mut rng);
        let qbody = QSequential::from_sequential(&body);
        let head = config.head_output_shape();
        let x = Tensor::from_fn(&[3, head[0], head[1], head[2]], |_| rng.uniform(-1.0, 1.0));
        let eager = qbody.forward(&x);
        for config in [FusionConfig::none(), FusionConfig::bit_exact()] {
            let plan = QCompiledPlan::compile(&body, config);
            assert_eq!(
                plan.run(&x).unwrap(),
                eager,
                "config {config:?} must reproduce the eager int8 pipeline"
            );
        }
    }

    #[test]
    fn folded_quantized_plan_tracks_the_f32_forward() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(5);
        let body = build_body(&config, &mut rng);
        let head = config.head_output_shape();
        let x = Tensor::from_fn(&[2, head[0], head[1], head[2]], |_| rng.uniform(-1.0, 1.0));
        let f32_eager = body.forward(&x, Mode::Eval);
        let plan = QCompiledPlan::compile(&body, FusionConfig::full());
        // int8 quantization noise dominates; same tolerance as the eager
        // quantized-body test.
        assert_close(&plan.run(&x).unwrap(), &f32_eager, 0.25);
        assert!(plan.stage_count() > 0);
        assert_eq!(plan.config(), FusionConfig::full());
    }

    #[test]
    fn hostile_shapes_return_typed_errors_not_panics() {
        let mut rng = Rng::seed_from(6);
        let net = small_net(&mut rng);
        for config in [
            FusionConfig::none(),
            FusionConfig::bit_exact(),
            FusionConfig::full(),
        ] {
            let plan = CompiledPlan::compile(&net, config);
            let qplan = QCompiledPlan::compile(&net, config);
            // Wrong rank, wrong channel count, pool-indivisible extent and
            // a kernel larger than the padded input.
            for bad in [
                Tensor::ones(&[2, 3]),
                Tensor::ones(&[1, 5, 8, 8]),
                Tensor::ones(&[1, 3, 5, 5]),
                Tensor::ones(&[1, 3, 0, 0]),
            ] {
                let err = plan.run(&bad).unwrap_err();
                assert!(!err.message().is_empty());
                let qerr = qplan.run(&bad).unwrap_err();
                assert!(!qerr.message().is_empty());
            }
        }
    }

    #[test]
    fn shape_errors_carry_descriptive_messages() {
        let mut rng = Rng::seed_from(7);
        let net = Sequential::new(vec![Box::new(Conv2d::new(1, 2, 1, 1, 0, &mut rng))]);
        let plan = CompiledPlan::compile(&net, FusionConfig::bit_exact());
        let err = plan.run(&Tensor::ones(&[1, 2, 4, 4])).unwrap_err();
        assert!(
            err.message().contains("expected 1 input channels"),
            "unexpected message: {}",
            err.message()
        );
    }
}
