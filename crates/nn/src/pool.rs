//! Spatial pooling layers.

use crate::{Layer, Mode};
use ensembler_tensor::Tensor;

/// Max pooling with a square window and matching stride (no padding).
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Layer, MaxPool2d, Mode};
/// use ensembler_tensor::Tensor;
///
/// let pool = MaxPool2d::new(2);
/// let y = pool.forward(&Tensor::ones(&[1, 3, 8, 8]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cached_argmax: Option<Vec<usize>>,
    cached_input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window size (stride = window).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be positive");
        Self {
            window,
            cached_argmax: None,
            cached_input_shape: None,
        }
    }

    /// Returns the pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Shared forward computation: returns the output and the argmax map
    /// (which the cached path stores for backward).
    fn run(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        assert_eq!(input.rank(), 4, "MaxPool2d expects NCHW input");
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let k = self.window;
        assert!(
            h % k == 0 && w % k == 0,
            "MaxPool2d window {k} must divide spatial dims ({h}x{w})"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        let plane = h * w;
        for n in 0..b {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * k + ky;
                                let ix = ox * k + kx;
                                let idx = n * c * plane + ch * plane + iy * w + ix;
                                let v = input.data()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((n * c + ch) * oh + oy) * ow + ox;
                        out.data_mut()[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        (out, argmax)
    }
}

impl Layer for MaxPool2d {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        self.run(input).0
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let (out, argmax) = self.run(input);
        self.cached_argmax = Some(argmax);
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            .expect("backward called before forward on MaxPool2d");
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("input shape cached by forward");
        assert_eq!(grad_output.len(), argmax.len(), "grad_output size mismatch");
        let mut grad_input = Tensor::zeros(shape);
        for (out_idx, &src_idx) in argmax.iter().enumerate() {
            grad_input.data_mut()[src_idx] += grad_output.data()[out_idx];
        }
        grad_input
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::MaxPool(self.window)
    }
}

/// Global average pooling: collapses each feature map to its mean, producing
/// `[B, C]` features for the classifier tail.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    cached_input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self {
            cached_input_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "GlobalAvgPool expects NCHW input");
        let [b, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let plane = (h * w) as f32;
        let sums = input.sum_per_channel_per_sample();
        Tensor::from_vec(sums.data().iter().map(|s| s / plane).collect(), &[b, c])
            .expect("pooled output has B*C elements")
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.cached_input_shape = Some(input.shape().to_vec());
        self.forward(input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("backward called before forward on GlobalAvgPool");
        let [b, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        assert_eq!(grad_output.shape(), &[b, c], "grad_output must be [B, C]");
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut grad_input = Tensor::zeros(shape);
        for n in 0..b {
            for ch in 0..c {
                let g = grad_output.data()[n * c + ch] * scale;
                let base = n * c * plane + ch * plane;
                for v in &mut grad_input.data_mut()[base..base + plane] {
                    *v = g;
                }
            }
        }
        grad_input
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::GlobalAvgPool
    }
}

/// Extension used by [`GlobalAvgPool`]: per-sample per-channel sums.
trait PerSampleChannelSum {
    fn sum_per_channel_per_sample(&self) -> Tensor;
}

impl PerSampleChannelSum for Tensor {
    fn sum_per_channel_per_sample(&self) -> Tensor {
        let [b, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        let plane = h * w;
        let mut out = vec![0.0f32; b * c];
        for n in 0..b {
            for ch in 0..c {
                let base = n * c * plane + ch * plane;
                out[n * c + ch] = self.data()[base..base + plane].iter().sum();
            }
        }
        Tensor::from_vec(out, &[b, c]).expect("length equals B*C")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_input_grad;

    #[test]
    fn max_pool_selects_maxima() {
        let pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(pool.window(), 2);
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let _ = pool.forward_cached(&x, Mode::Eval);
        let g = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "must divide spatial dims")]
    fn max_pool_requires_divisible_extent() {
        let pool = MaxPool2d::new(2);
        let _ = pool.forward(&Tensor::ones(&[1, 1, 3, 3]), Mode::Eval);
    }

    #[test]
    fn global_avg_pool_means_and_shape() {
        let pool = GlobalAvgPool::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.at2(0, 0), 1.5); // mean of 0,1,2,3
        assert_eq!(y.at2(1, 2), 21.5); // mean of 20..=23
    }

    #[test]
    fn global_avg_pool_gradient_matches_finite_differences() {
        check_layer_input_grad(&mut GlobalAvgPool::new(), &[2, 3, 3, 3], 0.0, 1e-2);
    }

    #[test]
    fn max_pool_gradient_matches_finite_differences_away_from_ties() {
        // Build an input whose window maxima are separated by much more than
        // the finite-difference step, so perturbations never flip the argmax.
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| i as f32 * 0.5);
        let w = Tensor::from_fn(&[1, 2, 2, 2], |i| 0.3 + 0.1 * i as f32);
        let _ = pool.forward_cached(&x, Mode::Eval);
        let analytic = pool.backward(&w);
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let f_plus = pool.forward(&plus, Mode::Eval).dot(&w);
            let f_minus = pool.forward(&minus, Mode::Eval).dot(&w);
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-3,
                "index {idx}: numeric {numeric} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }
}
