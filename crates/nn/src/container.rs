//! Composite layers: sequential containers, flattening, identity and the
//! residual block used by the MicroResNet backbone.

use crate::{BatchNorm2d, Conv2d, Layer, Mode, Param, Relu};
use ensembler_tensor::{Rng, Tensor};

/// A layer that returns its input unchanged. Used as the shortcut branch of a
/// non-downsampling [`ResidualBlock`] and as a placeholder defence layer.
#[derive(Debug, Default, Clone)]
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Self {
        Self
    }
}

impl Layer for Identity {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.clone()
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.clone()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Flattens `[B, C, H, W]` feature maps into `[B, C*H*W]` vectors.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&self, input: &Tensor, _mode: Mode) -> Tensor {
        input.flatten_batch()
    }

    fn forward_cached(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        input.flatten_batch()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("backward called before forward on Flatten");
        grad_output
            .reshape(shape)
            .expect("gradient has the same number of elements as the input")
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Flatten
    }
}

/// An ordered pipeline of layers applied one after another.
///
/// `Sequential` itself implements [`Layer`], so pipelines can be nested.
///
/// # Examples
///
/// ```
/// use ensembler_nn::{Layer, Linear, Mode, Relu, Sequential};
/// use ensembler_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(0);
/// let mlp = Sequential::new(vec![
///     Box::new(Linear::new(8, 16, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Linear::new(16, 2, &mut rng)),
/// ]);
/// assert_eq!(mlp.len(), 3);
/// let y = mlp.forward(&Tensor::ones(&[1, 8]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a pipeline from the given layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Creates an empty pipeline.
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer to the end of the pipeline.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the pipeline.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the pipeline has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the contained layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_cached(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn quantize_layer(&self) -> crate::quant::QLayer {
        crate::quant::QLayer::Sequential(crate::quant::QSequential::from_sequential(self))
    }

    fn lower(&self) -> crate::graph::GraphOp {
        crate::graph::GraphOp::Sequence(self.layers.iter().map(|l| l.lower()).collect())
    }
}

/// A basic pre-activation-free residual block: `relu(bn(conv(x)) -> bn(conv) + shortcut(x))`.
///
/// When `stride > 1` or the channel count changes, the shortcut is a strided
/// 1x1 convolution followed by batch norm, matching the ResNet "option B"
/// projection shortcut.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    relu_out_mask: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_channels` to `out_channels` with
    /// the given stride on the first convolution.
    ///
    /// # Panics
    ///
    /// Panics if a channel count or the stride is zero.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, rng: &mut Rng) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, rng);
        let bn1 = BatchNorm2d::new(out_channels);
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, rng);
        let bn2 = BatchNorm2d::new(out_channels);
        let shortcut = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, rng),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        Self {
            conv1,
            bn1,
            relu1: Relu::new(),
            conv2,
            bn2,
            shortcut,
            relu_out_mask: None,
        }
    }

    /// Returns `true` if the block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl Layer for ResidualBlock {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        let main = self.conv1.forward(input, mode);
        let main = self.bn1.forward(&main, mode);
        let main = self.relu1.forward(&main, mode);
        let main = self.conv2.forward(&main, mode);
        let main = self.bn2.forward(&main, mode);

        let skip = match &self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input, mode);
                bn.forward(&s, mode)
            }
            None => input.clone(),
        };
        let pre = main.add(&skip);
        let mask = pre.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        pre.mul(&mask)
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let main = self.conv1.forward_cached(input, mode);
        let main = self.bn1.forward_cached(&main, mode);
        let main = self.relu1.forward_cached(&main, mode);
        let main = self.conv2.forward_cached(&main, mode);
        let main = self.bn2.forward_cached(&main, mode);

        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward_cached(input, mode);
                bn.forward_cached(&s, mode)
            }
            None => input.clone(),
        };
        let pre = main.add(&skip);
        let mask = pre.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        let out = pre.mul(&mask);
        self.relu_out_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .relu_out_mask
            .as_ref()
            .expect("backward called before forward on ResidualBlock");
        let grad_pre = grad_output.mul(mask);

        // Main branch.
        let g = self.bn2.backward(&grad_pre);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let grad_main_input = self.conv1.backward(&g);

        // Shortcut branch.
        let grad_skip_input = match &mut self.shortcut {
            Some((conv, bn)) => {
                let g = bn.backward(&grad_pre);
                conv.backward(&g)
            }
            None => grad_pre,
        };
        grad_main_input.add(&grad_skip_input)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params());
        params.extend(self.bn1.params());
        params.extend(self.conv2.params());
        params.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.shortcut {
            params.extend(conv.params());
            params.extend(bn.params());
        }
        params
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params_mut());
        params.extend(self.bn1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.shortcut {
            params.extend(conv.params_mut());
            params.extend(bn.params_mut());
        }
        params
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn quantize_layer(&self) -> crate::quant::QLayer {
        crate::quant::QLayer::Residual(Box::new(crate::quant::QResidualBlock::from_parts(
            &self.conv1,
            &self.bn1,
            &self.conv2,
            &self.bn2,
            self.shortcut.as_ref().map(|(conv, bn)| (conv, bn)),
        )))
    }

    fn lower(&self) -> crate::graph::GraphOp {
        use crate::graph::GraphOp;
        crate::graph::GraphOp::Residual {
            main: vec![
                GraphOp::Conv(self.conv1.clone()),
                GraphOp::BatchNorm(self.bn1.clone()),
                GraphOp::Relu,
                GraphOp::Conv(self.conv2.clone()),
                GraphOp::BatchNorm(self.bn2.clone()),
            ],
            shortcut: self.shortcut.as_ref().map(|(conv, bn)| {
                vec![GraphOp::Conv(conv.clone()), GraphOp::BatchNorm(bn.clone())]
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_input_grad;
    use crate::Linear;

    #[test]
    fn identity_and_flatten() {
        let mut id = Identity::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        assert_eq!(id.forward(&x, Mode::Train), x);
        assert_eq!(id.backward(&x), x);

        let mut flat = Flatten::new();
        let y = flat.forward_cached(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        assert_eq!(flat.forward(&x, Mode::Train), y);
        let g = flat.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut rng = Rng::seed_from(0);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        assert_eq!(net.params().len(), 4);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward_cached(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 3]);
        let g = net.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(g.shape(), &[2, 4]);
    }

    #[test]
    fn cloned_sequential_computes_identical_outputs() {
        let mut rng = Rng::seed_from(6);
        let net = Sequential::new(vec![
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        let copy = net.clone();
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32 * 0.3).cos());
        assert_eq!(net.forward(&x, Mode::Eval), copy.forward(&x, Mode::Eval));
        assert_eq!(copy.parameter_count(), net.parameter_count());
    }

    #[test]
    fn pure_forward_leaves_no_backward_state() {
        let mut rng = Rng::seed_from(8);
        let mut net = Sequential::new(vec![Box::new(Linear::new(3, 2, &mut rng))]);
        let x = Tensor::ones(&[1, 3]);
        let _ = net.forward(&x, Mode::Eval);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.backward(&Tensor::ones(&[1, 2]))
        }));
        assert!(
            result.is_err(),
            "backward must fail after a pure forward: nothing was cached"
        );
    }

    #[test]
    fn sequential_push_and_empty() {
        let mut net = Sequential::empty();
        assert!(net.is_empty());
        net.push(Box::new(Identity::new()));
        assert_eq!(net.len(), 1);
        assert_eq!(net.layers().len(), 1);
        assert_eq!(net.layers_mut().len(), 1);
    }

    #[test]
    fn sequential_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(5, 7, &mut rng)),
            Box::new(crate::Tanh::new()),
            Box::new(Linear::new(7, 3, &mut rng)),
        ]);
        check_layer_input_grad(&mut net, &[2, 5], 0.0, 2e-2);
    }

    #[test]
    fn residual_block_shapes() {
        let mut rng = Rng::seed_from(2);
        let plain = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(!plain.has_projection());
        let y = plain.forward(&Tensor::ones(&[1, 4, 8, 8]), Mode::Train);
        assert_eq!(y.shape(), &[1, 4, 8, 8]);

        let down = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(down.has_projection());
        let y = down.forward(&Tensor::ones(&[1, 4, 8, 8]), Mode::Train);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn residual_block_backward_produces_input_shaped_gradient() {
        let mut rng = Rng::seed_from(3);
        let mut block = ResidualBlock::new(3, 6, 2, &mut rng);
        let x = Tensor::from_fn(&[2, 3, 6, 6], |i| (i as f32 * 0.01).sin());
        let y = block.forward_cached(&x, Mode::Train);
        let g = block.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
        assert!(g.is_finite());
        // All parameter groups received some gradient signal.
        assert!(block.params().iter().any(|p| p.grad.norm() > 0.0));
    }

    #[test]
    fn residual_block_output_is_nonnegative() {
        let mut rng = Rng::seed_from(4);
        let block = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.1).cos());
        let y = block.forward(&x, Mode::Eval);
        assert!(y.min() >= 0.0, "final ReLU keeps activations non-negative");
    }

    #[test]
    fn residual_block_parameter_count_matches_structure() {
        let mut rng = Rng::seed_from(5);
        let block = ResidualBlock::new(4, 4, 1, &mut rng);
        // conv1: 4*4*9 + 4, bn1: 8, conv2: 4*4*9 + 4, bn2: 8 => 320
        assert_eq!(
            block.parameter_count(),
            4 * 4 * 9 + 4 + 8 + 4 * 4 * 9 + 4 + 8
        );
    }
}
