//! Property-based tests for the NN layer library.

use ensembler_nn::{
    cosine_penalty, softmax, CrossEntropyLoss, Dropout, Layer, Linear, Mode, MseLoss, Optimizer,
    Relu, Sequential, Sgd,
};
use ensembler_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn random_logits() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    (1usize..5, 2usize..6, any::<u64>()).prop_map(|(batch, classes, seed)| {
        let mut rng = Rng::seed_from(seed);
        let logits = Tensor::from_fn(&[batch, classes], |_| rng.uniform(-3.0, 3.0));
        let targets = (0..batch).map(|_| rng.below(classes)).collect();
        (logits, targets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_outputs_are_probabilities((logits, _targets) in random_logits()) {
        let p = softmax(&logits);
        let classes = logits.shape()[1];
        for r in 0..logits.shape()[0] {
            let sum: f32 = (0..classes).map(|c| p.at2(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..classes {
                prop_assert!(p.at2(r, c) >= 0.0 && p.at2(r, c) <= 1.0);
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_gradient_rows_sum_to_zero(
        (logits, targets) in random_logits()
    ) {
        let out = CrossEntropyLoss::new().compute(&logits, &targets);
        prop_assert!(out.loss >= 0.0);
        let classes = logits.shape()[1];
        for r in 0..logits.shape()[0] {
            let s: f32 = (0..classes).map(|c| out.grad.at2(r, c)).sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn lowering_the_true_logit_never_decreases_the_loss(
        (logits, targets) in random_logits(),
        delta in 0.1f32..2.0
    ) {
        let ce = CrossEntropyLoss::new();
        let before = ce.compute(&logits, &targets).loss;
        let mut worse = logits.clone();
        let classes = logits.shape()[1];
        for (n, &t) in targets.iter().enumerate() {
            worse.data_mut()[n * classes + t] -= delta;
        }
        let after = ce.compute(&worse, &targets).loss;
        prop_assert!(after >= before - 1e-5);
    }

    #[test]
    fn mse_is_zero_iff_equal(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::from_fn(&[3, 4], |_| rng.uniform(-1.0, 1.0));
        let same = MseLoss::new().compute(&a, &a);
        prop_assert!(same.loss.abs() < 1e-9);
        let b = a.add_scalar(0.5);
        prop_assert!(MseLoss::new().compute(&a, &b).loss > 0.2);
    }

    #[test]
    fn cosine_penalty_is_bounded_by_lambda(seed in any::<u64>(), lambda in 0.0f32..5.0) {
        let mut rng = Rng::seed_from(seed);
        let f = Tensor::from_fn(&[2, 8], |_| rng.uniform(-1.0, 1.0));
        let refs = vec![
            Tensor::from_fn(&[2, 8], |_| rng.uniform(-1.0, 1.0)),
            Tensor::from_fn(&[2, 8], |_| rng.uniform(-1.0, 1.0)),
        ];
        let out = cosine_penalty(&f, &refs, lambda);
        prop_assert!(out.penalty <= lambda + 1e-4);
        prop_assert!(out.penalty >= -lambda - 1e-4);
        prop_assert!(out.grad.is_finite());
    }

    #[test]
    fn sequential_backward_shape_matches_input(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(6, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 4, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[3, 6], |_| rng.uniform(-1.0, 1.0));
        let y = net.forward_cached(&x, Mode::Train);
        prop_assert_eq!(y.shape(), &[3, 4]);
        let g = net.backward(&Tensor::ones(&[3, 4]));
        prop_assert_eq!(g.shape(), x.shape());
        prop_assert!(g.is_finite());
    }

    #[test]
    fn dropout_preserves_expected_value(seed in any::<u64>(), p in 0.0f32..0.9) {
        let drop = Dropout::new(p, seed);
        let x = Tensor::ones(&[1, 4096]);
        let y = drop.forward(&x, Mode::Train);
        // Inverted dropout keeps E[y] = x; allow generous sampling slack.
        prop_assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn sgd_step_moves_against_the_gradient(seed in any::<u64>(), lr in 0.001f32..0.5) {
        let mut rng = Rng::seed_from(seed);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = Tensor::from_fn(&[2, 4], |_| rng.uniform(-1.0, 1.0));
        let targets = vec![0usize, 2];
        let ce = CrossEntropyLoss::new();

        let logits = fc.forward_cached(&x, Mode::Train);
        let before = ce.compute(&logits, &targets);
        fc.zero_grad();
        fc.backward(&before.grad);
        let mut opt = Sgd::new(lr).with_momentum(0.0);
        opt.step(&mut fc.params_mut());

        let logits_after = fc.forward(&x, Mode::Train);
        let after = ce.compute(&logits_after, &targets);
        // A single small gradient step on a smooth convex-in-logits loss must
        // not increase it (up to numerical noise).
        prop_assert!(after.loss <= before.loss + 1e-4);
    }

    #[test]
    fn training_a_small_mlp_reduces_loss(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 2, &mut rng)),
        ]);
        // Two-class separable blobs.
        let n = 32;
        let mut data = Vec::with_capacity(n * 2);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let centre = if class == 0 { -1.0 } else { 1.0 };
            data.push(centre + rng.normal_with(0.0, 0.2));
            data.push(centre + rng.normal_with(0.0, 0.2));
            targets.push(class);
        }
        let x = Tensor::from_vec(data, &[n, 2]).unwrap();
        let ce = CrossEntropyLoss::new();
        let mut opt = Sgd::new(0.1).with_momentum(0.9);

        let first = ce.compute(&net.forward(&x, Mode::Train), &targets).loss;
        let mut last = first;
        for _ in 0..30 {
            let logits = net.forward_cached(&x, Mode::Train);
            let out = ce.compute(&logits, &targets);
            net.zero_grad();
            net.backward(&out.grad);
            opt.step(&mut net.params_mut());
            last = out.loss;
        }
        prop_assert!(last < first, "loss should decrease: {first} -> {last}");
    }
}
