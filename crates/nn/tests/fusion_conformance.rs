//! Conformance suite pinning compiled fused plans to the eager layer
//! forwards for every backbone configuration, in `f32` and int8, across
//! batch sizes.
//!
//! The contract enforced here:
//!
//! * [`FusionConfig::none`] and [`FusionConfig::bit_exact`] plans reproduce
//!   the eager `Layer::forward` outputs **bit-exactly** (`assert_eq!` on the
//!   raw f32 bits via `Tensor`'s `PartialEq`).
//! * [`FusionConfig::full`] (conv+bn folding) tracks the eager outputs
//!   within a documented relative tolerance — folding reassociates float
//!   arithmetic, so bit-exactness is deliberately not claimed.
//! * The int8 plans reproduce the eager [`QSequential`] forward bit-exactly
//!   under the non-folding configs.

use ensembler_nn::compiler::{CompiledPlan, FusionConfig, QCompiledPlan};
use ensembler_nn::models::{build_body, build_full_network, ResNetConfig};
use ensembler_nn::quant::QSequential;
use ensembler_nn::{Layer, Mode};
use ensembler_tensor::{Rng, Tensor};

/// Relative tolerance for the conv+bn fold. The fold is exact in real
/// arithmetic; this bounds the float reassociation error across the deepest
/// backbone in the suite.
const FOLD_TOL: f32 = 2e-3;

fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "{what}: mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Runs the full fused-vs-eager contract for one backbone configuration.
fn conformance_for(config: &ResNetConfig, batches: &[usize], warm_batchnorm: bool, seed: u64) {
    let name = format!(
        "backbone(stem={}, stages={:?})",
        config.stem_channels, config.stage_channels
    );
    let mut rng = Rng::seed_from(seed);
    let mut net = build_full_network(config, &mut rng);
    let mut body = build_body(config, &mut rng);
    if warm_batchnorm {
        // Drive the batch-norm running statistics away from their (0, 1)
        // init so the conv+bn fold is not a near-identity rescale.
        let shape = [
            2,
            config.input_channels,
            config.image_size,
            config.image_size,
        ];
        for _ in 0..3 {
            let warm = Tensor::from_fn(&shape, |_| rng.normal_with(0.3, 1.4));
            let _ = net.forward_cached(&warm, Mode::Train);
        }
        let head = config.head_output_shape();
        for _ in 0..3 {
            let warm = Tensor::from_fn(&[2, head[0], head[1], head[2]], |_| {
                rng.normal_with(-0.2, 0.9)
            });
            let _ = body.forward_cached(&warm, Mode::Train);
        }
    }
    let qbody = QSequential::from_sequential(&body);
    let exact_plans: Vec<(FusionConfig, CompiledPlan)> =
        [FusionConfig::none(), FusionConfig::bit_exact()]
            .into_iter()
            .map(|fc| (fc, CompiledPlan::compile(&net, fc)))
            .collect();
    let folded_plan = CompiledPlan::compile(&net, FusionConfig::full());
    let exact_qplans: Vec<(FusionConfig, QCompiledPlan)> =
        [FusionConfig::none(), FusionConfig::bit_exact()]
            .into_iter()
            .map(|fc| (fc, QCompiledPlan::compile(&body, fc)))
            .collect();

    let head_shape = config.head_output_shape();
    for &b in batches {
        let x = Tensor::from_fn(
            &[
                b,
                config.input_channels,
                config.image_size,
                config.image_size,
            ],
            |_| rng.uniform(-1.0, 1.0),
        );
        let eager = net.forward(&x, Mode::Eval);
        for (fc, plan) in &exact_plans {
            assert_eq!(
                plan.run(&x).unwrap(),
                eager,
                "{name}, batch {b}: f32 plan with {fc:?} must be bit-exact"
            );
        }
        assert_close(
            &folded_plan.run(&x).unwrap(),
            &eager,
            FOLD_TOL,
            &format!("{name}, batch {b}: folded f32 plan"),
        );

        // int8: the server bodies are the part served quantized.
        let f = Tensor::from_fn(&[b, head_shape[0], head_shape[1], head_shape[2]], |_| {
            rng.uniform(-1.0, 1.0)
        });
        let qeager = qbody.forward(&f);
        for (fc, qplan) in &exact_qplans {
            assert_eq!(
                qplan.run(&f).unwrap(),
                qeager,
                "{name}, batch {b}: int8 plan with {fc:?} must match the eager \
                 quantized pipeline bit-exactly"
            );
        }
    }
}

#[test]
fn tiny_backbone_fused_matches_eager() {
    conformance_for(&ResNetConfig::tiny_for_tests(), &[1, 2, 3], true, 11);
}

#[test]
fn cifar10_backbone_fused_matches_eager() {
    conformance_for(&ResNetConfig::cifar10_like(), &[1, 2, 3], true, 12);
}

#[test]
fn cifar100_backbone_fused_matches_eager() {
    conformance_for(&ResNetConfig::cifar100_like(), &[1, 2, 3], true, 13);
}

#[test]
fn celeba_backbone_fused_matches_eager() {
    conformance_for(&ResNetConfig::celeba_like(), &[1, 2], true, 14);
}

#[test]
fn paper_resnet18_fused_matches_eager() {
    // The full-width backbone at a reduced image size: deep enough to catch
    // per-stage fusion bugs, small enough for the test suite.
    conformance_for(&ResNetConfig::paper_resnet18(10, 16, true), &[2], false, 15);
}
