//! Keeps `docs/MODEL_ARTIFACTS.md` byte-exact: every
//! `<!-- artifact-example: … -->` block in the document is decoded from its
//! hex listing and compared against the bytes the real encoder produces for
//! the same artifact, and every example this test knows about must appear in
//! the document. Editing either side without the other fails this test —
//! the same contract `wire_examples` enforces for the protocol document.

use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{ArtifactPrecision, ModelArtifact};
use ensembler_tensor::Tensor;
use std::collections::BTreeMap;

/// The artifact the document walks through byte by byte: the smallest
/// structurally valid container exercising every section — a one-body
/// "ensemble" with a two-element noise pattern, a dropout seed, and
/// single-tensor head/body/tail groups. Semantically it describes no
/// buildable pipeline (decoding is structural only), which keeps the hex
/// listing short enough to annotate.
fn documented_examples() -> BTreeMap<&'static str, ModelArtifact> {
    let mut examples = BTreeMap::new();
    examples.insert(
        "tiny",
        ModelArtifact {
            name: "tiny".to_string(),
            label: "Ensembler".to_string(),
            n: 1,
            p: 1,
            precision: ArtifactPrecision::F32,
            config: ResNetConfig::tiny_for_tests(),
            selector: vec![0],
            noise_sigma: 0.5,
            noise_pattern: Tensor::from_vec(vec![0.0, -1.0], &[2]).unwrap(),
            dropout: Some((0.25, 7)),
            head: vec![Tensor::from_vec(vec![1.0], &[1]).unwrap()],
            bodies: vec![vec![Tensor::from_vec(vec![0.5, 2.0], &[2]).unwrap()]],
            tail: vec![Tensor::from_vec(vec![-0.5], &[1]).unwrap()],
        },
    );
    examples
}

/// Extracts `<!-- artifact-example: name -->` hex listings from the
/// document: the marker comment is followed (within a few lines) by a fenced
/// code block whose lines contain hex byte pairs, optionally followed by a
/// `|`-separated commentary column.
fn parse_doc_examples(doc: &str) -> BTreeMap<String, Vec<u8>> {
    let mut examples = BTreeMap::new();
    let mut lines = doc.lines().peekable();
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("<!-- artifact-example:") else {
            continue;
        };
        let name = rest
            .strip_suffix("-->")
            .map(|n| n.trim().to_string())
            .unwrap_or_else(|| panic!("unterminated artifact-example marker: {trimmed}"));

        let mut in_block = false;
        let mut bytes = Vec::new();
        for line in lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.starts_with("```") {
                if in_block {
                    break;
                }
                in_block = true;
                continue;
            }
            if !in_block {
                assert!(
                    trimmed.is_empty(),
                    "artifact-example {name}: expected a fenced code block, found {trimmed:?}"
                );
                continue;
            }
            let data = trimmed.split('|').next().unwrap_or("");
            for token in data.split_whitespace() {
                let byte = u8::from_str_radix(token, 16).unwrap_or_else(|_| {
                    panic!("artifact-example {name}: {token:?} is not a hex byte")
                });
                bytes.push(byte);
            }
        }
        assert!(
            in_block,
            "artifact-example {name}: no fenced code block follows the marker"
        );
        examples.insert(name, bytes);
    }
    examples
}

/// Renders bytes the way the document lists them, for error messages.
fn hex_dump(bytes: &[u8]) -> String {
    bytes
        .chunks(16)
        .map(|chunk| {
            chunk
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn artifact_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/MODEL_ARTIFACTS.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/MODEL_ARTIFACTS.md must exist next to the workspace: {e}"))
}

#[test]
fn documented_artifacts_match_the_encoder_exactly() {
    let expected = documented_examples();
    let found = parse_doc_examples(&artifact_doc());

    for (name, artifact) in &expected {
        let bytes = artifact.encode();
        match found.get(*name) {
            Some(documented) => assert_eq!(
                documented,
                &bytes,
                "docs/MODEL_ARTIFACTS.md example `{name}` drifted from the encoder.\n\
                 The encoder produces:\n{}\n",
                hex_dump(&bytes)
            ),
            None => panic!(
                "docs/MODEL_ARTIFACTS.md is missing `<!-- artifact-example: {name} -->`.\n\
                 The encoder produces:\n{}\n",
                hex_dump(&bytes)
            ),
        }
        // The example must also survive the real decoder: the document shows
        // bytes a reader can feed back through `ModelArtifact::decode`.
        let decoded = ModelArtifact::decode(&bytes).expect("documented example decodes");
        assert_eq!(&decoded, artifact, "documented example must round-trip");
    }
}

#[test]
fn the_document_has_no_unknown_examples() {
    let expected = documented_examples();
    for name in parse_doc_examples(&artifact_doc()).keys() {
        assert!(
            expected.contains_key(name.as_str()),
            "docs/MODEL_ARTIFACTS.md documents `{name}`, which this test does not check — \
             add it to documented_examples() so it cannot drift"
        );
    }
}
