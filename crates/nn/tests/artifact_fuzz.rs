//! Adversarial coverage for the model-artifact container: truncations,
//! bit flips, outright garbage, hostile magic/version stamps and absurd
//! declared sizes — every corruption must come back as a typed
//! [`ArtifactError`], never a panic, an unbounded allocation, or a silently
//! wrong model. The structural attacks re-stamp the CRC trailer so the
//! *parser* (not the checksum) is what rejects them, mirroring the wire
//! codec's `mux_fuzz` suite.

use ensembler_nn::artifact::{crc32, ARTIFACT_VERSION};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{ArtifactError, ArtifactPrecision, ModelArtifact};
use ensembler_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
    Tensor::from_vec(data, shape).unwrap()
}

/// A small but fully-populated artifact (every optional branch taken).
fn sample_artifact() -> ModelArtifact {
    ModelArtifact {
        name: "fuzz".to_string(),
        label: "Ensembler+int8".to_string(),
        n: 3,
        p: 2,
        precision: ArtifactPrecision::Int8,
        config: ResNetConfig::tiny_for_tests(),
        selector: vec![0, 2],
        noise_sigma: 0.1,
        noise_pattern: t((0..8).map(|i| i as f32 * 0.25 - 1.0).collect(), &[2, 4]),
        dropout: Some((0.25, 0xDEAD_BEEF)),
        head: vec![t(vec![1.0, -1.0], &[2]), t(vec![0.5], &[1])],
        bodies: vec![
            vec![t(vec![2.0; 6], &[2, 3])],
            vec![t(vec![3.0; 6], &[3, 2])],
            vec![t(vec![4.0], &[1])],
        ],
        tail: vec![t(vec![5.0, 6.0, 7.0], &[3, 1])],
    }
}

/// Overwrites the CRC trailer with the checksum of the preceding bytes, so a
/// structural corruption survives the checksum gate and reaches the parser.
fn restamp(bytes: &mut [u8]) {
    let len = bytes.len();
    let crc = crc32(&bytes[..len - 4]);
    bytes[len - 4..].copy_from_slice(&crc.to_be_bytes());
}

/// Byte offsets of the length/count fields inside an encoded artifact,
/// recomputed from the artifact's own contents (the encoding is
/// deterministic, so the walk below mirrors `encode` field for field).
struct FieldOffsets {
    name_len: usize,
    selector_count: usize,
    noise_rank: usize,
    head_count: usize,
    body_count: usize,
}

fn field_offsets(artifact: &ModelArtifact) -> FieldOffsets {
    let mut at = 4 + 2; // magic + version
    let name_len = at;
    at += 4 + artifact.name.len();
    at += 4 + artifact.label.len(); // label
    at += 4 + 4 + 1; // n + p + precision
    at += 4 * 3; // input_channels, image_size, stem_channels
    at += 4 + 4 * artifact.config.stage_channels.len(); // stage list
    at += 4 + 4 + 1; // blocks_per_stage, num_classes, stem pool flag
    let selector_count = at;
    at += 4 + 4 * artifact.selector.len();
    at += 4; // noise sigma
    let noise_rank = at;
    at += 4 + 4 * artifact.noise_pattern.rank() + 4 * artifact.noise_pattern.len();
    at += match artifact.dropout {
        None => 1,
        Some(_) => 1 + 4 + 8,
    };
    let head_count = at;
    at += 4;
    for tensor in &artifact.head {
        at += 4 + 4 * tensor.rank() + 4 * tensor.len();
    }
    let body_count = at;
    FieldOffsets {
        name_len,
        selector_count,
        noise_rank,
        head_count,
        body_count,
    }
}

#[test]
fn every_truncation_is_rejected_even_with_a_restamped_trailer() {
    let bytes = sample_artifact().encode();
    for len in 0..bytes.len() {
        let mut prefix = bytes[..len].to_vec();
        assert!(
            ModelArtifact::decode(&prefix).is_err(),
            "prefix of {len} bytes decoded"
        );
        // A forged trailer must not rescue a truncated payload.
        if len >= 10 {
            restamp(&mut prefix);
            assert!(
                ModelArtifact::decode(&prefix).is_err(),
                "restamped prefix of {len} bytes decoded"
            );
        }
    }
}

#[test]
fn single_bit_flips_are_always_caught_by_the_checksum() {
    let bytes = sample_artifact().encode();
    let mut rng = Rng::seed_from(0xA7_1F_AC);
    for _ in 0..200 {
        let mut corrupted = bytes.clone();
        let offset = rng.below(corrupted.len());
        let bit = 1u8 << rng.below(8);
        corrupted[offset] ^= bit;
        let error =
            ModelArtifact::decode(&corrupted).expect_err("a flipped bit must never decode cleanly");
        match error {
            // Flips in the first six bytes hit the magic/version gates;
            // flips in the trailer or payload hit the CRC.
            ArtifactError::Magic { .. }
            | ArtifactError::UnsupportedVersion { .. }
            | ArtifactError::Checksum { .. } => {}
            other => panic!("bit flip at {offset} gave unexpected error {other:?}"),
        }
    }
}

#[test]
fn restamped_bit_flips_never_panic_and_reencode_canonically() {
    let bytes = sample_artifact().encode();
    let mut rng = Rng::seed_from(0x5EED_F11D);
    for _ in 0..200 {
        let mut corrupted = bytes.clone();
        // Flip up to 3 payload bits, then forge the trailer so the parser
        // itself (not the CRC) has to survive the damage.
        for _ in 0..1 + rng.below(3) {
            let offset = rng.below(corrupted.len() - 4);
            corrupted[offset] ^= 1u8 << rng.below(8);
        }
        restamp(&mut corrupted);
        match ModelArtifact::decode(&corrupted) {
            // Some flips produce a different but structurally valid artifact
            // (e.g. a changed weight bit). Decoding must then be exact: the
            // canonical re-encoding reproduces the corrupted bytes, proving
            // nothing was dropped, invented or misparsed along the way.
            Ok(decoded) => assert_eq!(decoded.encode(), corrupted),
            Err(
                ArtifactError::Malformed(_)
                | ArtifactError::Magic { .. }
                | ArtifactError::UnsupportedVersion { .. },
            ) => {}
            Err(other) => panic!("restamped flip gave unexpected error {other:?}"),
        }
    }
}

#[test]
fn random_garbage_is_rejected() {
    let mut rng = Rng::seed_from(0x06AA_BA6E);
    for _ in 0..500 {
        let len = rng.below(512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        assert!(
            ModelArtifact::decode(&garbage).is_err(),
            "{len} bytes of garbage decoded"
        );
    }
}

#[test]
fn hostile_version_stamps_are_typed_errors() {
    let good = sample_artifact().encode();
    for version in [0u16, 2, ARTIFACT_VERSION + 1, u16::MAX] {
        let mut bytes = good.clone();
        bytes[4..6].copy_from_slice(&version.to_be_bytes());
        restamp(&mut bytes);
        assert_eq!(
            ModelArtifact::decode(&bytes),
            Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION
            })
        );
    }
    let mut bytes = good;
    bytes[0..4].copy_from_slice(&0x4445_4142u32.to_be_bytes());
    restamp(&mut bytes);
    assert_eq!(
        ModelArtifact::decode(&bytes),
        Err(ArtifactError::Magic { found: 0x4445_4142 })
    );
}

#[test]
fn absurd_declared_sizes_are_malformed_not_allocated() {
    let artifact = sample_artifact();
    let offsets = field_offsets(&artifact);
    let good = artifact.encode();
    for (what, offset) in [
        ("name length", offsets.name_len),
        ("selector count", offsets.selector_count),
        ("noise tensor rank", offsets.noise_rank),
        ("head tensor count", offsets.head_count),
        ("body count", offsets.body_count),
    ] {
        for hostile in [u32::MAX, u32::MAX / 2, 1 << 24] {
            let mut bytes = good.clone();
            bytes[offset..offset + 4].copy_from_slice(&hostile.to_be_bytes());
            restamp(&mut bytes);
            // The declared size dwarfs the buffer: the parser must refuse
            // without allocating anything near the declared amount.
            match ModelArtifact::decode(&bytes) {
                Err(ArtifactError::Malformed(_)) => {}
                other => panic!("{what} = {hostile} gave {other:?}"),
            }
        }
    }
}

#[test]
fn absurd_tensor_dims_overflow_to_typed_errors() {
    // A rank-2 tensor whose declared dims multiply past usize::MAX must be
    // rejected by the overflow guard, not wrapped into a tiny allocation.
    let artifact = sample_artifact();
    let offsets = field_offsets(&artifact);
    let mut bytes = artifact.encode();
    // noise pattern is [2, 4]: overwrite both dims with huge values.
    let dims_at = offsets.noise_rank + 4;
    bytes[dims_at..dims_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    bytes[dims_at + 4..dims_at + 8].copy_from_slice(&u32::MAX.to_be_bytes());
    restamp(&mut bytes);
    match ModelArtifact::decode(&bytes) {
        Err(ArtifactError::Malformed(_)) => {}
        other => panic!("overflowing dims gave {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-byte corruptions at random offsets, with and without a
    /// forged trailer: decoding must always return (never panic), and any
    /// accepted buffer must re-encode to exactly itself.
    #[test]
    fn random_corruptions_never_panic(
        seed in any::<u64>(),
        burst in 1usize..16,
        forge_trailer in any::<bool>(),
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut bytes = sample_artifact().encode();
        for _ in 0..burst {
            let offset = rng.below(bytes.len());
            bytes[offset] = rng.below(256) as u8;
        }
        if forge_trailer {
            restamp(&mut bytes);
        }
        if let Ok(decoded) = ModelArtifact::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }
}
