//! Property-based coverage for quantization of folded conv+bn weights.
//!
//! Conv+bn folding rescales every output channel by `gamma / sqrt(var + eps)`,
//! which can shrink weights to subnormal magnitudes (tiny `gamma`, large
//! `var`) or inflate them (tiny `var`). Per-tensor int8 quantization of the
//! folded weights must stay well-defined across that whole range: the scale
//! must be a normal positive float with a finite inverse, and the int8
//! round trip must stay within half a quantization step.

use ensembler_nn::compiler::fold_conv_bn;
use ensembler_nn::quant::QConv2d;
use ensembler_nn::{BatchNorm2d, Conv2d, Layer, Mode};
use ensembler_tensor::{QTensor, Rng, Tensor};
use proptest::prelude::*;

/// A random conv + eval-mode bn pair with adversarial statistics: `magnitude`
/// scales the conv weights across ~70 orders of magnitude, and variances
/// range from near-degenerate to large.
fn conv_bn_pair() -> impl Strategy<Value = (Conv2d, BatchNorm2d)> {
    (
        any::<u64>(),
        1usize..4,   // in channels
        1usize..5,   // out channels
        1usize..4,   // kernel
        -35f32..2.0, // log10 of the weight magnitude
        -8f32..1.0,  // log10 of the variance floor
    )
        .prop_map(|(seed, cin, cout, kernel, mag_exp, var_exp)| {
            let mut rng = Rng::seed_from(seed);
            let magnitude = 10.0f32.powf(mag_exp);
            let mut conv = Conv2d::new(cin, cout, kernel, 1, kernel / 2, &mut rng);
            for w in conv.weight_mut().value.data_mut() {
                *w *= magnitude;
            }
            let mut bn = BatchNorm2d::new(cout);
            // Drive the running stats to arbitrary (but finite) values.
            for v in bn.running_mean_mut().data_mut() {
                *v = rng.uniform(-2.0, 2.0);
            }
            let var_floor = 10.0f32.powf(var_exp);
            for v in bn.running_var_mut().data_mut() {
                *v = var_floor * rng.uniform(1.0, 4.0);
            }
            for g in bn.gamma_mut().value.data_mut() {
                *g = rng.uniform(-2.0, 2.0);
            }
            for b in bn.beta_mut().value.data_mut() {
                *b = rng.uniform(-1.0, 1.0);
            }
            (conv, bn)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn folded_weights_quantize_with_a_usable_scale((conv, bn) in conv_bn_pair()) {
        let folded = fold_conv_bn(&conv, &bn);
        let weight = &folded.weight().value;
        prop_assert!(weight.data().iter().all(|w| w.is_finite()));

        let q = QTensor::quantize(weight);
        let scale = q.scale();
        // The scale is a normal positive float whose inverse is finite —
        // the subnormal-absmax clamp in `quantization_scale` at work.
        prop_assert!(scale.is_finite() && scale >= f32::MIN_POSITIVE);
        prop_assert!((1.0 / scale).is_finite());

        // Round trip stays within half a quantization step per element.
        let back = q.dequantize();
        for (orig, rt) in weight.data().iter().zip(back.data()) {
            prop_assert!(
                (orig - rt).abs() <= scale * 0.5 + f32::EPSILON,
                "round trip {orig} -> {rt} exceeds half a step ({scale})"
            );
        }
    }

    #[test]
    fn quantized_folded_conv_produces_finite_outputs((conv, bn) in conv_bn_pair()) {
        let folded = fold_conv_bn(&conv, &bn);
        let qconv = QConv2d::from_conv(&folded);
        let k = folded.geometry().kernel;
        let side = k.max(2) * 2;
        let x = Tensor::from_fn(&[2, conv.in_channels(), side, side], |i| {
            ((i % 13) as f32 - 6.0) * 0.17
        });
        let out = qconv.forward(&x);
        prop_assert!(out.data().iter().all(|v| v.is_finite()));
        // And the int8 conv tracks its f32 source: both are finite and share
        // the output shape contract.
        prop_assert_eq!(out.shape(), folded.forward(&x, Mode::Eval).shape());
    }

    #[test]
    fn folding_reproduces_the_two_layer_computation_for_sane_stats(
        seed in any::<u64>(),
        var_scale in 0.01f32..4.0,
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        for w in conv.weight_mut().value.data_mut() {
            *w *= 1.3;
        }
        let mut bn = BatchNorm2d::new(3);
        for v in bn.running_mean_mut().data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        for v in bn.running_var_mut().data_mut() {
            *v = var_scale * rng.uniform(0.5, 2.0);
        }
        for g in bn.gamma_mut().value.data_mut() {
            *g = rng.uniform(-1.5, 1.5);
        }
        let folded = fold_conv_bn(&conv, &bn);
        let x = Tensor::from_fn(&[1, 2, 5, 5], |_| rng.uniform(-1.0, 1.0));
        let eager = bn.forward(&conv.forward(&x, Mode::Eval), Mode::Eval);
        let fused = folded.forward(&x, Mode::Eval);
        let bound = 1e-4 * (1.0 + eager.data().iter().fold(0.0f32, |m, v| m.max(v.abs())));
        for (a, b) in fused.data().iter().zip(eager.data()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }
}
