//! Query-free model inversion attacks against collaborative inference, as
//! used by the Ensembler paper's adversarial server (Sec. II-B and III-B).
//!
//! The attacker is the semi-honest cloud provider. It owns the server-side
//! weights `M_s` (one network in the baselines, `N` networks under
//! Ensembler), knows the architecture of the whole model and has access to a
//! public dataset drawn from the same distribution as the client's training
//! data. It cannot query the client. The attack proceeds in three steps:
//!
//! 1. **Shadow training** ([`ShadowNetwork`]): build a surrogate client head
//!    `~M_c,h` (three convolutions, the first simulating the unknown head and
//!    the next two absorbing the unknown additive noise) and a surrogate tail
//!    `~M_c,t`, then train them on the public data against the *frozen*
//!    server weights so the surrogate pipeline mimics the victim pipeline.
//! 2. **Decoder training** ([`Decoder`]): train a transposed-convolution
//!    decoder that inverts `~M_c,h`, i.e. maps shadow features back to
//!    images.
//! 3. **Reconstruction** ([`run_attack`] and the convenience wrappers): apply
//!    the decoder to the intermediate features the client actually
//!    transmitted and measure SSIM / PSNR against the private inputs.
//!
//! Attacks take their victim as `&dyn Defense` — any pipeline behind the
//! unified inference trait can be attacked without per-pipeline dispatch,
//! and mounting an attack never mutates the victim (the attacker clones the
//! server weights it owns under the threat model).
//!
//! # Examples
//!
//! ```
//! use ensembler::{DefenseKind, SinglePipeline, TrainConfig};
//! use ensembler_attack::{attack_single_pipeline, AttackConfig};
//! use ensembler_data::SyntheticSpec;
//! use ensembler_nn::models::ResNetConfig;
//!
//! let data = SyntheticSpec::tiny_for_tests().generate(0);
//! let mut victim = SinglePipeline::new(
//!     ResNetConfig::tiny_for_tests(),
//!     DefenseKind::NoDefense,
//!     1,
//! )?;
//! victim.train_supervised(&data.train, &TrainConfig::fast_for_tests())?;
//! let (private_images, _) = data.test.batch(0, 4);
//! let outcome = attack_single_pipeline(
//!     &victim,
//!     &data.train,
//!     &private_images,
//!     &AttackConfig::fast_for_tests(),
//! )?;
//! assert!(outcome.ssim <= 1.0 && outcome.psnr <= 60.0);
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

mod brute_force;
mod decoder;
mod mia;
mod shadow;

pub use brute_force::{
    brute_force_selector, enumerate_selections, BruteForceReport, CandidateScore,
};
pub use decoder::Decoder;
pub use mia::{
    attack_adaptive, attack_all_single_nets, attack_single_pipeline, run_attack, AttackConfig,
    AttackOutcome, ServerView,
};
pub use shadow::ShadowNetwork;
