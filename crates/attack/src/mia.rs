//! Orchestration of the query-free model inversion attack.

use crate::{Decoder, ShadowNetwork};
use ensembler::{Defense, EnsemblerError};
use ensembler_data::Dataset;
use ensembler_metrics::{psnr_batch, ssim};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{CrossEntropyLoss, Layer, Mode, MseLoss, Optimizer, Sequential, Sgd};
use ensembler_tensor::{Rng, Tensor};

/// Hyper-parameters of the model inversion attack.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Epochs used to fit the shadow head/tail against the frozen server.
    pub shadow_epochs: usize,
    /// Epochs used to fit the decoder that inverts the shadow head.
    pub decoder_epochs: usize,
    /// Mini-batch size for both phases.
    pub batch_size: usize,
    /// SGD learning rate for both phases.
    pub learning_rate: f32,
    /// Seed controlling the attacker's initialisation and batching.
    pub seed: u64,
}

impl AttackConfig {
    /// Attack budget used by the benchmark harness.
    pub fn paper_like() -> Self {
        Self {
            shadow_epochs: 8,
            decoder_epochs: 10,
            batch_size: 32,
            learning_rate: 0.05,
            seed: 7,
        }
    }

    /// A deliberately tiny budget for unit tests.
    pub fn fast_for_tests() -> Self {
        Self {
            shadow_epochs: 2,
            decoder_epochs: 2,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 7,
        }
    }
}

/// The result of one reconstruction attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Mean structural similarity between private inputs and reconstructions
    /// (higher means the attack recovered more).
    pub ssim: f32,
    /// Mean peak signal-to-noise ratio in dB (higher means the attack
    /// recovered more).
    pub psnr: f32,
    /// The reconstructed images, shaped like the private inputs.
    pub reconstructions: Tensor,
}

/// The attacker's working copy of the server-side weights.
///
/// Under the paper's threat model the adversarial server *owns* the body
/// networks, so the view **clones** them out of the victim
/// ([`Defense::server_bodies`]) into mutable copies it can backpropagate
/// through. The victim pipeline itself stays immutable — attacks take
/// `&dyn Defense` like every other consumer of the inference API.
///
/// * [`ServerView::Single`] — the surrogate is trained against one specific
///   server network (the attack of Proposition 1).
/// * [`ServerView::All`] — the *adaptive* attacker trains against every
///   server network at once, combining their outputs with the uniform `1/N`
///   activation it guesses for the unknown selector (Proposition 2).
#[derive(Debug, Clone)]
pub enum ServerView {
    /// Attack a single server body.
    Single(Sequential),
    /// Attack all server bodies jointly with uniform activation.
    All(Vec<Sequential>),
}

impl ServerView {
    /// Clones server body `index` out of the victim.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn single(victim: &dyn Defense, index: usize) -> Self {
        ServerView::Single(victim.server_bodies()[index].clone())
    }

    /// Clones every server body out of the victim.
    pub fn all(victim: &dyn Defense) -> Self {
        ServerView::All(victim.server_bodies().to_vec())
    }

    /// Width of the feature vector this view feeds into the shadow tail.
    pub fn feature_width(&self, per_network: usize) -> usize {
        match self {
            ServerView::Single(_) => per_network,
            ServerView::All(bodies) => per_network * bodies.len(),
        }
    }

    /// Forward pass through the frozen server weights, caching activations
    /// for the subsequent backward pass.
    fn forward(&mut self, features: &Tensor, per_network: usize) -> Tensor {
        match self {
            ServerView::Single(body) => body.forward_cached(features, Mode::Eval),
            ServerView::All(bodies) => {
                let n = bodies.len();
                let scale = 1.0 / n as f32;
                let maps: Vec<Tensor> = bodies
                    .iter_mut()
                    .map(|b| b.forward_cached(features, Mode::Eval))
                    .collect();
                let batch = maps[0].shape()[0];
                let mut data = Vec::with_capacity(batch * n * per_network);
                for s in 0..batch {
                    for map in &maps {
                        let row = &map.data()[s * per_network..(s + 1) * per_network];
                        data.extend(row.iter().map(|v| v * scale));
                    }
                }
                Tensor::from_vec(data, &[batch, n * per_network])
                    .expect("concatenated server features")
            }
        }
    }

    /// Backward pass: maps the gradient at the (concatenated) server output
    /// back to the transmitted features. Server parameter gradients are
    /// discarded — the attacker cannot change the victim's weights.
    fn backward(&mut self, grad: &Tensor, per_network: usize) -> Tensor {
        match self {
            ServerView::Single(body) => {
                let g = body.backward(grad);
                body.zero_grad();
                g
            }
            ServerView::All(bodies) => {
                let n = bodies.len();
                let scale = 1.0 / n as f32;
                let batch = grad.shape()[0];
                let mut total: Option<Tensor> = None;
                for (i, body) in bodies.iter_mut().enumerate() {
                    let mut per = Tensor::zeros(&[batch, per_network]);
                    for s in 0..batch {
                        let src = s * n * per_network + i * per_network;
                        let dst = s * per_network;
                        for f in 0..per_network {
                            per.data_mut()[dst + f] = grad.data()[src + f] * scale;
                        }
                    }
                    let g = body.backward(&per);
                    body.zero_grad();
                    total = Some(match total {
                        Some(mut acc) => {
                            acc.add_assign(&g);
                            acc
                        }
                        None => g,
                    });
                }
                total.expect("at least one server body")
            }
        }
    }
}

/// Runs the full three-step attack against an arbitrary server view.
///
/// * `public_data` — the attacker's dataset from the training distribution.
/// * `private_images` — the client inputs the attacker wants to reconstruct.
/// * `transmitted_features` — what the client actually sent for those inputs
///   (`M_c,h(x) + noise`, possibly dropout-ed), which is all the attacker
///   observes about them.
///
/// # Panics
///
/// Panics if `public_data` is empty (the threat model always grants the
/// attacker a public dataset).
pub fn run_attack(
    server: &mut ServerView,
    config: &ResNetConfig,
    public_data: &Dataset,
    private_images: &Tensor,
    transmitted_features: &Tensor,
    attack: &AttackConfig,
) -> AttackOutcome {
    assert!(
        !public_data.is_empty(),
        "the attacker's public dataset must not be empty"
    );
    let per_network = config.body_output_features();
    let mut rng = Rng::seed_from(attack.seed);
    let mut shadow = ShadowNetwork::new(config, server.feature_width(per_network), &mut rng);

    // Step 1: fit the shadow client against the frozen server weights.
    let ce = CrossEntropyLoss::new();
    let mut shadow_opt = Sgd::new(attack.learning_rate).with_momentum(0.9);
    for _ in 0..attack.shadow_epochs {
        for (images, labels) in public_data.batches(attack.batch_size, &mut rng) {
            let features = shadow.head_forward(&images, Mode::Train);
            let server_out = server.forward(&features, per_network);
            let logits = shadow.tail_forward(&server_out, Mode::Train);
            let out = ce.compute(&logits, &labels);
            let grad_server_out = shadow.tail_backward(&out.grad);
            let grad_features = server.backward(&grad_server_out, per_network);
            let _ = shadow.head_backward(&grad_features);
            shadow_opt.step(&mut shadow.params_mut());
        }
    }

    // Step 2: fit a decoder that inverts the shadow head.
    let mse = MseLoss::new();
    let mut decoder = Decoder::new(config, &mut rng);
    let mut decoder_opt = Sgd::new(attack.learning_rate).with_momentum(0.9);
    for _ in 0..attack.decoder_epochs {
        for (images, _labels) in public_data.batches(attack.batch_size, &mut rng) {
            let features = shadow.head_forward(&images, Mode::Eval);
            let reconstruction = decoder.forward(&features, Mode::Train);
            let out = mse.compute(&reconstruction, &images);
            let _ = decoder.backward(&out.grad);
            decoder_opt.step(&mut decoder.params_mut());
        }
    }

    // Step 3: invert the features the client actually transmitted.
    let reconstructions = decoder.forward(transmitted_features, Mode::Eval);
    let ssim_score = ssim(private_images, &reconstructions, 1.0);
    let psnr_score = psnr_batch(private_images, &reconstructions, 1.0);
    AttackOutcome {
        ssim: ssim_score,
        psnr: psnr_score,
        reconstructions,
    }
}

/// Attacks a pipeline through the strongest single-network view: server
/// network 0. For the single-network baselines (None / Single / Shredder /
/// DR-single defences) this is the paper's baseline attack.
///
/// # Errors
///
/// Propagates failures of the victim's [`Defense::client_features`].
pub fn attack_single_pipeline(
    victim: &dyn Defense,
    public_data: &Dataset,
    private_images: &Tensor,
    attack: &AttackConfig,
) -> Result<AttackOutcome, EnsemblerError> {
    let transmitted = victim.client_features(private_images)?;
    let mut view = ServerView::single(victim, 0);
    Ok(run_attack(
        &mut view,
        victim.config(),
        public_data,
        private_images,
        &transmitted,
        attack,
    ))
}

/// Attacks an Ensembler pipeline once per server network, returning one
/// outcome per network (Proposition 1's reconstruction strategy). Table I
/// reports the strongest of these per metric.
///
/// # Errors
///
/// Propagates failures of the victim's [`Defense::client_features`].
pub fn attack_all_single_nets(
    victim: &dyn Defense,
    public_data: &Dataset,
    private_images: &Tensor,
    attack: &AttackConfig,
) -> Result<Vec<AttackOutcome>, EnsemblerError> {
    let transmitted = victim.client_features(private_images)?;
    let mut outcomes = Vec::with_capacity(victim.ensemble_size());
    for i in 0..victim.ensemble_size() {
        let mut attack_cfg = attack.clone();
        attack_cfg.seed = attack.seed.wrapping_add(i as u64);
        let mut view = ServerView::single(victim, i);
        outcomes.push(run_attack(
            &mut view,
            victim.config(),
            public_data,
            private_images,
            &transmitted,
            &attack_cfg,
        ));
    }
    Ok(outcomes)
}

/// Attacks an Ensembler pipeline with the adaptive strategy that trains the
/// shadow network against all `N` server networks at once (Proposition 2).
///
/// # Errors
///
/// Propagates failures of the victim's [`Defense::client_features`].
pub fn attack_adaptive(
    victim: &dyn Defense,
    public_data: &Dataset,
    private_images: &Tensor,
    attack: &AttackConfig,
) -> Result<AttackOutcome, EnsemblerError> {
    let transmitted = victim.client_features(private_images)?;
    let mut view = ServerView::all(victim);
    Ok(run_attack(
        &mut view,
        victim.config(),
        public_data,
        private_images,
        &transmitted,
        attack,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler::{DefenseKind, EnsemblerTrainer, SinglePipeline, TrainConfig};
    use ensembler_data::SyntheticSpec;

    fn tiny_victim_single() -> (SinglePipeline, ensembler_data::SyntheticDataset) {
        let data = SyntheticSpec::tiny_for_tests().generate(9);
        let mut victim =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 5).unwrap();
        victim
            .train_supervised(&data.train, &TrainConfig::fast_for_tests())
            .unwrap();
        (victim, data)
    }

    #[test]
    fn attack_on_single_pipeline_produces_valid_metrics() {
        let (victim, data) = tiny_victim_single();
        let (private_images, _) = data.test.batch(0, 4);
        let outcome = attack_single_pipeline(
            &victim,
            &data.train,
            &private_images,
            &AttackConfig::fast_for_tests(),
        )
        .unwrap();
        assert_eq!(outcome.reconstructions.shape(), private_images.shape());
        assert!(outcome.ssim >= -1.0 && outcome.ssim <= 1.0);
        assert!(outcome.psnr >= 0.0 && outcome.psnr <= 60.0);
        assert!(outcome.reconstructions.min() >= 0.0);
        assert!(outcome.reconstructions.max() <= 1.0);
    }

    #[test]
    fn attack_strategies_on_ensembler_produce_consistent_shapes() {
        let data = SyntheticSpec::tiny_for_tests().generate(10);
        let trainer = EnsemblerTrainer::new(
            ResNetConfig::tiny_for_tests(),
            TrainConfig::fast_for_tests(),
        );
        let pipeline = trainer.train(2, 1, &data.train).unwrap().into_pipeline();
        let (private_images, _) = data.test.batch(0, 3);
        let cfg = AttackConfig::fast_for_tests();

        let per_net =
            attack_all_single_nets(&pipeline, &data.train, &private_images, &cfg).unwrap();
        assert_eq!(per_net.len(), 2);
        for outcome in &per_net {
            assert_eq!(outcome.reconstructions.shape(), private_images.shape());
        }

        let adaptive = attack_adaptive(&pipeline, &data.train, &private_images, &cfg).unwrap();
        assert_eq!(adaptive.reconstructions.shape(), private_images.shape());
    }

    #[test]
    fn attacks_leave_the_victim_untouched() {
        // The redesigned API takes &dyn Defense: mounting an attack must not
        // perturb the victim's behaviour in any way.
        let (victim, data) = tiny_victim_single();
        let (private_images, _) = data.test.batch(0, 2);
        let before = victim.predict(&private_images).unwrap();
        let _ = attack_single_pipeline(
            &victim,
            &data.train,
            &private_images,
            &AttackConfig::fast_for_tests(),
        )
        .unwrap();
        assert_eq!(victim.predict(&private_images).unwrap(), before);
    }

    #[test]
    fn server_view_feature_widths() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(0);
        let bodies: Vec<Sequential> = (0..3)
            .map(|_| ensembler_nn::models::build_body(&config, &mut rng))
            .collect();
        let per = config.body_output_features();
        let single = ServerView::Single(bodies[0].clone());
        assert_eq!(single.feature_width(per), per);
        let all = ServerView::All(bodies);
        assert_eq!(all.feature_width(per), 3 * per);
    }

    #[test]
    fn all_view_forward_concatenates_with_uniform_scaling() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(1);
        let bodies: Vec<Sequential> = (0..2)
            .map(|_| ensembler_nn::models::build_body(&config, &mut rng))
            .collect();
        let per = config.body_output_features();
        let shape = config.head_output_shape();
        let features = Tensor::ones(&[2, shape[0], shape[1], shape[2]]);

        let single_outputs: Vec<Tensor> = bodies
            .iter()
            .map(|b| b.forward(&features, Mode::Eval))
            .collect();
        let mut view = ServerView::All(bodies);
        let combined = view.forward(&features, per);
        assert_eq!(combined.shape(), &[2, 2 * per]);
        // First per-network block equals the single output scaled by 1/N.
        for f in 0..per {
            let expected = single_outputs[0].at2(0, f) * 0.5;
            assert!((combined.at2(0, f) - expected).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "public dataset must not be empty")]
    fn attack_requires_public_data() {
        let (victim, data) = tiny_victim_single();
        let (private_images, _) = data.test.batch(0, 2);
        let transmitted = victim.client_features(&private_images).unwrap();
        let empty = Dataset::new(Tensor::zeros(&[0, 3, 8, 8]), vec![], 3);
        let mut view = ServerView::single(&victim, 0);
        let _ = run_attack(
            &mut view,
            victim.config(),
            &empty,
            &private_images,
            &transmitted,
            &AttackConfig::fast_for_tests(),
        );
    }
}
