//! Brute-force search over the client's secret selection.
//!
//! Section III-D of the paper argues that because any subset of the server
//! networks yields a *plausible* shadow reconstruction, the adversary cannot
//! tell which one matches the client's secret selector and must brute-force
//! all `2^N - 1` non-empty subsets (or all `C(N, P)` subsets if it knows `P`).
//! This module makes that cost concrete: it enumerates candidate selections,
//! scores each one, and reports how much work distinguishing the true secret
//! would take.

use ensembler::Selector;

/// One candidate selection considered by the brute-force attacker together
/// with the score its reconstruction achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// The candidate subset of server networks, sorted ascending.
    pub indices: Vec<usize>,
    /// The attacker's score for this candidate (higher = the attacker
    /// believes this reconstruction more).
    pub score: f32,
}

/// Summary of a brute-force selector search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceReport {
    /// Number of candidate subsets that were enumerated.
    pub candidates_evaluated: usize,
    /// All candidates sorted by descending score.
    pub ranking: Vec<CandidateScore>,
    /// Position (0-based) of the true secret selection in the ranking, if the
    /// caller supplied it.
    pub true_selection_rank: Option<usize>,
}

impl BruteForceReport {
    /// Returns `true` if the attacker's best-scoring candidate is exactly the
    /// client's secret selection.
    pub fn attacker_succeeded(&self) -> bool {
        self.true_selection_rank == Some(0)
    }
}

/// Enumerates every subset of `0..n` of size `p`, in lexicographic order.
///
/// # Panics
///
/// Panics if `p` is zero or larger than `n`, or if the number of subsets
/// would be astronomically large (`n > 25`), since enumerating them would be
/// pointless.
pub fn enumerate_selections(n: usize, p: usize) -> Vec<Vec<usize>> {
    assert!(p > 0 && p <= n, "selection size must be in 1..=n");
    assert!(
        n <= 25,
        "enumerating subsets of more than 25 networks is intractable by design"
    );
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(p);
    fn recurse(
        start: usize,
        n: usize,
        p: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == p {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            // Prune: not enough remaining elements to fill the subset.
            if n - i < p - current.len() {
                break;
            }
            current.push(i);
            recurse(i + 1, n, p, current, out);
            current.pop();
        }
    }
    recurse(0, n, p, &mut current, &mut out);
    out
}

/// Runs a brute-force search over all size-`p` selections of `n` networks.
///
/// The attacker supplies a scoring function (typically: train a shadow
/// network and decoder for the candidate subset and measure how
/// self-consistent the reconstruction looks). Because the attacker has no
/// ground truth, the paper's argument is precisely that these scores do not
/// single out the true selection; the report records where the truth landed.
///
/// # Panics
///
/// Panics under the same conditions as [`enumerate_selections`].
pub fn brute_force_selector(
    n: usize,
    p: usize,
    true_selection: Option<&Selector>,
    mut score: impl FnMut(&[usize]) -> f32,
) -> BruteForceReport {
    let candidates = enumerate_selections(n, p);
    let mut ranking: Vec<CandidateScore> = candidates
        .into_iter()
        .map(|indices| {
            let s = score(&indices);
            CandidateScore { indices, score: s }
        })
        .collect();
    ranking.sort_by(|a, b| b.score.total_cmp(&a.score));

    let true_selection_rank = true_selection.map(|sel| {
        let target: Vec<usize> = sel.active_indices().to_vec();
        ranking
            .iter()
            .position(|c| c.indices == target)
            .expect("the true selection is one of the enumerated candidates")
    });

    BruteForceReport {
        candidates_evaluated: ranking.len(),
        ranking,
        true_selection_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_tensor::Rng;

    #[test]
    fn enumeration_counts_match_binomial_coefficients() {
        assert_eq!(enumerate_selections(4, 2).len(), 6);
        assert_eq!(enumerate_selections(10, 4).len(), 210);
        assert_eq!(enumerate_selections(3, 3), vec![vec![0, 1, 2]]);
        // Every candidate is sorted and has distinct entries.
        for cand in enumerate_selections(6, 3) {
            assert!(cand.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn very_large_ensembles_are_rejected() {
        let _ = enumerate_selections(26, 2);
    }

    #[test]
    fn brute_force_ranks_candidates_by_score() {
        // A contrived scorer that prefers subsets with small indices.
        let report = brute_force_selector(4, 2, None, |idx| -(idx.iter().sum::<usize>() as f32));
        assert_eq!(report.candidates_evaluated, 6);
        assert_eq!(report.ranking[0].indices, vec![0, 1]);
        assert_eq!(report.true_selection_rank, None);
        assert!(!report.attacker_succeeded());
    }

    #[test]
    fn true_selection_rank_is_found_when_supplied() {
        let selector = Selector::from_indices(5, vec![1, 3]).unwrap();
        let report = brute_force_selector(5, 2, Some(&selector), |idx| {
            // Scorer that happens to prefer exactly the true subset.
            if idx == [1, 3] {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(report.true_selection_rank, Some(0));
        assert!(report.attacker_succeeded());
    }

    #[test]
    fn uninformative_scores_leave_the_secret_hidden_on_average() {
        // With a score that carries no information about the secret, the true
        // selection's rank is essentially uniform — the formalisation of the
        // paper's "Schrödinger's model" argument. We check it is rarely rank 0
        // across many secrets.
        let mut rng = Rng::seed_from(42);
        let n = 6;
        let p = 3;
        let mut successes = 0;
        let trials = 40;
        for t in 0..trials {
            let secret = Selector::random(n, p, &mut rng).unwrap();
            let mut noise_rng = Rng::seed_from(1000 + t);
            let report = brute_force_selector(n, p, Some(&secret), |_| noise_rng.next_f32());
            if report.attacker_succeeded() {
                successes += 1;
            }
        }
        // Chance level is 1/C(6,3) = 1/20; allow generous slack.
        assert!(
            successes <= trials / 4,
            "an uninformed attacker should almost never rank the secret first ({successes}/{trials})"
        );
    }
}
