//! The image decoder `~M_c,h^{-1}` that maps intermediate features back to
//! input images.

use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{Conv2d, ConvTranspose2d, Layer, Mode, Relu, Sequential, Sigmoid};
use ensembler_tensor::{Rng, Tensor};

/// Convolutional decoder inverting a client head.
///
/// The architecture mirrors the head it inverts: if the head downsamples with
/// a stem max-pool, the decoder starts with a stride-2 transposed convolution
/// to restore the resolution; otherwise a plain convolution suffices. A final
/// sigmoid keeps reconstructions inside the `[0, 1]` image range.
#[derive(Debug)]
pub struct Decoder {
    net: Sequential,
    input_channels: usize,
}

impl Decoder {
    /// Builds an untrained decoder for features shaped like
    /// `config.head_output_shape()`.
    pub fn new(config: &ResNetConfig, rng: &mut Rng) -> Self {
        let feature_channels = config.stem_channels;
        let hidden = (feature_channels * 2).max(8);
        let mut net = Sequential::empty();
        if config.use_stem_pool {
            net.push(Box::new(ConvTranspose2d::new(
                feature_channels,
                hidden,
                2,
                2,
                0,
                rng,
            )));
        } else {
            net.push(Box::new(Conv2d::new(
                feature_channels,
                hidden,
                3,
                1,
                1,
                rng,
            )));
        }
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Conv2d::new(hidden, hidden, 3, 1, 1, rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Conv2d::new(
            hidden,
            config.input_channels,
            3,
            1,
            1,
            rng,
        )));
        net.push(Box::new(Sigmoid::new()));
        Self {
            net,
            input_channels: feature_channels,
        }
    }

    /// Number of feature channels the decoder consumes.
    pub fn input_channels(&self) -> usize {
        self.input_channels
    }

    /// Reconstructs images from intermediate features, caching activations
    /// so [`Decoder::backward`] can follow.
    pub fn forward(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.net.forward_cached(features, mode)
    }

    /// Backward pass (gradient of the reconstruction loss).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward(grad)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Trainable parameters of the decoder.
    pub fn params_mut(&mut self) -> Vec<&mut ensembler_nn::Param> {
        self.net.params_mut()
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.net.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_restores_image_resolution_with_stem_pool() {
        let config = ResNetConfig::cifar10_like();
        let mut rng = Rng::seed_from(0);
        let mut decoder = Decoder::new(&config, &mut rng);
        let shape = config.head_output_shape();
        let features = Tensor::ones(&[2, shape[0], shape[1], shape[2]]);
        let images = decoder.forward(&features, Mode::Eval);
        assert_eq!(
            images.shape(),
            &[2, 3, config.image_size, config.image_size]
        );
    }

    #[test]
    fn decoder_preserves_resolution_without_stem_pool() {
        let config = ResNetConfig::cifar100_like();
        let mut rng = Rng::seed_from(1);
        let mut decoder = Decoder::new(&config, &mut rng);
        let shape = config.head_output_shape();
        let features = Tensor::ones(&[1, shape[0], shape[1], shape[2]]);
        let images = decoder.forward(&features, Mode::Eval);
        assert_eq!(images.shape(), &[1, 3, 16, 16]);
        assert_eq!(decoder.input_channels(), config.stem_channels);
    }

    #[test]
    fn reconstructions_live_in_the_unit_interval() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(2);
        let mut decoder = Decoder::new(&config, &mut rng);
        let shape = config.head_output_shape();
        let features = Tensor::from_fn(&[2, shape[0], shape[1], shape[2]], |i| {
            (i as f32 * 0.37).sin() * 3.0
        });
        let images = decoder.forward(&features, Mode::Eval);
        assert!(images.min() >= 0.0 && images.max() <= 1.0);
    }

    #[test]
    fn decoder_gradients_flow_to_the_features() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(3);
        let mut decoder = Decoder::new(&config, &mut rng);
        let shape = config.head_output_shape();
        let features = Tensor::ones(&[1, shape[0], shape[1], shape[2]]);
        let images = decoder.forward(&features, Mode::Train);
        let grad = decoder.backward(&Tensor::ones(images.shape()));
        assert_eq!(grad.shape(), features.shape());
        assert!(decoder.parameter_count() > 0);
        decoder.zero_grad();
        assert!(decoder.params_mut().iter().all(|p| p.grad.norm() == 0.0));
    }
}
