//! Shadow client networks used by the query-free model inversion attack.

use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{Conv2d, Flatten, Layer, Linear, MaxPool2d, Mode, Relu, Sequential};
use ensembler_tensor::{Rng, Tensor};

/// The adversary's surrogate for the client's private layers.
///
/// Following the paper's attack setup, the shadow head is a stack of three
/// convolutions with the same channel width as the real head: the first
/// simulates the unknown `M_c,h` and the other two give the surrogate enough
/// capacity to absorb the unknown additive noise. The shadow tail has the
/// same shape as the real `M_c,t` (a linear classifier over the server
/// features the attacker can observe).
#[derive(Debug)]
pub struct ShadowNetwork {
    head: Sequential,
    tail: Sequential,
    feature_width: usize,
}

impl ShadowNetwork {
    /// Builds an untrained shadow network for the given backbone.
    ///
    /// `server_feature_width` is the total width of the server features the
    /// surrogate tail consumes: the per-network feature count when attacking
    /// a single server net, or `N` times that for the adaptive attack that
    /// consumes all `N` networks.
    pub fn new(config: &ResNetConfig, server_feature_width: usize, rng: &mut Rng) -> Self {
        let channels = config.stem_channels;
        let mut head = Sequential::empty();
        head.push(Box::new(Conv2d::new(
            config.input_channels,
            channels,
            3,
            1,
            1,
            rng,
        )));
        head.push(Box::new(Relu::new()));
        head.push(Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)));
        head.push(Box::new(Relu::new()));
        head.push(Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)));
        if config.use_stem_pool {
            head.push(Box::new(MaxPool2d::new(2)));
        }

        let mut tail = Sequential::empty();
        tail.push(Box::new(Flatten::new()));
        tail.push(Box::new(Linear::new(
            server_feature_width,
            config.num_classes,
            rng,
        )));

        Self {
            head,
            tail,
            feature_width: server_feature_width,
        }
    }

    /// Width of the server feature vector the shadow tail expects.
    pub fn feature_width(&self) -> usize {
        self.feature_width
    }

    /// Forward pass of the shadow head: surrogate intermediate features.
    /// Caches activations so [`ShadowNetwork::head_backward`] can follow.
    pub fn head_forward(&mut self, images: &Tensor, mode: Mode) -> Tensor {
        self.head.forward_cached(images, mode)
    }

    /// Backward pass through the shadow head.
    pub fn head_backward(&mut self, grad: &Tensor) -> Tensor {
        self.head.backward(grad)
    }

    /// Forward pass of the shadow tail on (concatenated) server features.
    /// Caches activations so [`ShadowNetwork::tail_backward`] can follow.
    pub fn tail_forward(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.tail.forward_cached(features, mode)
    }

    /// Backward pass through the shadow tail.
    pub fn tail_backward(&mut self, grad: &Tensor) -> Tensor {
        self.tail.backward(grad)
    }

    /// Clears accumulated gradients in both shadow parts.
    pub fn zero_grad(&mut self) {
        self.head.zero_grad();
        self.tail.zero_grad();
    }

    /// All trainable parameters of the surrogate (head and tail).
    pub fn params_mut(&mut self) -> Vec<&mut ensembler_nn::Param> {
        let mut params = self.head.params_mut();
        params.extend(self.tail.params_mut());
        params
    }

    /// Number of trainable scalars in the surrogate.
    pub fn parameter_count(&self) -> usize {
        self.head.parameter_count() + self.tail.parameter_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_head_matches_real_head_output_shape() {
        let config = ResNetConfig::cifar10_like();
        let mut rng = Rng::seed_from(0);
        let mut shadow = ShadowNetwork::new(&config, config.body_output_features(), &mut rng);
        let x = Tensor::ones(&[2, 3, config.image_size, config.image_size]);
        let features = shadow.head_forward(&x, Mode::Eval);
        let expected = config.head_output_shape();
        assert_eq!(
            features.shape(),
            &[2, expected[0], expected[1], expected[2]],
            "shadow features must be drop-in replacements for the real ones"
        );
    }

    #[test]
    fn shadow_head_without_stem_pool_keeps_resolution() {
        let config = ResNetConfig::cifar100_like();
        let mut rng = Rng::seed_from(1);
        let mut shadow = ShadowNetwork::new(&config, config.body_output_features(), &mut rng);
        let x = Tensor::ones(&[1, 3, 16, 16]);
        let features = shadow.head_forward(&x, Mode::Eval);
        assert_eq!(features.shape(), &[1, 16, 16, 16]);
    }

    #[test]
    fn shadow_tail_produces_class_logits() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(2);
        let width = 3 * config.body_output_features();
        let mut shadow = ShadowNetwork::new(&config, width, &mut rng);
        assert_eq!(shadow.feature_width(), width);
        let logits = shadow.tail_forward(&Tensor::ones(&[5, width]), Mode::Eval);
        assert_eq!(logits.shape(), &[5, config.num_classes]);
    }

    #[test]
    fn shadow_is_deeper_than_the_real_head() {
        // The surrogate has three convolutions where the real head has one,
        // mirroring the attack setup in the paper.
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(3);
        let shadow = ShadowNetwork::new(&config, config.body_output_features(), &mut rng);
        let real_head = ensembler_nn::models::build_head(&config, &mut rng);
        assert!(shadow.parameter_count() > real_head.parameter_count());
    }

    #[test]
    fn gradients_flow_through_both_parts() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(4);
        let mut shadow = ShadowNetwork::new(&config, config.body_output_features(), &mut rng);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32 * 0.01).sin());
        let feats = shadow.head_forward(&x, Mode::Train);
        let g = shadow.head_backward(&Tensor::ones(feats.shape()));
        assert_eq!(g.shape(), x.shape());
        shadow.zero_grad();
        assert!(shadow.params_mut().iter().all(|p| p.grad.norm() == 0.0));
    }
}
