//! Procedural synthetic image generators standing in for the paper's datasets.

use crate::{Dataset, DatasetSplit};
use ensembler_tensor::{Rng, Tensor};

/// Which real dataset a synthetic specification is standing in for.
///
/// The families differ in how class identity is rendered into the image,
/// mirroring the qualitative differences between the paper's datasets:
/// object-like shapes (CIFAR) versus face-like layouts (CelebA-HQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticFamily {
    /// Class-coloured geometric objects on textured backgrounds (CIFAR-like).
    Objects,
    /// Face-like layouts whose attributes vary with the class (CelebA-like).
    Faces,
}

/// Specification of a synthetic dataset: image geometry, class count, sample
/// counts and the rendering family.
///
/// # Examples
///
/// ```
/// use ensembler_data::SyntheticSpec;
///
/// let spec = SyntheticSpec::cifar10_like();
/// let data = spec.generate(7);
/// assert_eq!(data.train.num_classes(), 10);
/// assert_eq!(data.train.image_shape(), vec![3, 16, 16]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Human-readable dataset name used in reports.
    pub name: String,
    /// Rendering family.
    pub family: SyntheticFamily,
    /// Square image extent in pixels.
    pub image_size: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
}

impl SyntheticSpec {
    /// CIFAR-10 stand-in: 10 object classes at 16x16.
    pub fn cifar10_like() -> Self {
        Self {
            name: "cifar10-like".to_string(),
            family: SyntheticFamily::Objects,
            image_size: 16,
            num_classes: 10,
            train_per_class: 40,
            test_per_class: 10,
        }
    }

    /// CIFAR-100 stand-in: more classes, stem pooling removed downstream.
    /// Class count is reduced to 20 to keep CPU training tractable while
    /// preserving the "many classes, fewer samples each" character.
    pub fn cifar100_like() -> Self {
        Self {
            name: "cifar100-like".to_string(),
            family: SyntheticFamily::Objects,
            image_size: 16,
            num_classes: 20,
            train_per_class: 20,
            test_per_class: 5,
        }
    }

    /// CelebA-HQ stand-in: larger face-like images, few attribute classes.
    pub fn celeba_hq_like() -> Self {
        Self {
            name: "celeba-hq-like".to_string(),
            family: SyntheticFamily::Faces,
            image_size: 32,
            num_classes: 4,
            train_per_class: 30,
            test_per_class: 8,
        }
    }

    /// A deliberately tiny specification for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            name: "tiny".to_string(),
            family: SyntheticFamily::Objects,
            image_size: 8,
            num_classes: 3,
            train_per_class: 6,
            test_per_class: 2,
        }
    }

    /// Scales the per-class sample counts, used by benchmarks that need more
    /// or less data than the defaults.
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any size field is zero.
    pub fn generate(&self, seed: u64) -> SyntheticDataset {
        assert!(
            self.image_size > 0
                && self.num_classes > 0
                && self.train_per_class > 0
                && self.test_per_class > 0,
            "all specification fields must be positive"
        );
        let mut rng = Rng::seed_from(seed);
        let train = self.render_split(self.train_per_class, &mut rng);
        let test = self.render_split(self.test_per_class, &mut rng);
        SyntheticDataset {
            spec: self.clone(),
            train,
            test,
        }
    }

    fn render_split(&self, per_class: usize, rng: &mut Rng) -> Dataset {
        let n = per_class * self.num_classes;
        let mut labels = Vec::with_capacity(n);
        let mut items = Vec::with_capacity(n);
        for class in 0..self.num_classes {
            for _ in 0..per_class {
                labels.push(class);
                items.push(self.render_image(class, rng));
            }
        }
        // Shuffle jointly so contiguous batches are class-mixed.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let shuffled_items: Vec<Tensor> = order.iter().map(|&i| items[i].clone()).collect();
        let shuffled_labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
        Dataset::new(
            Tensor::stack_batch(&shuffled_items),
            shuffled_labels,
            self.num_classes,
        )
    }

    /// Renders one `[1, 3, S, S]` image of the given class.
    fn render_image(&self, class: usize, rng: &mut Rng) -> Tensor {
        match self.family {
            SyntheticFamily::Objects => self.render_object(class, rng),
            SyntheticFamily::Faces => self.render_face(class, rng),
        }
    }

    fn render_object(&self, class: usize, rng: &mut Rng) -> Tensor {
        let s = self.image_size;
        let base = class_colour(class, self.num_classes);
        // Background colour is a dimmed complementary tone plus texture noise.
        let background = [
            0.25 + 0.5 * (1.0 - base[0]),
            0.25 + 0.5 * (1.0 - base[1]),
            0.25 + 0.5 * (1.0 - base[2]),
        ];
        let shape_kind = class % 3;
        let cx = s as f32 * rng.uniform(0.35, 0.65);
        let cy = s as f32 * rng.uniform(0.35, 0.65);
        let radius = s as f32 * rng.uniform(0.2, 0.32);
        let stripe_period = 2 + class % 4;

        let mut img = Tensor::zeros(&[1, 3, s, s]);
        for y in 0..s {
            for x in 0..s {
                let inside = match shape_kind {
                    0 => {
                        // Filled disc.
                        let dx = x as f32 - cx;
                        let dy = y as f32 - cy;
                        dx * dx + dy * dy <= radius * radius
                    }
                    1 => {
                        // Axis-aligned square.
                        (x as f32 - cx).abs() <= radius && (y as f32 - cy).abs() <= radius
                    }
                    _ => {
                        // Diagonal stripes clipped to a disc.
                        let dx = x as f32 - cx;
                        let dy = y as f32 - cy;
                        dx * dx + dy * dy <= radius * radius * 1.4
                            && (x + y) % (2 * stripe_period) < stripe_period
                    }
                };
                for c in 0..3 {
                    let value = if inside { base[c] } else { background[c] };
                    let jitter = rng.normal_with(0.0, 0.03);
                    img.set4(0, c, y, x, (value + jitter).clamp(0.0, 1.0));
                }
            }
        }
        img
    }

    fn render_face(&self, class: usize, rng: &mut Rng) -> Tensor {
        let s = self.image_size;
        // Attribute classes modulate skin tone, hair band and mouth width.
        let skin = 0.55 + 0.1 * (class % 2) as f32;
        let hair = if (class / 2).is_multiple_of(2) {
            0.15
        } else {
            0.45
        };
        let mouth_half_width = s as f32 * (0.12 + 0.06 * (class % 2) as f32);

        let cx = s as f32 * 0.5 + rng.normal_with(0.0, 0.5);
        let cy = s as f32 * 0.55 + rng.normal_with(0.0, 0.5);
        let rx = s as f32 * 0.32;
        let ry = s as f32 * 0.4;
        let eye_y = cy - ry * 0.3;
        let eye_dx = rx * 0.45;
        let mouth_y = cy + ry * 0.4;

        let mut img = Tensor::zeros(&[1, 3, s, s]);
        for y in 0..s {
            for x in 0..s {
                let fx = x as f32;
                let fy = y as f32;
                let in_face = ((fx - cx) / rx).powi(2) + ((fy - cy) / ry).powi(2) <= 1.0;
                let in_hair = fy < cy - ry * 0.55 && in_face_band(fx, cx, rx);
                let in_eye = (fy - eye_y).abs() < 1.5
                    && ((fx - (cx - eye_dx)).abs() < 1.5 || (fx - (cx + eye_dx)).abs() < 1.5);
                let in_mouth = (fy - mouth_y).abs() < 1.2 && (fx - cx).abs() < mouth_half_width;

                let (r, g, b) = if in_eye {
                    (0.05, 0.05, 0.1)
                } else if in_mouth {
                    (0.6, 0.15, 0.2)
                } else if in_hair {
                    (hair, hair * 0.8, hair * 0.6)
                } else if in_face {
                    (skin, skin * 0.8, skin * 0.7)
                } else {
                    (0.2, 0.25, 0.35)
                };
                let jitter = rng.normal_with(0.0, 0.02);
                img.set4(0, 0, y, x, (r + jitter).clamp(0.0, 1.0));
                img.set4(0, 1, y, x, (g + jitter).clamp(0.0, 1.0));
                img.set4(0, 2, y, x, (b + jitter).clamp(0.0, 1.0));
            }
        }
        img
    }
}

fn in_face_band(fx: f32, cx: f32, rx: f32) -> bool {
    (fx - cx).abs() <= rx * 0.9
}

/// Deterministic, well-separated RGB base colour for a class.
fn class_colour(class: usize, num_classes: usize) -> [f32; 3] {
    let hue = class as f32 / num_classes.max(1) as f32;
    // Simple HSV-to-RGB with full saturation and value 0.9.
    let h = hue * 6.0;
    let i = h.floor() as i32 % 6;
    let f = h - h.floor();
    let v = 0.9;
    let p = 0.1;
    let q = v - (v - p) * f;
    let t = p + (v - p) * f;
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

/// A generated synthetic dataset: the specification it came from plus its
/// train and test splits.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// The specification used for generation.
    pub spec: SyntheticSpec,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
}

impl SyntheticDataset {
    /// Returns the train/test pair, dropping the specification.
    pub fn into_split(self) -> DatasetSplit {
        DatasetSplit {
            train: self.train,
            test: self.test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_generate_expected_sizes() {
        let cifar = SyntheticSpec::cifar10_like().generate(0);
        assert_eq!(cifar.train.len(), 400);
        assert_eq!(cifar.test.len(), 100);
        assert_eq!(cifar.train.image_shape(), vec![3, 16, 16]);

        let celeba = SyntheticSpec::celeba_hq_like().generate(0);
        assert_eq!(celeba.train.num_classes(), 4);
        assert_eq!(celeba.train.image_shape(), vec![3, 32, 32]);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = SyntheticSpec::tiny_for_tests().generate(99);
        let b = SyntheticSpec::tiny_for_tests().generate(99);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = SyntheticSpec::tiny_for_tests().generate(100);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn pixel_values_stay_in_unit_range() {
        let data = SyntheticSpec::cifar10_like().with_samples(2, 1).generate(3);
        assert!(data.train.images().min() >= 0.0);
        assert!(data.train.images().max() <= 1.0);
    }

    #[test]
    fn every_class_is_represented_in_both_splits() {
        let data = SyntheticSpec::tiny_for_tests().generate(5);
        for split in [&data.train, &data.test] {
            let mut seen = vec![false; split.num_classes()];
            for &l in split.labels() {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "all classes present");
        }
    }

    #[test]
    fn images_of_different_classes_differ_more_than_within_class() {
        // The class signal must be strong enough for a small CNN to learn:
        // check that the mean image of class 0 differs from class 1 more than
        // two random class-0 images differ from each other.
        let data = SyntheticSpec::cifar10_like()
            .with_samples(10, 2)
            .generate(11);
        let train = &data.train;
        let of_class = |c: usize| -> Vec<usize> {
            train
                .labels()
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == c)
                .map(|(i, _)| i)
                .collect()
        };
        let mean_image = |idx: &[usize]| {
            let (images, _) = train.gather(idx);
            let mut acc = Tensor::zeros(&[1, 3, 16, 16]);
            for i in 0..images.shape()[0] {
                acc.add_assign(&images.batch_item(i));
            }
            acc.scale(1.0 / images.shape()[0] as f32)
        };
        let c0 = of_class(0);
        let c1 = of_class(1);
        let m0 = mean_image(&c0);
        let m1 = mean_image(&c1);
        let between = m0.sub(&m1).norm();
        let (im_a, _) = train.gather(&c0[..1]);
        let (im_b, _) = train.gather(&c0[1..2]);
        let within = im_a.sub(&im_b).norm();
        assert!(
            between > within * 0.5,
            "between-class distance {between} should be comparable to within-class {within}"
        );
    }

    #[test]
    fn face_family_renders_distinct_attribute_classes() {
        let spec = SyntheticSpec::celeba_hq_like().with_samples(2, 1);
        let data = spec.generate(21);
        let labels = data.train.labels().to_vec();
        let first_of = |c: usize| labels.iter().position(|&l| l == c).unwrap();
        let (a, _) = data.train.gather(&[first_of(0)]);
        let (b, _) = data.train.gather(&[first_of(3)]);
        assert!(
            a.sub(&b).norm() > 1.0,
            "attribute classes must look different"
        );
    }

    #[test]
    fn class_colours_are_distinct() {
        let colours: Vec<[f32; 3]> = (0..10).map(|c| class_colour(c, 10)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d: f32 = colours[i]
                    .iter()
                    .zip(&colours[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(d > 0.1, "classes {i} and {j} share a colour");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sized_spec_is_rejected() {
        let mut spec = SyntheticSpec::tiny_for_tests();
        spec.num_classes = 0;
        let _ = spec.generate(0);
    }

    #[test]
    fn into_split_preserves_data() {
        let data = SyntheticSpec::tiny_for_tests().generate(1);
        let train_len = data.train.len();
        let split = data.into_split();
        assert_eq!(split.train.len(), train_len);
    }
}
