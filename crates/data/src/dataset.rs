//! In-memory labelled image dataset with batching and splitting utilities.

use ensembler_tensor::{Rng, Tensor};

/// A labelled image dataset held entirely in memory.
///
/// Images are stored as a single `[N, C, H, W]` tensor with values in
/// `[0, 1]`; labels are class indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an image tensor and matching labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank-4, the label count differs from the
    /// batch size, or a label is `>= num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.rank(), 4, "images must be [N, C, H, W]");
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "one label per image required"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape `[C, H, W]` of a single image.
    pub fn image_shape(&self) -> Vec<usize> {
        self.images.shape()[1..].to_vec()
    }

    /// All images as one `[N, C, H, W]` tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns the contiguous batch starting at `start` with up to `size`
    /// samples (truncated at the end of the dataset).
    ///
    /// # Panics
    ///
    /// Panics if `start >= len()` or `size == 0`.
    pub fn batch(&self, start: usize, size: usize) -> (Tensor, Vec<usize>) {
        assert!(start < self.len(), "batch start {start} out of range");
        assert!(size > 0, "batch size must be positive");
        let end = (start + size).min(self.len());
        let items: Vec<Tensor> = (start..end).map(|i| self.images.batch_item(i)).collect();
        (
            Tensor::stack_batch(&items),
            self.labels[start..end].to_vec(),
        )
    }

    /// Returns the samples at the given indices as a batch.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "gather requires at least one index");
        let items: Vec<Tensor> = indices
            .iter()
            .map(|&i| {
                assert!(i < self.len(), "index {i} out of range");
                self.images.batch_item(i)
            })
            .collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (Tensor::stack_batch(&items), labels)
    }

    /// Returns an iterator over shuffled mini-batches.
    pub fn batches(&self, batch_size: usize, rng: &mut Rng) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        Batches {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Splits the dataset into a training and a test portion.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not strictly between 0 and 1.
    pub fn split(&self, train_fraction: f32, rng: &mut Rng) -> DatasetSplit {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        let cut = ((self.len() as f32) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        let (train_idx, test_idx) = order.split_at(cut);
        let (train_images, train_labels) = self.gather(train_idx);
        let (test_images, test_labels) = self.gather(test_idx);
        DatasetSplit {
            train: Dataset::new(train_images, train_labels, self.num_classes),
            test: Dataset::new(test_images, test_labels, self.num_classes),
        }
    }

    /// Returns the first `count` samples as a new dataset (useful for fast
    /// smoke tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the dataset size.
    pub fn take(&self, count: usize) -> Dataset {
        assert!(count > 0 && count <= self.len(), "invalid take count");
        let indices: Vec<usize> = (0..count).collect();
        let (images, labels) = self.gather(&indices);
        Dataset::new(images, labels, self.num_classes)
    }
}

/// A train/test pair produced by [`Dataset::split`] or a synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSplit {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

/// Iterator over shuffled mini-batches of a [`Dataset`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let indices = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.gather(indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, classes: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| (i % 7) as f32 / 7.0);
        let labels = (0..n).map(|i| i % classes).collect();
        Dataset::new(images, labels, classes)
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy_dataset(10, 5);
        assert_eq!(ds.len(), 10);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_classes(), 5);
        assert_eq!(ds.image_shape(), vec![1, 2, 2]);
        assert_eq!(ds.labels().len(), 10);
        assert_eq!(ds.images().shape(), &[10, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_must_be_within_class_count() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        let _ = Dataset::new(images, vec![0, 5], 3);
    }

    #[test]
    fn contiguous_batches_truncate_at_the_end() {
        let ds = toy_dataset(10, 2);
        let (images, labels) = ds.batch(8, 4);
        assert_eq!(images.shape()[0], 2);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn gather_selects_requested_samples() {
        let ds = toy_dataset(6, 3);
        let (images, labels) = ds.gather(&[5, 0, 3]);
        assert_eq!(images.shape()[0], 3);
        assert_eq!(labels, vec![2, 0, 0]);
    }

    #[test]
    fn shuffled_batches_cover_every_sample_exactly_once() {
        let ds = toy_dataset(23, 4);
        let mut rng = Rng::seed_from(0);
        let mut seen = [0usize; 4];
        let mut total = 0;
        for (images, labels) in ds.batches(5, &mut rng) {
            assert!(images.shape()[0] <= 5);
            total += labels.len();
            for l in labels {
                seen[l] += 1;
            }
        }
        assert_eq!(total, 23);
        assert_eq!(seen.iter().sum::<usize>(), 23);
    }

    #[test]
    fn split_partitions_the_dataset() {
        let ds = toy_dataset(20, 2);
        let mut rng = Rng::seed_from(1);
        let split = ds.split(0.75, &mut rng);
        assert_eq!(split.train.len() + split.test.len(), 20);
        assert_eq!(split.train.len(), 15);
        assert_eq!(split.train.num_classes(), 2);
    }

    #[test]
    fn take_returns_a_prefix() {
        let ds = toy_dataset(9, 3);
        let head = ds.take(4);
        assert_eq!(head.len(), 4);
        assert_eq!(head.labels(), &ds.labels()[..4]);
    }

    #[test]
    #[should_panic(expected = "batch start")]
    fn batch_start_out_of_range_panics() {
        let ds = toy_dataset(3, 3);
        let _ = ds.batch(3, 1);
    }
}
