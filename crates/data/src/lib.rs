//! Synthetic image-classification datasets standing in for CIFAR-10,
//! CIFAR-100 and the CelebA-HQ subset used by the Ensembler paper.
//!
//! The reproduction cannot ship the original datasets, so this crate
//! procedurally generates small RGB images whose appearance depends on the
//! class label: class-specific base colours, geometric shapes and textures
//! plus per-sample jitter. That is sufficient for the paper's evaluation
//! because
//!
//! 1. the classifier only needs *some* learnable class structure, and
//! 2. the model inversion attack is scored by SSIM/PSNR between the private
//!    input and its reconstruction, which is meaningful for any structured
//!    image distribution.
//!
//! See `DESIGN.md` (substitution table) for the full justification.
//!
//! # Examples
//!
//! ```
//! use ensembler_data::{SyntheticDataset, SyntheticSpec};
//!
//! let data = SyntheticSpec::cifar10_like().generate(42);
//! assert_eq!(data.train.len(), 400);
//! assert_eq!(data.train.num_classes(), 10);
//! let (images, labels) = data.train.batch(0, 8);
//! assert_eq!(images.shape(), &[8, 3, 16, 16]);
//! assert_eq!(labels.len(), 8);
//! ```

mod dataset;
mod synthetic;

pub use dataset::{Batches, Dataset, DatasetSplit};
pub use synthetic::{SyntheticDataset, SyntheticFamily, SyntheticSpec};
