//! End-to-end latency estimates for the deployments compared in Table III.

use crate::cost::network_cost;
use crate::deployment::DeploymentProfile;
use ensembler::Defense;
use ensembler_nn::models::ResNetConfig;

/// Slowdown of the STAMP encrypted-inference baseline relative to plain
/// collaborative inference, calibrated from the totals the paper reports
/// (309.7 s vs 3.94 s for the same ResNet-18 batch).
const STAMP_SLOWDOWN: f64 = 309.7 / 3.94;

/// Per-component latency of one inference batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Time spent computing on the client, in seconds.
    pub client_s: f64,
    /// Time spent computing on the server, in seconds.
    pub server_s: f64,
    /// Time spent moving data between client and server, in seconds.
    pub communication_s: f64,
}

impl LatencyBreakdown {
    /// Total end-to-end latency.
    pub fn total(&self) -> f64 {
        self.client_s + self.server_s + self.communication_s
    }

    /// Relative overhead of `self` with respect to a baseline breakdown.
    pub fn overhead_vs(&self, baseline: &LatencyBreakdown) -> f64 {
        (self.total() - baseline.total()) / baseline.total()
    }
}

/// Latency of a standard (single-network) collaborative-inference batch.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn estimate_standard_ci(
    config: &ResNetConfig,
    batch: usize,
    deployment: &DeploymentProfile,
) -> LatencyBreakdown {
    assert!(batch > 0, "batch size must be positive");
    let cost = network_cost(config);
    let b = batch as f64;

    let client_flops = (cost.head_flops + cost.tail_flops) as f64 * b;
    let server_flops = cost.body_flops as f64 * b;

    LatencyBreakdown {
        client_s: deployment.edge.compute_time_s(client_flops) + deployment.edge.launch_overhead_s,
        server_s: deployment.server.compute_time_s(server_flops)
            + deployment.server.launch_overhead_s,
        communication_s: deployment
            .link
            .round_trip_s(cost.upload_bytes as f64 * b, cost.return_bytes as f64 * b),
    }
}

/// Latency of an Ensembler batch with `ensemble_size` server networks of
/// which `selected` are activated by the client, running on `server_count`
/// identical server machines.
///
/// The client uploads its features once per server machine; every server
/// network returns its (small) feature vector; the client tail consumes the
/// `selected` concatenated vectors.
///
/// # Panics
///
/// Panics if `batch`, `ensemble_size`, `selected` or `server_count` is zero,
/// or if `selected > ensemble_size`.
pub fn estimate_ensembler(
    config: &ResNetConfig,
    batch: usize,
    ensemble_size: usize,
    selected: usize,
    deployment: &DeploymentProfile,
) -> LatencyBreakdown {
    estimate_ensembler_multi_server(config, batch, ensemble_size, selected, 1, deployment)
}

/// [`estimate_ensembler`] generalised to several server machines working in
/// parallel (the multi-party deployment of Sec. III-D).
///
/// # Panics
///
/// See [`estimate_ensembler`].
pub fn estimate_ensembler_multi_server(
    config: &ResNetConfig,
    batch: usize,
    ensemble_size: usize,
    selected: usize,
    server_count: usize,
    deployment: &DeploymentProfile,
) -> LatencyBreakdown {
    assert!(batch > 0, "batch size must be positive");
    assert!(ensemble_size > 0, "ensemble size must be positive");
    assert!(server_count > 0, "server count must be positive");
    assert!(
        selected > 0 && selected <= ensemble_size,
        "selected must be in 1..=ensemble_size"
    );
    let cost = network_cost(config);
    let b = batch as f64;

    // Client: head once, tail over the `selected` concatenated feature maps.
    let client_flops = (cost.head_flops + cost.tail_flops * selected as u64) as f64 * b;
    let client_s = deployment.edge.compute_time_s(client_flops) + deployment.edge.launch_overhead_s;

    // Server: N bodies spread over the machines; each machine runs its share
    // in rounds of `concurrent_streams` networks.
    let per_machine = ensemble_size.div_ceil(server_count);
    let rounds = per_machine.div_ceil(deployment.server.concurrent_streams.max(1)) as f64;
    let server_s = deployment.server.compute_time_s(cost.body_flops as f64 * b) * rounds
        + deployment.server.launch_overhead_s * ensemble_size as f64;

    // Communication: the feature map goes to every machine; all N return
    // vectors come back.
    let upload = cost.upload_bytes as f64 * b * server_count as f64;
    let download = cost.return_bytes as f64 * b * ensemble_size as f64;
    let communication_s = deployment.link.round_trip_s(upload, download);

    LatencyBreakdown {
        client_s,
        server_s,
        communication_s,
    }
}

/// Latency estimate for a live [`Defense`] pipeline: reads the backbone
/// configuration, the ensemble size `N` and the activated count `P` straight
/// from the pipeline instead of asking the caller to repeat them.
///
/// A [`crate::estimate_standard_ci`]-shaped single-network pipeline and an
/// Ensembler pipeline therefore share one estimation entry point — the same
/// unification the inference API received.
///
/// # Panics
///
/// Panics if `batch` or `server_count` is zero.
pub fn estimate_defense(
    defense: &dyn Defense,
    batch: usize,
    server_count: usize,
    deployment: &DeploymentProfile,
) -> LatencyBreakdown {
    estimate_ensembler_multi_server(
        defense.config(),
        batch,
        defense.ensemble_size(),
        defense.selected_count(),
        server_count,
        deployment,
    )
}

/// Latency of a STAMP-style encrypted-inference baseline on the same
/// workload.
///
/// STAMP is closed hardware-assisted software; the paper only reports its
/// end-to-end total, so this model scales the plain collaborative-inference
/// estimate by the slowdown factor derived from those published totals. The
/// per-component split is therefore indicative only.
pub fn estimate_stamp(
    config: &ResNetConfig,
    batch: usize,
    deployment: &DeploymentProfile,
) -> LatencyBreakdown {
    let standard = estimate_standard_ci(config, batch, deployment);
    LatencyBreakdown {
        client_s: standard.client_s * STAMP_SLOWDOWN,
        server_s: standard.server_s * STAMP_SLOWDOWN,
        communication_s: standard.communication_s * STAMP_SLOWDOWN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_setup() -> (ResNetConfig, DeploymentProfile) {
        (
            ResNetConfig::paper_resnet18(10, 32, true),
            DeploymentProfile::paper_testbed(),
        )
    }

    #[test]
    fn standard_ci_matches_the_papers_order_of_magnitude() {
        let (config, deployment) = paper_setup();
        let t = estimate_standard_ci(&config, 128, &deployment);
        // Paper: client 0.66 s, server 0.98 s, communication 2.30 s, total 3.94 s.
        assert!((0.3..1.2).contains(&t.client_s), "client {}", t.client_s);
        assert!((0.4..2.0).contains(&t.server_s), "server {}", t.server_s);
        assert!(
            (1.5..3.5).contains(&t.communication_s),
            "comm {}",
            t.communication_s
        );
        assert!((2.5..6.0).contains(&t.total()), "total {}", t.total());
        // Communication dominates, as the paper observes.
        assert!(t.communication_s > t.client_s);
        assert!(t.communication_s > t.server_s);
    }

    #[test]
    fn ensembler_overhead_is_small_and_dominated_by_communication() {
        let (config, deployment) = paper_setup();
        let standard = estimate_standard_ci(&config, 128, &deployment);
        let ensembler = estimate_ensembler(&config, 128, 10, 4, &deployment);
        let overhead = ensembler.overhead_vs(&standard);
        assert!(
            (0.0..0.20).contains(&overhead),
            "overhead should be a few percent, got {overhead}"
        );
        let comm_increase = ensembler.communication_s - standard.communication_s;
        let server_increase = ensembler.server_s - standard.server_s;
        assert!(
            comm_increase > server_increase,
            "communication should contribute the larger share of the overhead"
        );
        // Client-side cost is essentially unchanged.
        assert!((ensembler.client_s - standard.client_s).abs() < 0.05 * standard.client_s);
    }

    #[test]
    fn stamp_is_orders_of_magnitude_slower() {
        let (config, deployment) = paper_setup();
        let standard = estimate_standard_ci(&config, 128, &deployment);
        let stamp = estimate_stamp(&config, 128, &deployment);
        let ratio = stamp.total() / standard.total();
        assert!(
            (50.0..120.0).contains(&ratio),
            "STAMP should be ~80x slower, got {ratio}"
        );
    }

    #[test]
    fn multi_server_deployment_reduces_server_time_not_upload() {
        let (config, deployment) = paper_setup();
        let single = estimate_ensembler_multi_server(&config, 128, 32, 4, 1, &deployment);
        let quad = estimate_ensembler_multi_server(&config, 128, 32, 4, 4, &deployment);
        assert!(quad.server_s <= single.server_s);
        assert!(quad.communication_s >= single.communication_s);
    }

    #[test]
    fn latency_scales_linearly_with_batch_size() {
        let (config, deployment) = paper_setup();
        let b64 = estimate_standard_ci(&config, 64, &deployment);
        let b128 = estimate_standard_ci(&config, 128, &deployment);
        let ratio = b128.communication_s / b64.communication_s;
        assert!((1.8..2.1).contains(&ratio));
    }

    #[test]
    fn overhead_vs_is_zero_against_itself() {
        let (config, deployment) = paper_setup();
        let t = estimate_standard_ci(&config, 16, &deployment);
        assert!(t.overhead_vs(&t).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "selected must be in")]
    fn invalid_selection_is_rejected() {
        let (config, deployment) = paper_setup();
        let _ = estimate_ensembler(&config, 1, 4, 5, &deployment);
    }

    #[test]
    fn estimate_defense_reads_the_pipeline_shape() {
        use ensembler::{DefenseKind, SinglePipeline};

        let deployment = DeploymentProfile::paper_testbed();
        let pipeline = SinglePipeline::new(
            ensembler_nn::models::ResNetConfig::tiny_for_tests(),
            DefenseKind::NoDefense,
            1,
        )
        .unwrap();
        let from_defense = estimate_defense(&pipeline, 16, 1, &deployment);
        let explicit = estimate_ensembler(pipeline.config(), 16, 1, 1, &deployment);
        assert_eq!(from_defense, explicit);
    }
}
