//! Device and network profiles describing a collaborative-inference testbed.

/// Throughput model of one compute device.
///
/// `effective_flops` is the *sustained* throughput observed for the small
/// convolutional workloads of split inference, not the datasheet peak — the
/// defaults are calibrated so the standard-CI row of Table III comes out
/// close to the paper's measurement (0.66 s client / 0.98 s server for a
/// 128-image ResNet-18 batch).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Sustained floating-point throughput in FLOP/s.
    pub effective_flops: f64,
    /// Fixed overhead per network launch (kernel dispatch, scheduling) per
    /// batch, in seconds.
    pub launch_overhead_s: f64,
    /// How many independent networks the device can execute concurrently
    /// without slowdown (GPU streams / multi-core slack).
    pub concurrent_streams: usize,
}

impl DeviceProfile {
    /// Raspberry-Pi-class edge client.
    pub fn raspberry_pi() -> Self {
        Self {
            name: "raspberry-pi-4".to_string(),
            effective_flops: 0.7e9,
            launch_overhead_s: 0.005,
            concurrent_streams: 1,
        }
    }

    /// A6000-class inference server.
    pub fn a6000_server() -> Self {
        Self {
            name: "a6000-server".to_string(),
            effective_flops: 36.0e9,
            launch_overhead_s: 0.005,
            concurrent_streams: 16,
        }
    }

    /// Time to execute `flops` floating-point operations once.
    ///
    /// # Panics
    ///
    /// Panics if the profile's throughput is not positive.
    pub fn compute_time_s(&self, flops: f64) -> f64 {
        assert!(self.effective_flops > 0.0, "throughput must be positive");
        flops / self.effective_flops
    }
}

/// Asymmetric network link between the client and the server.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Client-to-server bandwidth in bytes per second.
    pub uplink_bytes_per_s: f64,
    /// Server-to-client bandwidth in bytes per second.
    pub downlink_bytes_per_s: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkProfile {
    /// The constrained wired/embedded link of the paper's testbed.
    pub fn paper_lan() -> Self {
        Self {
            uplink_bytes_per_s: 3.8e6,
            downlink_bytes_per_s: 16.0e6,
            latency_s: 0.01,
        }
    }

    /// Transfer time for an upload followed by a download.
    pub fn round_trip_s(&self, upload_bytes: f64, download_bytes: f64) -> f64 {
        upload_bytes / self.uplink_bytes_per_s
            + download_bytes / self.downlink_bytes_per_s
            + 2.0 * self.latency_s
    }
}

/// A complete deployment: edge device, server device and the link between
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentProfile {
    /// The client (edge) device.
    pub edge: DeviceProfile,
    /// The server device.
    pub server: DeviceProfile,
    /// The network link.
    pub link: LinkProfile,
}

impl DeploymentProfile {
    /// The Raspberry-Pi + A6000 + wired-LAN testbed of the paper.
    pub fn paper_testbed() -> Self {
        Self {
            edge: DeviceProfile::raspberry_pi(),
            server: DeviceProfile::a6000_server(),
            link: LinkProfile::paper_lan(),
        }
    }
}

impl Default for DeploymentProfile {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_compute_time_scales_linearly() {
        let pi = DeviceProfile::raspberry_pi();
        let t1 = pi.compute_time_s(1e9);
        let t2 = pi.compute_time_s(2e9);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!(t1 > 1.0, "a Pi needs more than a second for a GFLOP");
    }

    #[test]
    fn server_is_much_faster_than_edge() {
        let pi = DeviceProfile::raspberry_pi();
        let gpu = DeviceProfile::a6000_server();
        assert!(gpu.effective_flops > 20.0 * pi.effective_flops);
        assert!(gpu.concurrent_streams > pi.concurrent_streams);
    }

    #[test]
    fn link_round_trip_includes_both_directions_and_latency() {
        let link = LinkProfile::paper_lan();
        let t = link.round_trip_s(3.8e6, 16.0e6);
        // One second each direction plus two one-way latencies.
        assert!((t - (1.0 + 1.0 + 0.02)).abs() < 1e-6);
    }

    #[test]
    fn default_profile_is_the_paper_testbed() {
        assert_eq!(
            DeploymentProfile::default(),
            DeploymentProfile::paper_testbed()
        );
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_is_rejected() {
        let mut profile = DeviceProfile::raspberry_pi();
        profile.effective_flops = 0.0;
        let _ = profile.compute_time_s(1.0);
    }
}
