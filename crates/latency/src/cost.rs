//! FLOP and byte accounting for the split backbone.

use ensembler_nn::models::ResNetConfig;

/// Cost of a single layer: floating-point operations (multiply-accumulates
/// counted as two FLOPs) and the size of its output activation in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Floating-point operations for one sample.
    pub flops: u64,
    /// Output activation size for one sample, in bytes (f32).
    pub output_bytes: u64,
}

impl LayerCost {
    /// Cost of a `k x k` convolution producing `out_c x out_h x out_w` from
    /// `in_c` channels.
    pub fn conv2d(in_c: usize, out_c: usize, kernel: usize, out_h: usize, out_w: usize) -> Self {
        let macs = (in_c * kernel * kernel * out_c * out_h * out_w) as u64;
        Self {
            flops: 2 * macs,
            output_bytes: (4 * out_c * out_h * out_w) as u64,
        }
    }

    /// Cost of a fully-connected layer.
    pub fn linear(in_features: usize, out_features: usize) -> Self {
        Self {
            flops: 2 * (in_features * out_features) as u64,
            output_bytes: (4 * out_features) as u64,
        }
    }

    /// Cost of a batch-norm + activation pass over a feature map (elementwise).
    pub fn elementwise(channels: usize, h: usize, w: usize) -> Self {
        Self {
            flops: (4 * channels * h * w) as u64,
            output_bytes: (4 * channels * h * w) as u64,
        }
    }
}

/// Framing overhead of a length-framed tensor wire protocol, in bytes.
///
/// The analytic model historically counted only raw `f32` payload bytes
/// (`upload_bytes`, `return_bytes`). With the networked serving path in
/// `crates/serve` those terms became measurable, and real frames carry
/// protocol overhead on top: a frame header and checksum trailer, a
/// per-tensor header (magic + rank + dimensions) and, for tensor lists, a
/// count word plus per-tensor length prefixes.
///
/// `ensembler-serve` exports its actual layout as a `WireOverhead` constant
/// and a test over there asserts that [`NetworkCost::upload_frame_bytes`] /
/// [`NetworkCost::return_frame_bytes`] computed from this model equal the
/// byte length of genuinely encoded frames, so the analytic model cannot
/// silently drift from the implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOverhead {
    /// Fixed bytes per frame: header plus checksum trailer.
    pub frame_bytes: u64,
    /// Fixed bytes per encoded tensor: magic word plus rank word.
    pub tensor_base_bytes: u64,
    /// Bytes per shape dimension of an encoded tensor.
    pub per_dim_bytes: u64,
    /// Bytes for the count word preceding a list of tensors.
    pub list_header_bytes: u64,
    /// Bytes for the length prefix in front of each tensor in a list.
    pub per_tensor_prefix_bytes: u64,
    /// Bytes for each per-sample quantization scale carried by a protocol-v2
    /// quantized tensor (one `f32` per batch item).
    pub per_scale_bytes: u64,
    /// Bytes for the length prefix in front of every wire string (model
    /// names, pipeline labels, error messages — protocol v3 handshakes carry
    /// two of them).
    pub per_string_bytes: u64,
    /// Bytes for the `lo`/`hi` body-range words carried by a protocol-v4
    /// sub-range request (one `u32` each) — what a shard router spends per
    /// request to name the slice a worker should evaluate.
    pub range_header_bytes: u64,
    /// Bytes for the request-id word carried in the extended header of a
    /// protocol-v5 *tagged* frame (one big-endian `u64`) — the entire
    /// per-frame wire cost of pipelined connection multiplexing. Untagged
    /// frames (protocol v1–v4) spend zero of these.
    pub request_id_bytes: u64,
}

impl WireOverhead {
    /// Exact byte length of a `Hello` frame: the fixed frame overhead, the
    /// two-byte version offer and — for a protocol-v3 hello that requests a
    /// model by name — a length-prefixed string of `model_name_bytes` bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler_latency::WireOverhead;
    ///
    /// let overhead = WireOverhead {
    ///     frame_bytes: 16,
    ///     tensor_base_bytes: 8,
    ///     per_dim_bytes: 4,
    ///     list_header_bytes: 4,
    ///     per_tensor_prefix_bytes: 4,
    ///     per_scale_bytes: 4,
    ///     per_string_bytes: 4,
    ///     range_header_bytes: 8,
    ///     request_id_bytes: 8,
    /// };
    /// // A legacy hello spends only the version word on top of the frame.
    /// assert_eq!(overhead.hello_frame_bytes(None), 16 + 2);
    /// // Requesting the model "alpha" adds a 4-byte prefix + 5 name bytes.
    /// assert_eq!(overhead.hello_frame_bytes(Some(5)), 16 + 2 + 4 + 5);
    /// ```
    pub fn hello_frame_bytes(&self, model_name_bytes: Option<u64>) -> u64 {
        self.frame_bytes + 2 + model_name_bytes.map_or(0, |name| self.per_string_bytes + name)
    }

    /// Exact byte length of a `HelloAck` frame: the fixed frame overhead, the
    /// two-byte negotiated version, the length-prefixed pipeline label, the
    /// `N` and `P` words (4 bytes each) and — when the server echoes the
    /// resolved model name to a v3 client — one more length-prefixed string.
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler_latency::WireOverhead;
    ///
    /// let overhead = WireOverhead {
    ///     frame_bytes: 16,
    ///     tensor_base_bytes: 8,
    ///     per_dim_bytes: 4,
    ///     list_header_bytes: 4,
    ///     per_tensor_prefix_bytes: 4,
    ///     per_scale_bytes: 4,
    ///     per_string_bytes: 4,
    ///     range_header_bytes: 8,
    ///     request_id_bytes: 8,
    /// };
    /// // "Ensembler" is 9 bytes; N and P spend 4 bytes each.
    /// assert_eq!(overhead.hello_ack_frame_bytes(9, None), 16 + 2 + 4 + 9 + 8);
    /// assert_eq!(
    ///     overhead.hello_ack_frame_bytes(9, Some(5)),
    ///     16 + 2 + 4 + 9 + 8 + 4 + 5
    /// );
    /// ```
    pub fn hello_ack_frame_bytes(&self, label_bytes: u64, model_name_bytes: Option<u64>) -> u64 {
        self.frame_bytes
            + 2
            + self.per_string_bytes
            + label_bytes
            + 8
            + model_name_bytes.map_or(0, |name| self.per_string_bytes + name)
    }
}

/// Per-partition cost of the split backbone for a single sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkCost {
    /// FLOPs executed by the client head (`M_c,h`).
    pub head_flops: u64,
    /// FLOPs executed by one server body (`M_s^i`).
    pub body_flops: u64,
    /// FLOPs executed by the client tail (`M_c,t`) for a single-network
    /// feature vector.
    pub tail_flops: u64,
    /// Bytes of the intermediate feature map the client uploads.
    pub upload_bytes: u64,
    /// Bytes of the feature vector one server network returns.
    pub return_bytes: u64,
}

impl NetworkCost {
    /// Total client FLOPs (head plus tail) for a single network.
    pub fn client_flops(&self) -> u64 {
        self.head_flops + self.tail_flops
    }

    /// Exact byte length of the request frame a client sends to upload the
    /// transmitted features for a batch of `batch` images.
    ///
    /// The upload is one rank-4 `[B, C, H, W]` tensor, so the frame is the
    /// fixed frame overhead plus one tensor header with four dimension words
    /// plus `batch` copies of the per-sample payload (`upload_bytes`).
    pub fn upload_frame_bytes(&self, batch: u64, overhead: &WireOverhead) -> u64 {
        overhead.frame_bytes
            + overhead.tensor_base_bytes
            + 4 * overhead.per_dim_bytes
            + self.upload_bytes * batch
    }

    /// Exact byte length of the response frame a server sends back with the
    /// `ensemble_size` per-network feature maps for a batch of `batch` images.
    ///
    /// The response is a list of `ensemble_size` rank-2 `[B, F]` tensors:
    /// fixed frame overhead, a list count word, and per tensor a length
    /// prefix, a tensor header with two dimension words and `batch` copies of
    /// the per-sample payload (`return_bytes`).
    pub fn return_frame_bytes(
        &self,
        batch: u64,
        ensemble_size: u64,
        overhead: &WireOverhead,
    ) -> u64 {
        overhead.frame_bytes
            + overhead.list_header_bytes
            + ensemble_size
                * (overhead.per_tensor_prefix_bytes
                    + overhead.tensor_base_bytes
                    + 2 * overhead.per_dim_bytes
                    + self.return_bytes * batch)
    }

    /// Exact byte length of the protocol-v2 **quantized** request frame for a
    /// batch of `batch` images.
    ///
    /// A quantized tensor spends one byte per element instead of four
    /// (`upload_bytes` counts `f32` payload, so the int8 payload is a
    /// quarter of it) plus one scale word per batch sample.
    pub fn upload_frame_bytes_q(&self, batch: u64, overhead: &WireOverhead) -> u64 {
        overhead.frame_bytes
            + overhead.tensor_base_bytes
            + 4 * overhead.per_dim_bytes
            + batch * overhead.per_scale_bytes
            + self.upload_bytes / 4 * batch
    }

    /// Exact byte length of the protocol-v2 **quantized** response frame with
    /// the `ensemble_size` per-network maps for a batch of `batch` images —
    /// roughly a quarter of [`NetworkCost::return_frame_bytes`], which is the
    /// point of the quantized encoding.
    pub fn return_frame_bytes_q(
        &self,
        batch: u64,
        ensemble_size: u64,
        overhead: &WireOverhead,
    ) -> u64 {
        overhead.frame_bytes
            + overhead.list_header_bytes
            + ensemble_size
                * (overhead.per_tensor_prefix_bytes
                    + overhead.tensor_base_bytes
                    + 2 * overhead.per_dim_bytes
                    + batch * overhead.per_scale_bytes
                    + self.return_bytes / 4 * batch)
    }

    /// Exact byte length of a protocol-v4 **sub-range** request frame: the
    /// plain upload frame plus the `lo..hi` range words
    /// ([`WireOverhead::range_header_bytes`]).
    ///
    /// This is what a shard router uploads to each worker — the range header
    /// is the entire per-request wire cost of sharding the ensemble, since a
    /// worker's response is just [`NetworkCost::return_frame_bytes`] with the
    /// slice length `hi - lo` as the ensemble size.
    pub fn upload_frame_bytes_range(&self, batch: u64, overhead: &WireOverhead) -> u64 {
        self.upload_frame_bytes(batch, overhead) + overhead.range_header_bytes
    }

    /// The quantized twin of [`NetworkCost::upload_frame_bytes_range`]: the
    /// quantized upload frame plus the `lo..hi` range words.
    pub fn upload_frame_bytes_range_q(&self, batch: u64, overhead: &WireOverhead) -> u64 {
        self.upload_frame_bytes_q(batch, overhead) + overhead.range_header_bytes
    }
}

/// Computes the per-sample split costs of a backbone configuration.
///
/// The accounting walks the same structure `ensembler-nn` builds: a stem
/// convolution (plus optional pool) on the client, residual stages plus
/// global pooling on the server, and a linear classifier back on the client.
pub fn network_cost(config: &ResNetConfig) -> NetworkCost {
    let head_shape = config.head_output_shape();
    let (head_c, head_h, head_w) = (head_shape[0], head_shape[1], head_shape[2]);

    // Client head: stem conv at full image resolution (+ pooling is free by
    // comparison and ignored).
    let stem = LayerCost::conv2d(
        config.input_channels,
        config.stem_channels,
        3,
        config.image_size,
        config.image_size,
    );
    let head_flops = stem.flops;

    // Server body: residual stages.
    let mut body_flops = 0u64;
    let mut in_c = config.stem_channels;
    let mut h = head_h;
    let mut w = head_w;
    for (stage_idx, &out_c) in config.stage_channels.iter().enumerate() {
        for block_idx in 0..config.blocks_per_stage {
            let stride = if stage_idx > 0 && block_idx == 0 {
                2
            } else {
                1
            };
            if stride == 2 {
                h /= 2;
                w /= 2;
            }
            let conv1 = LayerCost::conv2d(in_c, out_c, 3, h, w);
            let conv2 = LayerCost::conv2d(out_c, out_c, 3, h, w);
            let bn_relu = LayerCost::elementwise(out_c, h, w);
            body_flops += conv1.flops + conv2.flops + 2 * bn_relu.flops;
            if stride == 2 || in_c != out_c {
                body_flops += LayerCost::conv2d(in_c, out_c, 1, h, w).flops;
            }
            in_c = out_c;
        }
    }
    // Global average pooling.
    body_flops += (in_c * h * w) as u64;

    // Client tail: linear classifier on one network's features.
    let tail = LayerCost::linear(config.body_output_features(), config.num_classes);

    NetworkCost {
        head_flops,
        body_flops,
        tail_flops: tail.flops,
        upload_bytes: (4 * head_c * head_h * head_w) as u64,
        return_bytes: (4 * config.body_output_features()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_cost_matches_hand_computation() {
        // 3 -> 64 channels, 3x3, 32x32 output: 64*3*9*32*32 MACs.
        let cost = LayerCost::conv2d(3, 64, 3, 32, 32);
        assert_eq!(cost.flops, 2 * 64 * 3 * 9 * 32 * 32);
        assert_eq!(cost.output_bytes, 4 * 64 * 32 * 32);
    }

    #[test]
    fn linear_and_elementwise_costs() {
        assert_eq!(LayerCost::linear(512, 10).flops, 2 * 5120);
        assert_eq!(LayerCost::elementwise(16, 8, 8).output_bytes, 4 * 16 * 64);
    }

    #[test]
    fn paper_resnet18_upload_matches_the_reported_feature_size() {
        // The paper states the CIFAR-10 intermediate feature map is
        // [64 x 16 x 16]: 64 KiB of f32 per image.
        let config = ResNetConfig::paper_resnet18(10, 32, true);
        let cost = network_cost(&config);
        assert_eq!(cost.upload_bytes, 4 * 64 * 16 * 16);
        assert_eq!(cost.return_bytes, 4 * 512);
    }

    #[test]
    fn server_dominates_client_compute() {
        // The whole point of collaborative inference: the server body carries
        // far more FLOPs than the single client convolution.
        let config = ResNetConfig::paper_resnet18(10, 32, true);
        let cost = network_cost(&config);
        assert!(cost.body_flops > 10 * cost.head_flops);
        assert!(cost.client_flops() < cost.body_flops);
    }

    #[test]
    fn removing_the_stem_pool_increases_upload_and_body_cost() {
        let pooled = network_cost(&ResNetConfig::paper_resnet18(100, 32, true));
        let unpooled = network_cost(&ResNetConfig::paper_resnet18(100, 32, false));
        assert_eq!(unpooled.upload_bytes, 4 * pooled.upload_bytes);
        assert!(unpooled.body_flops > pooled.body_flops);
    }

    #[test]
    fn frame_byte_model_adds_overhead_on_top_of_payload() {
        let cost = network_cost(&ResNetConfig::paper_resnet18(10, 32, true));
        let overhead = WireOverhead {
            frame_bytes: 16,
            tensor_base_bytes: 8,
            per_dim_bytes: 4,
            list_header_bytes: 4,
            per_tensor_prefix_bytes: 4,
            per_scale_bytes: 4,
            per_string_bytes: 4,
            range_header_bytes: 8,
            request_id_bytes: 8,
        };
        assert_eq!(
            cost.upload_frame_bytes(2, &overhead),
            16 + 8 + 4 * 4 + 2 * cost.upload_bytes
        );
        assert_eq!(
            cost.return_frame_bytes(2, 3, &overhead),
            16 + 4 + 3 * (4 + 8 + 2 * 4 + 2 * cost.return_bytes)
        );
    }

    #[test]
    fn quantized_frame_model_spends_one_byte_per_element_plus_scales() {
        let cost = network_cost(&ResNetConfig::paper_resnet18(10, 32, true));
        let overhead = WireOverhead {
            frame_bytes: 16,
            tensor_base_bytes: 8,
            per_dim_bytes: 4,
            list_header_bytes: 4,
            per_tensor_prefix_bytes: 4,
            per_scale_bytes: 4,
            per_string_bytes: 4,
            range_header_bytes: 8,
            request_id_bytes: 8,
        };
        assert_eq!(
            cost.upload_frame_bytes_q(2, &overhead),
            16 + 8 + 4 * 4 + 2 * 4 + 2 * (cost.upload_bytes / 4)
        );
        assert_eq!(
            cost.return_frame_bytes_q(2, 3, &overhead),
            16 + 4 + 3 * (4 + 8 + 2 * 4 + 2 * 4 + 2 * (cost.return_bytes / 4))
        );
        // The quantized response is roughly a quarter of the f32 one.
        let f32_bytes = cost.return_frame_bytes(8, 4, &overhead) as f64;
        let q_bytes = cost.return_frame_bytes_q(8, 4, &overhead) as f64;
        assert!(q_bytes < 0.3 * f32_bytes, "{q_bytes} vs {f32_bytes}");
    }

    #[test]
    fn range_requests_cost_one_range_header_on_top_of_the_upload() {
        let cost = network_cost(&ResNetConfig::paper_resnet18(10, 32, true));
        let overhead = WireOverhead {
            frame_bytes: 16,
            tensor_base_bytes: 8,
            per_dim_bytes: 4,
            list_header_bytes: 4,
            per_tensor_prefix_bytes: 4,
            per_scale_bytes: 4,
            per_string_bytes: 4,
            range_header_bytes: 8,
            request_id_bytes: 8,
        };
        assert_eq!(
            cost.upload_frame_bytes_range(2, &overhead),
            cost.upload_frame_bytes(2, &overhead) + 8
        );
        assert_eq!(
            cost.upload_frame_bytes_range_q(2, &overhead),
            cost.upload_frame_bytes_q(2, &overhead) + 8
        );
    }

    #[test]
    fn micro_config_costs_scale_down() {
        let micro = network_cost(&ResNetConfig::cifar10_like());
        let paper = network_cost(&ResNetConfig::paper_resnet18(10, 32, true));
        assert!(micro.body_flops < paper.body_flops / 100);
    }
}
