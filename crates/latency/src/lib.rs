//! Analytic latency and deployment-cost model for collaborative inference.
//!
//! The paper's Table III measures wall-clock time for a 128-image batch on a
//! physical testbed (Raspberry Pi client, A6000 server, wired LAN) for three
//! deployments: standard collaborative inference, Ensembler, and the
//! encryption-based STAMP system. This crate reproduces the *shape* of that
//! table with an analytic cost model:
//!
//! * [`cost`] counts the floating-point work and the bytes that cross the
//!   network for a given backbone configuration;
//! * [`deployment`] describes device throughput and link characteristics,
//!   with a profile calibrated to the paper's testbed;
//! * [`estimate`] combines the two into per-component latencies for standard
//!   CI, Ensembler (with a configurable number of parallel server workers)
//!   and a STAMP-style encrypted baseline.
//!
//! # Examples
//!
//! ```
//! use ensembler_latency::{estimate_ensembler, estimate_standard_ci, DeploymentProfile};
//! use ensembler_nn::models::ResNetConfig;
//!
//! let config = ResNetConfig::paper_resnet18(10, 32, true);
//! let deployment = DeploymentProfile::paper_testbed();
//! let standard = estimate_standard_ci(&config, 128, &deployment);
//! let ensembler = estimate_ensembler(&config, 128, 10, 1, &deployment);
//! assert!(ensembler.total() > standard.total());
//! // The overhead stays small because the extra work is server-side and the
//! // extra communication is only the N small return payloads.
//! assert!(ensembler.total() < standard.total() * 1.5);
//! ```

pub mod cost;
pub mod deployment;
pub mod estimate;

pub use cost::{network_cost, LayerCost, NetworkCost, WireOverhead};
pub use deployment::{DeploymentProfile, DeviceProfile, LinkProfile};
pub use estimate::{
    estimate_defense, estimate_ensembler, estimate_ensembler_multi_server, estimate_stamp,
    estimate_standard_ci, LatencyBreakdown,
};
