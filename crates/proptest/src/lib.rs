//! Minimal offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` crate cannot be fetched. This crate implements the small
//! API subset the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`any`],
//! [`Just`], [`ProptestConfig`] and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Inputs are sampled pseudo-randomly (deterministically seeded per test
//! name) instead of being shrunk on failure; swap the path dependency for the
//! registry crate to get real shrinking without source changes.

/// Deterministic SplitMix64 generator driving the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u8);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $ty
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked with.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual glob import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-1.5f32..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
            let i = Strategy::sample(&(2usize..=5), &mut rng);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..5, 1usize..4), k in -1.0f32..1.0) {
            prop_assert!(a < 5 && b < 4);
            prop_assert!((-1.0..1.0).contains(&k));
        }
    }
}
