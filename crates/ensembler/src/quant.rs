//! [`QuantizedDefense`]: any [`Defense`] re-served with int8 server bodies
//! and quantized split tensors, without touching a single call site.
//!
//! The wrapper quantizes the server bodies once at construction time
//! (weights get per-tensor scales, see [`ensembler_nn::quant`]) and leaves
//! the client-side stages — head, noise, secret selector, tail — on the
//! wrapped pipeline in `f32`: they are tiny next to the `N` server bodies,
//! and keeping the classifier full-precision is what holds the accuracy
//! delta against `f32` to a fraction of a percentage point.
//!
//! The int8 semantics deliberately include the quantize→dequantize round
//! trips at **both** wire crossings, in process or not: `server_outputs`
//! is defined as `dequantize ∘ server_outputs_quantized ∘ quantize`. A
//! remote client therefore executes byte-for-byte the same arithmetic as an
//! in-process caller — the loopback suite asserts bit-exact agreement —
//! and the protocol's quantized frames carry exactly the tensors the maths
//! consumed.

use crate::defense::{Defense, Precision};
use crate::EnsemblerError;
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{FusionConfig, QCompiledPlan, QSequential, Sequential};
use ensembler_tensor::{par_map, QTensorBatch, Tensor};
use std::sync::Arc;

/// A [`Defense`] whose server bodies run `i8×i8→i32` kernels.
///
/// Construct one with [`QuantizedDefense::quantize`]; everything that
/// programs against `&dyn Defense` — the engine, the TCP server, attacks,
/// benchmarks — serves the quantized pipeline unchanged.
///
/// # Examples
///
/// ```
/// use ensembler::{Defense, DefenseKind, Precision, QuantizedDefense, SinglePipeline};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let pipeline: Arc<dyn Defense> = Arc::new(SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::NoDefense,
///     3,
/// )?);
/// let int8 = QuantizedDefense::quantize(Arc::clone(&pipeline));
/// assert_eq!(int8.precision(), Precision::Int8);
/// assert_eq!(int8.label(), "None+int8");
///
/// let images = Tensor::ones(&[2, 3, 8, 8]);
/// let logits = int8.predict(&images)?;
/// assert_eq!(logits.shape(), pipeline.predict(&images)?.shape());
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug)]
pub struct QuantizedDefense {
    inner: Arc<dyn Defense>,
    label: String,
    qbodies: Vec<QSequential>,
    fusion: FusionConfig,
    qplans: Vec<QCompiledPlan>,
}

impl QuantizedDefense {
    /// Quantizes the server bodies of `inner` for int8 serving with the
    /// default (bit-exact) fusion configuration.
    ///
    /// The label gains an `+int8` suffix so the serving handshake refuses to
    /// pair an int8 client replica with an `f32` deployment (or vice versa)
    /// — mixing them would silently produce logits that differ from both.
    pub fn quantize(inner: Arc<dyn Defense>) -> Self {
        Self::quantize_with(inner, FusionConfig::default())
    }

    /// Quantizes the server bodies of `inner`, compiling the int8 execution
    /// plans with an explicit [`FusionConfig`].
    ///
    /// Under [`FusionConfig::none`] and [`FusionConfig::bit_exact`] the
    /// plans reproduce the eager [`QSequential`] forward bit-for-bit; only
    /// [`FusionConfig::full`] (conv+bn folding before quantization) changes
    /// the arithmetic, within the documented fold tolerance.
    pub fn quantize_with(inner: Arc<dyn Defense>, fusion: FusionConfig) -> Self {
        let qbodies: Vec<QSequential> = inner
            .server_bodies()
            .iter()
            .map(QSequential::from_sequential)
            .collect();
        let qplans = inner
            .server_bodies()
            .iter()
            .map(|body| QCompiledPlan::compile(body, fusion))
            .collect();
        let label = format!("{}+int8", inner.label());
        Self {
            inner,
            label,
            qbodies,
            fusion,
            qplans,
        }
    }

    /// The fusion configuration the int8 plans are compiled with.
    pub fn fusion(&self) -> FusionConfig {
        self.fusion
    }

    /// The wrapped full-precision pipeline.
    pub fn inner(&self) -> &Arc<dyn Defense> {
        &self.inner
    }

    /// The quantized server bodies, in index order.
    pub fn quantized_bodies(&self) -> &[QSequential] {
        &self.qbodies
    }
}

impl Defense for QuantizedDefense {
    fn config(&self) -> &ResNetConfig {
        self.inner.config()
    }

    fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped pipeline's `f32` bodies: under the paper's threat model
    /// the adversary owns the server weights, and quantization is not a
    /// defence — attacks keep reading the full-precision parameters.
    fn server_bodies(&self) -> &[Sequential] {
        self.inner.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.inner.selected_count()
    }

    fn precision(&self) -> Precision {
        Precision::Int8
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.inner.client_features(images)
    }

    /// The quantized-wire semantics: quantize per sample, evaluate through
    /// [`Defense::server_outputs_quantized`], dequantize. The round trips
    /// are part of the definition so that in-process and remote int8
    /// predictions agree bit-exactly.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        let qf = QTensorBatch::quantize_batch(transmitted);
        let qmaps = self.server_outputs_quantized(&qf)?;
        Ok(qmaps.iter().map(QTensorBatch::dequantize).collect())
    }

    /// Evaluates all `N` quantized bodies on the int8 feature batch, in
    /// parallel like the `f32` pipeline, re-quantizing each body's output
    /// per sample for the return leg.
    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        let features = transmitted.dequantize();
        let maps = par_map(&self.qplans, |plan| {
            plan.run(&features)
                .map(|out| QTensorBatch::quantize_batch(&out))
        });
        maps.into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(EnsemblerError::from)
    }

    /// The range twin of [`Defense::server_outputs`]: quantize, evaluate the
    /// `lo..hi` quantized bodies, dequantize — bit-identical to slicing the
    /// full evaluation because scales are per sample within each map.
    fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        let qf = QTensorBatch::quantize_batch(transmitted);
        let qmaps = self.server_outputs_quantized_range(&qf, lo, hi)?;
        Ok(qmaps.iter().map(QTensorBatch::dequantize).collect())
    }

    /// Evaluates only the quantized bodies `lo..hi` — the sharded-worker
    /// serving mode of the int8 backend.
    fn server_outputs_quantized_range(
        &self,
        transmitted: &QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        crate::check_body_range(lo, hi, self.qplans.len())?;
        let features = transmitted.dequantize();
        let maps = par_map(&self.qplans[lo..hi], |plan| {
            plan.run(&features)
                .map(|out| QTensorBatch::quantize_batch(&out))
        });
        maps.into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(EnsemblerError::from)
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.inner.classify(server_maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::EvalConfig;
    use crate::defenses::{DefenseKind, SinglePipeline};
    use ensembler_data::SyntheticSpec;
    use ensembler_metrics::accuracy;

    fn base() -> Arc<dyn Defense> {
        Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 11)
                .unwrap(),
        )
    }

    fn images(batch: usize) -> Tensor {
        Tensor::from_fn(&[batch, 3, 8, 8], |i| ((i % 89) as f32 * 0.171).sin())
    }

    #[test]
    fn quantized_predict_is_deterministic_and_shaped() {
        let int8 = QuantizedDefense::quantize(base());
        let logits_a = int8.predict(&images(3)).unwrap();
        let logits_b = int8.predict(&images(3)).unwrap();
        assert_eq!(logits_a, logits_b);
        assert_eq!(logits_a.shape(), &[3, 3]);
        assert!(logits_a.is_finite());
    }

    #[test]
    fn predict_at_int8_equals_the_quantized_pipelines_own_predict() {
        let inner = base();
        let int8 = QuantizedDefense::quantize(Arc::clone(&inner));
        let batch = images(2);
        assert_eq!(
            int8.predict_at(&batch, Precision::Int8).unwrap(),
            int8.predict(&batch).unwrap()
        );
        // And on the f32 pipeline, predict_at(Int8) only quantizes the split
        // tensors: it differs from full int8 but stays close to f32.
        let wire_only = inner.predict_at(&batch, Precision::Int8).unwrap();
        assert_eq!(wire_only.shape(), &[2, 3]);
    }

    #[test]
    fn per_sample_results_do_not_depend_on_the_batch() {
        let int8 = QuantizedDefense::quantize(base());
        let five = images(5);
        let alone = int8.predict(&five.batch_item(2)).unwrap();
        let together = int8.predict(&five).unwrap();
        let classes = alone.shape()[1];
        assert_eq!(
            alone.data(),
            &together.data()[2 * classes..3 * classes],
            "a sample's int8 logits must not depend on its batch mates"
        );
    }

    #[test]
    fn quantized_range_outputs_equal_the_sliced_full_evaluation() {
        use crate::{EnsemblerPipeline, Selector};
        use ensembler_nn::models::{build_body, build_head, build_tail};
        use ensembler_nn::FixedNoise;
        use ensembler_tensor::Rng;

        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(19);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies = (0..4).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(4, 2, &mut rng).unwrap();
        let tail = build_tail(&config, 2 * config.body_output_features(), &mut rng);
        let inner: Arc<dyn Defense> =
            Arc::new(EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap());
        let int8 = QuantizedDefense::quantize(inner);

        let transmitted = int8.client_features(&images(2)).unwrap();
        let full = int8.server_outputs(&transmitted).unwrap();
        let qf = QTensorBatch::quantize_batch(&transmitted);
        let qfull = int8.server_outputs_quantized(&qf).unwrap();
        for (lo, hi) in [(0usize, 4usize), (0, 2), (2, 4), (1, 3)] {
            assert_eq!(
                int8.server_outputs_range(&transmitted, lo, hi).unwrap(),
                full[lo..hi],
                "f32 range {lo}..{hi}"
            );
            assert_eq!(
                int8.server_outputs_quantized_range(&qf, lo, hi).unwrap(),
                qfull[lo..hi],
                "quantized range {lo}..{hi}"
            );
        }
        assert!(int8.server_outputs_quantized_range(&qf, 3, 3).is_err());
        assert!(int8.server_outputs_range(&transmitted, 2, 9).is_err());
    }

    #[test]
    fn quantized_accuracy_tracks_f32_accuracy() {
        let inner = base();
        let int8 = QuantizedDefense::quantize(Arc::clone(&inner));
        let data = SyntheticSpec::tiny_for_tests().generate(5);
        let f32_acc = inner.evaluate(&data.test, &EvalConfig::default()).unwrap();
        let int8_acc = int8.evaluate(&data.test, &EvalConfig::default()).unwrap();
        assert!(
            (f32_acc - int8_acc).abs() <= 0.25,
            "untrained tiny pipeline: int8 {int8_acc} vs f32 {f32_acc}"
        );
        // Logit-level agreement is the stronger check.
        let (imgs, labels) = data.test.batch(0, data.test.len());
        let f32_logits = inner.predict(&imgs).unwrap();
        let int8_logits = int8.predict(&imgs).unwrap();
        assert_eq!(
            accuracy(&f32_logits, &labels) > 0.0,
            accuracy(&int8_logits, &labels) > 0.0
        );
    }

    #[test]
    fn evaluate_precision_mode_routes_through_the_quantized_stage() {
        let int8 = QuantizedDefense::quantize(base());
        let data = SyntheticSpec::tiny_for_tests().generate(6);
        let cfg = EvalConfig::default();
        let acc_f32_mode = int8.evaluate(&data.test, &cfg).unwrap();
        let acc_int8_mode = int8
            .evaluate(&data.test, &cfg.with_precision(Precision::Int8))
            .unwrap();
        // For a QuantizedDefense both modes run the same int8 arithmetic.
        assert_eq!(acc_f32_mode, acc_int8_mode);
    }
}
