//! Export and reconstruction of [`EnsemblerPipeline`]s as binary model
//! artifacts.
//!
//! The byte container itself lives in [`ensembler_nn::artifact`]; this module
//! owns the *semantic* layer: capturing a live pipeline's architecture,
//! selector, noise, dropout and every parameter tensor into a
//! [`ModelArtifact`], and rebuilding a bit-identical pipeline from one. The
//! reconstruction path re-runs the deterministic architecture builders
//! (`build_head` / `build_body` / `build_tail`) with a throwaway RNG and then
//! overwrites every parameter positionally, checkpoint-style, so a loaded
//! model computes exactly what the exported one did — including the fixed
//! noise pattern and the dropout seed the client's privacy depends on.
//!
//! Int8 artifacts store the same `f32` tensors as f32 artifacts plus a
//! precision flag: quantization is deterministic from the float weights, so
//! [`load_defense`] re-quantizes at load time and reproduces the exact int8
//! serving model.
//!
//! # Examples
//!
//! ```
//! use ensembler::artifact::{load_defense, save_pipeline};
//! use ensembler::{Defense, EnsemblerPipeline, Selector};
//! use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
//! use ensembler_nn::{ArtifactPrecision, FixedNoise};
//! use ensembler_tensor::{Rng, Tensor};
//!
//! let config = ResNetConfig::tiny_for_tests();
//! let mut rng = Rng::seed_from(7);
//! let head = build_head(&config, &mut rng);
//! let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
//! let bodies = vec![build_body(&config, &mut rng), build_body(&config, &mut rng)];
//! let selector = Selector::random(2, 1, &mut rng)?;
//! let tail = build_tail(&config, config.body_output_features(), &mut rng);
//! let pipeline = EnsemblerPipeline::new(config, head, noise, bodies, selector, tail)?;
//!
//! let artifact = save_pipeline(&pipeline, "demo", ArtifactPrecision::F32);
//! let loaded = load_defense(&artifact).unwrap();
//! let images = Tensor::ones(&[2, 3, 8, 8]);
//! assert_eq!(loaded.predict(&images)?, pipeline.predict(&images)?);
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

use crate::defense::Defense;
use crate::framework::EnsemblerPipeline;
use crate::quant::QuantizedDefense;
use crate::selector::Selector;
use ensembler_nn::models::{build_body, build_head, build_tail};
use ensembler_nn::{
    ArtifactError, ArtifactPrecision, Checkpoint, FixedNoise, Layer, ModelArtifact,
};
use ensembler_tensor::Rng;
use std::sync::Arc;

/// Upper bound on any single architecture dimension a loaded artifact may
/// declare. The checksum already rejects accidental corruption; this guard
/// stops a *well-formed* but hostile artifact from making the loader attempt
/// a multi-terabyte allocation while building the declared architecture.
const MAX_CONFIG_DIMENSION: usize = 1 << 20;

/// Captures a pipeline into a self-contained artifact served under `name`.
///
/// The artifact stores `f32` weights regardless of `precision`; an
/// [`ArtifactPrecision::Int8`] flag makes [`load_defense`] re-quantize the
/// bodies deterministically at load time.
pub fn save_pipeline(
    pipeline: &EnsemblerPipeline,
    name: &str,
    precision: ArtifactPrecision,
) -> ModelArtifact {
    let tensors_of = |layer: &dyn Layer| Checkpoint::capture(layer).tensors().to_vec();
    ModelArtifact {
        name: name.to_string(),
        label: pipeline.label().to_string(),
        n: pipeline.ensemble_size() as u32,
        p: pipeline.selected_count() as u32,
        precision,
        config: pipeline.config().clone(),
        selector: pipeline
            .selector()
            .active_indices()
            .iter()
            .map(|&i| i as u32)
            .collect(),
        noise_sigma: pipeline.noise().sigma(),
        noise_pattern: pipeline.noise().pattern().clone(),
        dropout: pipeline
            .feature_dropout()
            .map(|d| (d.probability(), d.seed())),
        head: tensors_of(pipeline.head()),
        bodies: pipeline
            .server_bodies()
            .iter()
            .map(|b| tensors_of(b))
            .collect(),
        tail: tensors_of(pipeline.tail()),
    }
}

/// Rebuilds the exact [`EnsemblerPipeline`] an artifact was exported from.
///
/// # Errors
///
/// Returns [`ArtifactError::Invalid`] if the artifact does not describe a
/// buildable pipeline: inconsistent `n`/`p` against the stored groups, an
/// invalid architecture, an out-of-range selector, a noise pattern whose
/// shape disagrees with the head output, an out-of-range dropout
/// probability, or parameter tensors whose count or shapes do not match the
/// declared architecture. The check set is deliberately exhaustive — a
/// malformed artifact must never yield a silently wrong model.
pub fn load_pipeline(artifact: &ModelArtifact) -> Result<EnsemblerPipeline, ArtifactError> {
    let invalid = |message: String| ArtifactError::Invalid(message);
    let config = artifact.config.clone();
    config
        .validate()
        .map_err(|e| invalid(format!("architecture does not validate: {e}")))?;
    let oversized = [
        config.input_channels,
        config.image_size,
        config.stem_channels,
        config.blocks_per_stage,
        config.num_classes,
        config.stage_channels.len(),
    ]
    .into_iter()
    .chain(config.stage_channels.iter().copied())
    .any(|dim| dim > MAX_CONFIG_DIMENSION);
    if oversized {
        return Err(invalid(format!(
            "architecture dimension exceeds the loader cap of {MAX_CONFIG_DIMENSION}"
        )));
    }

    let n = artifact.n as usize;
    if n != artifact.bodies.len() {
        return Err(invalid(format!(
            "artifact declares n = {n} but stores {} body groups",
            artifact.bodies.len()
        )));
    }
    let indices: Vec<usize> = artifact.selector.iter().map(|&i| i as usize).collect();
    let selector = Selector::from_indices(n, indices)
        .map_err(|e| invalid(format!("selector does not validate: {e}")))?;
    if selector.active_count() != artifact.p as usize {
        return Err(invalid(format!(
            "artifact declares p = {} but the selector activates {} indices",
            artifact.p,
            selector.active_count()
        )));
    }

    if !(artifact.noise_sigma.is_finite() && artifact.noise_sigma >= 0.0) {
        return Err(invalid(format!(
            "noise sigma {} is not a finite non-negative value",
            artifact.noise_sigma
        )));
    }
    let head_shape = config.head_output_shape();
    if artifact.noise_pattern.shape() != head_shape.as_slice() {
        return Err(invalid(format!(
            "noise pattern shape {:?} does not match the head output shape {head_shape:?}",
            artifact.noise_pattern.shape()
        )));
    }
    if let Some((probability, _)) = artifact.dropout {
        if !(probability.is_finite() && (0.0..1.0).contains(&probability)) {
            return Err(invalid(format!(
                "dropout probability {probability} is not in [0, 1)"
            )));
        }
    }

    // Rebuild the architecture with a throwaway RNG, then overwrite every
    // parameter positionally — shape mismatches become typed errors here.
    let mut rng = Rng::seed_from(0);
    let mut head = build_head(&config, &mut rng);
    Checkpoint::from_tensors(artifact.head.clone())
        .restore(&mut head)
        .map_err(|e| invalid(format!("head parameters do not fit: {e}")))?;
    let mut bodies = Vec::with_capacity(n);
    for (index, group) in artifact.bodies.iter().enumerate() {
        let mut body = build_body(&config, &mut rng);
        Checkpoint::from_tensors(group.clone())
            .restore(&mut body)
            .map_err(|e| invalid(format!("body {index} parameters do not fit: {e}")))?;
        bodies.push(body);
    }
    let tail_features = selector.active_count() * config.body_output_features();
    let mut tail = build_tail(&config, tail_features, &mut rng);
    Checkpoint::from_tensors(artifact.tail.clone())
        .restore(&mut tail)
        .map_err(|e| invalid(format!("tail parameters do not fit: {e}")))?;

    let noise = FixedNoise::from_pattern(artifact.noise_pattern.clone(), artifact.noise_sigma);
    let pipeline = EnsemblerPipeline::new(config, head, noise, bodies, selector, tail)
        .map_err(|e| invalid(format!("pipeline does not assemble: {e}")))?;
    Ok(match artifact.dropout {
        Some((probability, seed)) => pipeline.with_feature_dropout(probability, seed),
        None => pipeline,
    })
}

/// Rebuilds the artifact's *serving* model: the pipeline itself for
/// [`ArtifactPrecision::F32`], or the pipeline wrapped in a deterministic
/// [`QuantizedDefense`] for [`ArtifactPrecision::Int8`].
///
/// # Errors
///
/// Propagates every [`load_pipeline`] error.
pub fn load_defense(artifact: &ModelArtifact) -> Result<Arc<dyn Defense>, ArtifactError> {
    let pipeline = Arc::new(load_pipeline(artifact)?);
    Ok(match artifact.precision {
        ArtifactPrecision::F32 => pipeline,
        ArtifactPrecision::Int8 => Arc::new(QuantizedDefense::quantize(pipeline)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_nn::models::ResNetConfig;
    use ensembler_tensor::Tensor;

    fn tiny_pipeline(n: usize, p: usize, seed: u64) -> EnsemblerPipeline {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(seed);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies = (0..n).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(n, p, &mut rng).unwrap();
        let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
        EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap()
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let pipeline = tiny_pipeline(3, 2, 42).with_feature_dropout(0.3, 77);
        let artifact = save_pipeline(&pipeline, "demo", ArtifactPrecision::F32);
        let decoded = ModelArtifact::decode(&artifact.encode()).unwrap();
        let loaded = load_defense(&decoded).unwrap();
        let images = Tensor::from_fn(&[3, 3, 8, 8], |i| (i as f32 * 0.017).sin());
        assert_eq!(
            loaded.predict(&images).unwrap(),
            pipeline.predict(&images).unwrap()
        );
        assert_eq!(loaded.label(), pipeline.label());
        assert_eq!(loaded.ensemble_size(), 3);
        assert_eq!(loaded.selected_count(), 2);
    }

    #[test]
    fn int8_round_trip_matches_requantized_original() {
        let pipeline = Arc::new(tiny_pipeline(2, 1, 9));
        let artifact = save_pipeline(&pipeline, "demo", ArtifactPrecision::Int8);
        let loaded = load_defense(&artifact).unwrap();
        let original = QuantizedDefense::quantize(Arc::clone(&pipeline) as Arc<dyn Defense>);
        let images = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32 * 0.013).cos());
        assert_eq!(
            loaded.predict(&images).unwrap(),
            original.predict(&images).unwrap()
        );
        assert_eq!(loaded.label(), original.label());
    }

    #[test]
    fn inconsistent_counts_are_invalid() {
        let pipeline = tiny_pipeline(2, 1, 3);
        let mut artifact = save_pipeline(&pipeline, "demo", ArtifactPrecision::F32);
        artifact.n = 3;
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = save_pipeline(&pipeline, "demo", ArtifactPrecision::F32);
        artifact.p = 2;
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn out_of_range_selector_is_invalid() {
        let mut artifact = save_pipeline(&tiny_pipeline(2, 1, 4), "demo", ArtifactPrecision::F32);
        artifact.selector = vec![5];
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn hostile_architecture_and_noise_are_invalid() {
        let base = save_pipeline(&tiny_pipeline(2, 1, 5), "demo", ArtifactPrecision::F32);

        let mut artifact = base.clone();
        artifact.config.stem_channels = MAX_CONFIG_DIMENSION + 1;
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = base.clone();
        artifact.config.num_classes = 0;
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = base.clone();
        artifact.noise_sigma = f32::NAN;
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = base.clone();
        artifact.noise_pattern = Tensor::zeros(&[1]);
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = base;
        artifact.dropout = Some((1.5, 0));
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn mismatched_parameter_shapes_are_invalid() {
        let mut artifact = save_pipeline(&tiny_pipeline(2, 1, 6), "demo", ArtifactPrecision::F32);
        artifact.tail.pop();
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));

        let mut artifact = save_pipeline(&tiny_pipeline(2, 1, 6), "demo", ArtifactPrecision::F32);
        artifact.head[0] = Tensor::zeros(&[3, 3]);
        assert!(matches!(
            load_pipeline(&artifact),
            Err(ArtifactError::Invalid(_))
        ));
    }
}
