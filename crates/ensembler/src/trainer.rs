//! The three-stage Ensembler training procedure (Sec. III-C of the paper).
//!
//! * **Stage 1** trains `N` independent split networks, each with its own
//!   fixed Gaussian noise pattern, so the resulting client heads (and the
//!   server bodies behind them) end up with distinct weights.
//! * **Stage 2** secretly selects `P` of the `N` server networks.
//! * **Stage 3** freezes the selected server bodies and retrains a fresh
//!   client head and tail with the cross-entropy objective of Eq. 3 plus the
//!   cosine-similarity regularizer that keeps the new head quasi-orthogonal
//!   to every stage-1 head.

use crate::defense::{Defense, EvalConfig};
use crate::defenses::{DefenseKind, SinglePipeline};
use crate::framework::EnsemblerPipeline;
use crate::selector::Selector;
use crate::EnsemblerError;
use ensembler_data::Dataset;
use ensembler_nn::models::{build_head, build_tail, ResNetConfig};
use ensembler_nn::{
    cosine_penalty, CrossEntropyLoss, FixedNoise, Layer, Mode, Optimizer, Sequential, Sgd,
};
use ensembler_tensor::{Rng, Tensor};

/// Hyper-parameters of the three-stage training procedure.
///
/// # Examples
///
/// ```
/// use ensembler::TrainConfig;
///
/// let cfg = TrainConfig::paper_like();
/// assert!(cfg.lambda > 0.0);
/// assert!(cfg.epochs_stage1 >= 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Epochs used to train each stage-1 network (and the single-network
    /// baselines).
    pub epochs_stage1: usize,
    /// Epochs used for the stage-3 client retraining.
    pub epochs_stage3: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Strength `λ` of the cosine-similarity regularizer (Eq. 3).
    pub lambda: f32,
    /// Standard deviation `σ` of the fixed Gaussian noise.
    pub sigma: f32,
    /// Seed controlling initialisation, noise patterns, batching and the
    /// secret selector.
    pub seed: u64,
}

impl TrainConfig {
    /// A configuration sized for the scaled-down MicroResNet experiments the
    /// benchmark harness runs (seconds per dataset on a laptop CPU).
    pub fn paper_like() -> Self {
        Self {
            epochs_stage1: 8,
            epochs_stage3: 10,
            batch_size: 32,
            learning_rate: 0.05,
            lambda: 1.0,
            sigma: 0.1,
            seed: 2024,
        }
    }

    /// A deliberately tiny configuration for unit tests.
    pub fn fast_for_tests() -> Self {
        Self {
            epochs_stage1: 2,
            epochs_stage3: 3,
            batch_size: 8,
            learning_rate: 0.05,
            lambda: 0.5,
            sigma: 0.1,
            seed: 42,
        }
    }

    /// Returns a copy with a different regularization strength, used by the
    /// λ-ablation benchmark.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any count is zero or a coefficient is negative.
    pub fn validate(&self) -> Result<(), EnsemblerError> {
        if self.epochs_stage1 == 0 || self.epochs_stage3 == 0 || self.batch_size == 0 {
            return Err(EnsemblerError::InvalidConfig(
                "epoch and batch counts must be positive".to_string(),
            ));
        }
        if self.learning_rate <= 0.0 || self.lambda < 0.0 || self.sigma < 0.0 {
            return Err(EnsemblerError::InvalidConfig(
                "learning rate must be positive; lambda and sigma non-negative".to_string(),
            ));
        }
        Ok(())
    }
}

/// What remains of a stage-1 network once its server body has been handed to
/// the final pipeline: the trained client head, kept so the stage-3
/// regularizer (and analyses) can evaluate `M^i_c,h(x)`.
#[derive(Debug)]
pub struct StageOneNetwork {
    head: Sequential,
    final_loss: f32,
}

impl StageOneNetwork {
    /// The mean training loss of this network's last stage-1 epoch.
    pub fn final_loss(&self) -> f32 {
        self.final_loss
    }

    /// Evaluates the stage-1 client head on a batch of images, returning its
    /// intermediate features (no noise applied).
    pub fn reference_features(&self, images: &Tensor) -> Tensor {
        self.head.forward(images, Mode::Eval)
    }
}

/// Losses and accuracy recorded while training an Ensembler.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-network, per-epoch mean cross-entropy of stage 1.
    pub stage1_losses: Vec<Vec<f32>>,
    /// Per-epoch mean cross-entropy of stage 3.
    pub stage3_losses: Vec<f32>,
    /// Per-epoch mean cosine penalty of stage 3.
    pub stage3_penalties: Vec<f32>,
    /// Top-1 accuracy on the training set after stage 3.
    pub train_accuracy: f32,
}

/// The result of the full three-stage procedure.
#[derive(Debug)]
pub struct TrainedEnsembler {
    pipeline: EnsemblerPipeline,
    stage_one: Vec<StageOneNetwork>,
    report: TrainReport,
}

impl TrainedEnsembler {
    /// The assembled inference pipeline.
    pub fn pipeline(&self) -> &EnsemblerPipeline {
        &self.pipeline
    }

    /// Mutable access to the pipeline (weight surgery; inference is `&self`).
    pub fn pipeline_mut(&mut self) -> &mut EnsemblerPipeline {
        &mut self.pipeline
    }

    /// Consumes the result, returning only the pipeline.
    pub fn into_pipeline(self) -> EnsemblerPipeline {
        self.pipeline
    }

    /// The retained stage-1 client heads.
    pub fn stage_one(&self) -> &[StageOneNetwork] {
        &self.stage_one
    }

    /// Losses recorded during training.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }
}

/// Orchestrates the three training stages.
#[derive(Debug, Clone)]
pub struct EnsemblerTrainer {
    config: ResNetConfig,
    train: TrainConfig,
}

impl EnsemblerTrainer {
    /// Creates a trainer for the given backbone and hyper-parameters.
    pub fn new(config: ResNetConfig, train: TrainConfig) -> Self {
        Self { config, train }
    }

    /// The backbone configuration.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// The training hyper-parameters.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// Runs all three stages: trains `ensemble_size` independent networks,
    /// secretly selects `selected` of them, and retrains the client against
    /// the frozen selection.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid, the selection sizes
    /// are inconsistent, or the dataset is empty.
    pub fn train(
        &self,
        ensemble_size: usize,
        selected: usize,
        data: &Dataset,
    ) -> Result<TrainedEnsembler, EnsemblerError> {
        self.train.validate()?;
        self.config
            .validate()
            .map_err(EnsemblerError::InvalidConfig)?;
        if data.is_empty() {
            return Err(EnsemblerError::EmptyDataset);
        }
        if selected == 0 || selected > ensemble_size {
            return Err(EnsemblerError::InvalidSelection {
                selected,
                available: ensemble_size,
            });
        }

        let mut report = TrainReport::default();
        let mut rng = Rng::seed_from(self.train.seed);

        // ---------------- Stage 1: N independent noisy networks ----------------
        let mut stage_one = Vec::with_capacity(ensemble_size);
        let mut bodies = Vec::with_capacity(ensemble_size);
        for i in 0..ensemble_size {
            let seed = self.train.seed.wrapping_add(1 + i as u64);
            let mut single = SinglePipeline::new(
                self.config.clone(),
                DefenseKind::AdditiveNoise {
                    sigma: self.train.sigma,
                },
                seed,
            )?;
            let losses = single.train_supervised(data, &self.train)?;
            let final_loss = *losses.last().expect("at least one epoch");
            report.stage1_losses.push(losses);
            let (head, body, _tail) = single.into_parts();
            stage_one.push(StageOneNetwork { head, final_loss });
            bodies.push(body);
        }

        // ---------------- Stage 2: the secret selection ----------------
        let selector = Selector::random(ensemble_size, selected, &mut rng)?;

        // ---------------- Stage 3: retrain the client against the frozen bodies --
        let mut head_rng = Rng::seed_from(self.train.seed.wrapping_add(0x5A5A));
        let mut head = build_head(&self.config, &mut head_rng);
        let mut noise = FixedNoise::new(
            &self.config.head_output_shape(),
            self.train.sigma,
            &mut head_rng,
        );
        let mut tail = build_tail(
            &self.config,
            selected * self.config.body_output_features(),
            &mut head_rng,
        );

        let loss_fn = CrossEntropyLoss::new();
        let mut optimizer = Sgd::new(self.train.learning_rate).with_momentum(0.9);
        let features_per_map = self.config.body_output_features();

        for _ in 0..self.train.epochs_stage3 {
            let mut epoch_loss = 0.0f32;
            let mut epoch_penalty = 0.0f32;
            let mut batches = 0usize;
            for (images, labels) in data.batches(self.train.batch_size, &mut rng) {
                let batch = images.shape()[0];
                let head_out = head.forward_cached(&images, Mode::Train);
                let noisy = noise.forward_cached(&head_out, Mode::Train);

                // Only the selected bodies are evaluated; the rest contribute
                // zero maps (the selector ignores them anyway).
                let mut maps = vec![Tensor::zeros(&[batch, features_per_map]); ensemble_size];
                for &idx in selector.active_indices() {
                    maps[idx] = bodies[idx].forward_cached(&noisy, Mode::Eval);
                }
                let combined = selector.combine(&maps)?;
                let logits = tail.forward_cached(&combined, Mode::Train);
                let ce = loss_fn.compute(&logits, &labels);

                // Backward: tail -> selector -> frozen bodies -> noise -> head.
                let grad_combined = tail.backward(&ce.grad);
                let per_map_grads = selector.split_gradient(&grad_combined, features_per_map)?;
                let mut grad_noisy = Tensor::zeros(noisy.shape());
                for &idx in selector.active_indices() {
                    let g = bodies[idx].backward(&per_map_grads[idx]);
                    grad_noisy.add_assign(&g);
                    bodies[idx].zero_grad(); // frozen: discard their parameter grads
                }
                let grad_head_out_ce = noise.backward(&grad_noisy);

                // Cosine regularizer against every stage-1 head (Eq. 3).
                let references: Vec<Tensor> = stage_one
                    .iter()
                    .map(|net| net.reference_features(&images).flatten_batch())
                    .collect();
                let penalty =
                    cosine_penalty(&head_out.flatten_batch(), &references, self.train.lambda);
                let penalty_grad = penalty
                    .grad
                    .reshape(head_out.shape())
                    .expect("penalty gradient matches the head output element count");

                let total_head_grad = grad_head_out_ce.add(&penalty_grad);
                let _ = head.backward(&total_head_grad);

                let mut params = head.params_mut();
                params.extend(tail.params_mut());
                optimizer.step(&mut params);

                epoch_loss += ce.loss;
                epoch_penalty += penalty.penalty;
                batches += 1;
            }
            report
                .stage3_losses
                .push(epoch_loss / batches.max(1) as f32);
            report
                .stage3_penalties
                .push(epoch_penalty / batches.max(1) as f32);
        }

        let pipeline =
            EnsemblerPipeline::new(self.config.clone(), head, noise, bodies, selector, tail)?;
        report.train_accuracy = pipeline.evaluate(data, &EvalConfig::default())?;

        Ok(TrainedEnsembler {
            pipeline,
            stage_one,
            report,
        })
    }

    /// Trains the DR-N baseline: the same N-network ensemble architecture and
    /// secret selector, but **without** stage-1 training — every component is
    /// trained jointly in one pass and an inference-time dropout layer is
    /// applied to the transmitted features.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`EnsemblerTrainer::train`].
    pub fn train_joint(
        &self,
        ensemble_size: usize,
        selected: usize,
        dropout: f32,
        data: &Dataset,
    ) -> Result<EnsemblerPipeline, EnsemblerError> {
        self.train.validate()?;
        self.config
            .validate()
            .map_err(EnsemblerError::InvalidConfig)?;
        if data.is_empty() {
            return Err(EnsemblerError::EmptyDataset);
        }
        if selected == 0 || selected > ensemble_size {
            return Err(EnsemblerError::InvalidSelection {
                selected,
                available: ensemble_size,
            });
        }
        if !(0.0..1.0).contains(&dropout) {
            return Err(EnsemblerError::InvalidConfig(
                "dropout probability must be in [0, 1)".to_string(),
            ));
        }

        let mut rng = Rng::seed_from(self.train.seed.wrapping_add(0xD8));
        let mut head = build_head(&self.config, &mut rng);
        let mut noise =
            FixedNoise::new(&self.config.head_output_shape(), self.train.sigma, &mut rng);
        let mut bodies: Vec<Sequential> = (0..ensemble_size)
            .map(|_| ensembler_nn::models::build_body(&self.config, &mut rng))
            .collect();
        let selector = Selector::random(ensemble_size, selected, &mut rng)?;
        let mut tail = build_tail(
            &self.config,
            selected * self.config.body_output_features(),
            &mut rng,
        );

        let loss_fn = CrossEntropyLoss::new();
        let mut optimizer = Sgd::new(self.train.learning_rate).with_momentum(0.9);
        let features_per_map = self.config.body_output_features();

        for _ in 0..self.train.epochs_stage3 {
            for (images, labels) in data.batches(self.train.batch_size, &mut rng) {
                let batch = images.shape()[0];
                let head_out = head.forward_cached(&images, Mode::Train);
                let noisy = noise.forward_cached(&head_out, Mode::Train);

                let mut maps = vec![Tensor::zeros(&[batch, features_per_map]); ensemble_size];
                for &idx in selector.active_indices() {
                    maps[idx] = bodies[idx].forward_cached(&noisy, Mode::Train);
                }
                let combined = selector.combine(&maps)?;
                let logits = tail.forward_cached(&combined, Mode::Train);
                let ce = loss_fn.compute(&logits, &labels);

                let grad_combined = tail.backward(&ce.grad);
                let per_map_grads = selector.split_gradient(&grad_combined, features_per_map)?;
                let mut grad_noisy = Tensor::zeros(noisy.shape());
                for &idx in selector.active_indices() {
                    let g = bodies[idx].backward(&per_map_grads[idx]);
                    grad_noisy.add_assign(&g);
                }
                let grad_head_out = noise.backward(&grad_noisy);
                let _ = head.backward(&grad_head_out);

                let mut params = head.params_mut();
                for (idx, body) in bodies.iter_mut().enumerate() {
                    if selector.is_active(idx) {
                        params.extend(body.params_mut());
                    }
                }
                params.extend(tail.params_mut());
                optimizer.step(&mut params);
            }
        }

        Ok(
            EnsemblerPipeline::new(self.config.clone(), head, noise, bodies, selector, tail)?
                .with_feature_dropout(dropout, self.train.seed ^ 0xD0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_data::SyntheticSpec;

    fn tiny_setup() -> (EnsemblerTrainer, ensembler_data::SyntheticDataset) {
        let data = SyntheticSpec::tiny_for_tests().generate(3);
        let trainer = EnsemblerTrainer::new(
            ResNetConfig::tiny_for_tests(),
            TrainConfig::fast_for_tests(),
        );
        (trainer, data)
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::paper_like().validate().is_ok());
        let mut bad = TrainConfig::fast_for_tests();
        bad.epochs_stage1 = 0;
        assert!(bad.validate().is_err());
        let mut bad = TrainConfig::fast_for_tests();
        bad.learning_rate = 0.0;
        assert!(bad.validate().is_err());
        let with_lambda = TrainConfig::fast_for_tests().with_lambda(3.0);
        assert!((with_lambda.lambda - 3.0).abs() < f32::EPSILON);
    }

    #[test]
    fn full_three_stage_training_produces_a_working_pipeline() {
        let (trainer, data) = tiny_setup();
        let trained = trainer.train(3, 2, &data.train).unwrap();

        let report = trained.report().clone();
        assert_eq!(report.stage1_losses.len(), 3);
        assert_eq!(
            report.stage3_losses.len(),
            trainer.train_config().epochs_stage3
        );
        assert_eq!(
            report.stage3_penalties.len(),
            trainer.train_config().epochs_stage3
        );
        assert!((0.0..=1.0).contains(&report.train_accuracy));

        let pipeline = trained.into_pipeline();
        assert_eq!(pipeline.ensemble_size(), 3);
        assert_eq!(pipeline.selector().active_count(), 2);
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn stage1_training_reduces_each_network_loss() {
        let (trainer, data) = tiny_setup();
        let trained = trainer.train(2, 1, &data.train).unwrap();
        for losses in &trained.report().stage1_losses {
            assert!(losses.len() >= 2);
            assert!(
                losses.last().unwrap() <= losses.first().unwrap(),
                "stage-1 loss should not increase: {losses:?}"
            );
        }
    }

    #[test]
    fn invalid_selection_sizes_are_rejected() {
        let (trainer, data) = tiny_setup();
        assert!(matches!(
            trainer.train(3, 0, &data.train),
            Err(EnsemblerError::InvalidSelection { .. })
        ));
        assert!(matches!(
            trainer.train(3, 4, &data.train),
            Err(EnsemblerError::InvalidSelection { .. })
        ));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let (trainer, _) = tiny_setup();
        let empty = Dataset::new(Tensor::zeros(&[0, 3, 8, 8]), vec![], 3);
        assert!(matches!(
            trainer.train(2, 1, &empty),
            Err(EnsemblerError::EmptyDataset)
        ));
    }

    #[test]
    fn stage_one_heads_diverge_from_the_final_head() {
        // The core claim behind Proposition 1: the stage-3 head is not a copy
        // of any stage-1 head, so a shadow reconstruction built from a single
        // server net inverts the "wrong" head.
        let (trainer, data) = tiny_setup();
        let trained = trainer.train(2, 1, &data.train).unwrap();
        let (images, _) = data.train.batch(0, 6);

        let final_features = trained
            .pipeline()
            .client_features(&images)
            .unwrap()
            .flatten_batch();
        for net in trained.stage_one() {
            let reference = net.reference_features(&images).flatten_batch();
            let cs = final_features
                .cosine_similarity_per_sample(&reference)
                .mean();
            assert!(
                cs < 0.95,
                "stage-3 head should not replicate a stage-1 head (cs = {cs})"
            );
            assert!(net.final_loss().is_finite());
        }
    }

    #[test]
    fn joint_training_builds_the_dr_ensemble_baseline() {
        let (trainer, data) = tiny_setup();
        let pipeline = trainer.train_joint(2, 1, 0.3, &data.train).unwrap();
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // Dropout must be active on the transmitted features.
        let (images, _) = data.train.batch(0, 2);
        let features = pipeline.client_features(&images).unwrap();
        let zeros = features.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 0);
    }

    #[test]
    fn joint_training_validates_dropout() {
        let (trainer, data) = tiny_setup();
        assert!(trainer.train_joint(2, 1, 1.5, &data.train).is_err());
    }
}
