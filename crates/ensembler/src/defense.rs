//! The unified [`Defense`] trait: one immutable inference API for every
//! split-inference pipeline in the workspace.
//!
//! Before this trait existed, `EnsemblerPipeline` and `SinglePipeline`
//! exposed divergent, `&mut self` inference methods, so the attack crate,
//! the benchmark harness and the examples each hand-rolled their own
//! dispatch. `Defense` fixes both problems at once:
//!
//! * every method takes `&self` and returns `Result`, so a pipeline can be
//!   shared behind an `Arc` and serve concurrent batches (see
//!   [`crate::engine::InferenceEngine`]);
//! * the client/server split is part of the contract
//!   ([`Defense::client_features`] → [`Defense::server_outputs`] →
//!   [`Defense::classify`]), so generic code — attacks, benchmarks, latency
//!   estimation — works against `&dyn Defense` without knowing which defence
//!   it is probing.

use crate::EnsemblerError;
use ensembler_data::Dataset;
use ensembler_metrics::accuracy;
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_tensor::{QTensorBatch, Tensor};

/// The numeric mode a pipeline (or an evaluation sweep) runs in.
///
/// `F32` is the reference path. `Int8` quantizes the tensors that cross the
/// client/server split (and, for a pipeline built through
/// [`crate::QuantizedDefense::quantize`], runs the server bodies with
/// `i8×i8→i32` kernels). Quantization scales are always **per sample**, so a
/// sample's int8 result never depends on what else shares its mini-batch —
/// the engine's coalescing guarantee holds within each precision mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision `f32` inference (the default).
    #[default]
    F32,
    /// Symmetric int8 inference: quantized split tensors, quantized server
    /// bodies where the pipeline provides them.
    Int8,
}

/// Evaluation parameters shared by every [`Defense::evaluate`]
/// implementation.
///
/// # Examples
///
/// ```
/// use ensembler::{EvalConfig, Precision};
///
/// assert_eq!(EvalConfig::default().batch_size, 32);
/// assert_eq!(EvalConfig::default().precision, Precision::F32);
/// assert_eq!(EvalConfig::with_batch_size(8).batch_size, 8);
/// let int8 = EvalConfig::default().with_precision(Precision::Int8);
/// assert_eq!(int8.precision, Precision::Int8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Mini-batch size used when sweeping a dataset.
    pub batch_size: usize,
    /// Numeric mode of the sweep. With [`Precision::Int8`] the split tensors
    /// are routed through [`Defense::server_outputs_quantized`], so the sweep
    /// measures exactly what a quantized wire deployment would serve.
    pub precision: Precision,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            batch_size: 32,
            precision: Precision::F32,
        }
    }
}

impl EvalConfig {
    /// Creates a configuration with the given mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(batch_size: usize) -> Self {
        assert!(batch_size > 0, "evaluation batch size must be positive");
        Self {
            batch_size,
            precision: Precision::F32,
        }
    }

    /// Returns the configuration with the precision replaced.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// A split-inference pipeline with some protection on the transmitted
/// features.
///
/// The trait is object safe: `&dyn Defense` is the currency the attack
/// crate, the benchmark harness and the latency model trade in. All methods
/// take `&self` — implementations must not mutate state during inference, so
/// an `Arc<dyn Defense>` can serve concurrent requests with results
/// bit-identical to sequential execution.
///
/// # Examples
///
/// Running the three pipeline stages by hand through `&dyn Defense` produces
/// exactly what the composed [`Defense::predict`] does — the contract the
/// networked split in `crates/serve` relies on when it moves the
/// [`Defense::server_outputs`] stage to another machine:
///
/// ```
/// use ensembler::{Defense, DefenseKind, SinglePipeline};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_tensor::Tensor;
///
/// let pipeline = SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::AdditiveNoise { sigma: 0.1 },
///     42,
/// )?;
/// let defense: &dyn Defense = &pipeline;
///
/// let images = Tensor::ones(&[2, 3, 8, 8]);
/// let transmitted = defense.client_features(&images)?;
/// let maps = defense.server_outputs(&transmitted)?;
/// assert_eq!(maps.len(), defense.ensemble_size());
/// let staged = defense.classify(&maps)?;
///
/// assert_eq!(staged, defense.predict(&images)?);
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
pub trait Defense: Send + Sync + std::fmt::Debug {
    /// The backbone configuration shared by the client and the server.
    fn config(&self) -> &ResNetConfig;

    /// Short human-readable name matching the paper's table rows.
    fn label(&self) -> &str;

    /// The server-side networks.
    ///
    /// Under the paper's threat model the adversarial server owns these
    /// weights, so attacks clone them from here into their own mutable
    /// copies.
    fn server_bodies(&self) -> &[Sequential];

    /// Number of server networks (`N`; 1 for the single-network baselines).
    fn ensemble_size(&self) -> usize {
        self.server_bodies().len()
    }

    /// Number of server networks the client secretly consumes (`P`; 1 for
    /// the single-network baselines). The latency model uses this.
    fn selected_count(&self) -> usize;

    /// Computes the (protected) features the client transmits for a batch of
    /// `[B, C, H, W]` images.
    ///
    /// # Errors
    ///
    /// Returns an error when the input is inconsistent with the pipeline.
    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError>;

    /// Evaluates every server body on the transmitted features, returning
    /// the per-network feature maps in index order.
    ///
    /// # Errors
    ///
    /// Returns an error when the features do not match the server input
    /// shape.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError>;

    /// The numeric mode this pipeline's [`Defense::server_outputs`] stage
    /// runs in. `F32` by default; [`crate::QuantizedDefense`] reports `Int8`,
    /// which is what tells the networked client to use quantized wire frames.
    fn precision(&self) -> Precision {
        Precision::F32
    }

    /// [`Defense::server_outputs`] over quantized wire tensors: one
    /// per-sample-scaled int8 batch in, `N` per-network int8 batches out.
    ///
    /// This is the stage the v2 wire protocol transports. The default
    /// implementation defines the reference semantics for any `f32` pipeline
    /// — dequantize, run the `f32` bodies, re-quantize per sample —
    /// so every defense can serve quantized clients.
    /// [`crate::QuantizedDefense`] overrides it to run its int8 kernels
    /// directly; its `server_outputs` is defined *through* this method, which
    /// is what makes remote int8 predictions bit-identical to in-process
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns an error when the features do not match the server input
    /// shape.
    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        let maps = self.server_outputs(&transmitted.dequantize())?;
        Ok(maps.iter().map(QTensorBatch::quantize_batch).collect())
    }

    /// [`Defense::server_outputs`] restricted to the bodies `lo..hi`: the
    /// sub-ensemble serving mode a sharded worker runs in, returning
    /// `hi - lo` feature maps in index order.
    ///
    /// The default implementation evaluates the full ensemble and slices the
    /// result, which is always correct (each body's output is independent of
    /// the others) but does `N` bodies' worth of work; pipelines that own
    /// their bodies override this to evaluate only the requested slice.
    ///
    /// # Errors
    ///
    /// Returns an error when the range is empty or out of bounds, or when the
    /// features do not match the server input shape.
    fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        check_body_range(lo, hi, self.ensemble_size())?;
        let mut maps = self.server_outputs(transmitted)?;
        maps.truncate(hi);
        Ok(maps.split_off(lo))
    }

    /// [`Defense::server_outputs_quantized`] restricted to the bodies
    /// `lo..hi` — the quantized twin of [`Defense::server_outputs_range`].
    ///
    /// Slicing commutes with per-map re-quantization (scales are per sample
    /// within each map), so the default full-evaluate-then-slice
    /// implementation is bit-identical to evaluating only the slice.
    ///
    /// # Errors
    ///
    /// Returns an error when the range is empty or out of bounds, or when the
    /// features do not match the server input shape.
    fn server_outputs_quantized_range(
        &self,
        transmitted: &QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        check_body_range(lo, hi, self.ensemble_size())?;
        let mut maps = self.server_outputs_quantized(transmitted)?;
        maps.truncate(hi);
        Ok(maps.split_off(lo))
    }

    /// Applies the client-side post-processing (secret selection and tail
    /// classifier) to the server's feature maps, producing class logits.
    ///
    /// # Errors
    ///
    /// Returns an error when the number or shape of the maps is wrong.
    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError>;

    /// Runs the complete collaborative-inference pipeline on a batch of
    /// images and returns class logits.
    ///
    /// # Errors
    ///
    /// Propagates errors from any of the three stages.
    fn predict(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        let transmitted = self.client_features(images)?;
        let maps = self.server_outputs(&transmitted)?;
        self.classify(&maps)
    }

    /// [`Defense::predict`] at an explicit numeric mode.
    ///
    /// With [`Precision::Int8`] the split tensors are quantized per sample
    /// and the server stage runs through
    /// [`Defense::server_outputs_quantized`] — byte-for-byte the path a
    /// quantized remote deployment executes, so in-process and networked
    /// int8 predictions agree bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates errors from any of the three stages.
    fn predict_at(&self, images: &Tensor, precision: Precision) -> Result<Tensor, EnsemblerError> {
        match precision {
            Precision::F32 => self.predict(images),
            Precision::Int8 => {
                let transmitted = self.client_features(images)?;
                let qf = QTensorBatch::quantize_batch(&transmitted);
                let qmaps = self.server_outputs_quantized(&qf)?;
                let maps: Vec<Tensor> = qmaps.iter().map(QTensorBatch::dequantize).collect();
                self.classify(&maps)
            }
        }
    }

    /// Top-1 accuracy of the pipeline on a dataset, evaluated in mini-batches
    /// of `eval.batch_size`. Returns 0 for an empty dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if `eval.batch_size` is zero or prediction fails.
    fn evaluate(&self, dataset: &Dataset, eval: &EvalConfig) -> Result<f32, EnsemblerError> {
        if eval.batch_size == 0 {
            return Err(EnsemblerError::InvalidConfig(
                "evaluation batch size must be positive".to_string(),
            ));
        }
        if dataset.is_empty() {
            return Ok(0.0);
        }
        let mut correct_weighted = 0.0f32;
        let mut start = 0usize;
        while start < dataset.len() {
            let (images, labels) = dataset.batch(start, eval.batch_size);
            let logits = self.predict_at(&images, eval.precision)?;
            correct_weighted += accuracy(&logits, &labels) * labels.len() as f32;
            start += eval.batch_size;
        }
        Ok(correct_weighted / dataset.len() as f32)
    }
}

/// Validates a half-open server-body range `lo..hi` against an ensemble of
/// `ensemble_size` bodies: the range must be non-empty and in bounds.
///
/// Shared by every layer that handles sub-range requests (the trait defaults
/// above, the inference engine, the wire server and the shard router), so
/// they all reject malformed ranges with the same message.
///
/// # Errors
///
/// Returns [`EnsemblerError::InvalidConfig`] when the range is empty or ends
/// past the ensemble.
///
/// # Examples
///
/// ```
/// use ensembler::check_body_range;
///
/// assert!(check_body_range(0, 4, 4).is_ok());
/// assert!(check_body_range(2, 2, 4).is_err()); // empty
/// assert!(check_body_range(2, 5, 4).is_err()); // past the end
/// ```
pub fn check_body_range(lo: usize, hi: usize, ensemble_size: usize) -> Result<(), EnsemblerError> {
    if lo >= hi || hi > ensemble_size {
        return Err(EnsemblerError::InvalidConfig(format!(
            "server body range {lo}..{hi} is invalid for an ensemble of {ensemble_size}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_config_default_batch_size_is_32() {
        assert_eq!(EvalConfig::default().batch_size, 32);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = EvalConfig::with_batch_size(0);
    }

    #[test]
    fn the_trait_is_object_safe() {
        // Compile-time check: &dyn Defense must be a valid type.
        fn _takes_dyn(_d: &dyn Defense) {}
    }
}
