//! Lazily compiled, invalidation-aware caches of fused execution plans.
//!
//! Pipelines own their layers mutably (training, weight surgery through
//! `bodies_mut`) while serving inference from `&self` across threads. The
//! [`PlanCell`] reconciles the two: compiled plans are built lazily on the
//! first inference after a mutation and shared via an [`Arc`] until the next
//! mutable access invalidates them.

use ensembler_nn::CompiledPlan;
use std::sync::{Arc, RwLock};

/// A thread-safe cache of compiled plans for a set of networks.
#[derive(Debug, Default)]
pub(crate) struct PlanCell {
    cell: RwLock<Option<Arc<Vec<CompiledPlan>>>>,
}

impl PlanCell {
    /// Creates an empty cell; the first [`PlanCell::get_or_compile`] fills it.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Drops any cached plans. Called from `&mut self` accessors that hand
    /// out mutable layer references, so the next inference recompiles
    /// against the current weights.
    pub(crate) fn invalidate(&mut self) {
        // `&mut self` proves no reader holds the lock; a poisoned lock only
        // means a previous compile panicked, which invalidation cures.
        let slot = self.cell.get_mut().unwrap_or_else(|e| e.into_inner());
        *slot = None;
    }

    /// Returns the cached plans, compiling them with `build` if the cell is
    /// empty. Concurrent first calls may both compile; one result wins.
    pub(crate) fn get_or_compile(
        &self,
        build: impl FnOnce() -> Vec<CompiledPlan>,
    ) -> Arc<Vec<CompiledPlan>> {
        if let Some(plans) = self.cell.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return Arc::clone(plans);
        }
        let fresh = Arc::new(build());
        let mut slot = self.cell.write().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            // Another thread won the race; use its plans so every caller
            // shares one allocation.
            Some(existing) => Arc::clone(existing),
            None => {
                *slot = Some(Arc::clone(&fresh));
                fresh
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_nn::{FusionConfig, Linear, Sequential};
    use ensembler_tensor::{Rng, Tensor};

    fn plans() -> Vec<CompiledPlan> {
        let mut rng = Rng::seed_from(0);
        let net = Sequential::new(vec![Box::new(Linear::new(3, 2, &mut rng))]);
        vec![CompiledPlan::compile(&net, FusionConfig::bit_exact())]
    }

    #[test]
    fn compiles_once_and_caches() {
        let cell = PlanCell::new();
        let a = cell.get_or_compile(plans);
        let b = cell.get_or_compile(|| unreachable!("second call must hit the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        let x = Tensor::ones(&[1, 3]);
        assert_eq!(a[0].run(&x).unwrap(), b[0].run(&x).unwrap());
    }

    #[test]
    fn invalidation_forces_a_recompile() {
        let mut cell = PlanCell::new();
        let a = cell.get_or_compile(plans);
        cell.invalidate();
        let b = cell.get_or_compile(plans);
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
