//! [`SubEnsembleView`]: a [`Defense`] restricted to a contiguous slice of
//! another pipeline's server bodies.
//!
//! This is the in-process embodiment of a **shard**: in a scatter-gather
//! deployment each worker owns the full checkpoint but only ever evaluates
//! the bodies `lo..hi` assigned to it by the placement. The view makes that
//! assignment a first-class `Defense` — `server_outputs` on the view equals
//! the matching slice of the inner pipeline's `server_outputs`, bit for bit
//! — so engines, servers and tests can exercise the sliced serving mode
//! without any networking.
//!
//! A view is strictly the *server half* of the split: it has no selector and
//! no tail, so [`Defense::classify`] (and therefore `predict`) returns a
//! typed error instead of silently classifying from partial maps.

use crate::defense::{check_body_range, Defense, Precision};
use crate::EnsemblerError;
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_tensor::{QTensorBatch, Tensor};
use std::sync::Arc;

/// A [`Defense`] that evaluates only the server bodies `lo..hi` of an inner
/// pipeline.
///
/// # Examples
///
/// ```
/// use ensembler::{Defense, DefenseKind, SinglePipeline, SubEnsembleView};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let inner: Arc<dyn Defense> = Arc::new(SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::NoDefense,
///     7,
/// )?);
/// let view = SubEnsembleView::new(Arc::clone(&inner), 0, 1)?;
/// assert_eq!(view.ensemble_size(), 1);
/// assert_eq!(view.label(), "None[0..1]");
///
/// let transmitted = inner.client_features(&Tensor::ones(&[1, 3, 8, 8]))?;
/// assert_eq!(
///     view.server_outputs(&transmitted)?,
///     inner.server_outputs(&transmitted)?
/// );
/// // The view is the server half only: it cannot classify.
/// assert!(view.classify(&[]).is_err());
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug)]
pub struct SubEnsembleView {
    inner: Arc<dyn Defense>,
    lo: usize,
    hi: usize,
    label: String,
}

impl SubEnsembleView {
    /// Restricts `inner` to the server bodies `lo..hi`.
    ///
    /// # Errors
    ///
    /// Returns an error when the range is empty or out of bounds for the
    /// inner ensemble.
    pub fn new(inner: Arc<dyn Defense>, lo: usize, hi: usize) -> Result<Self, EnsemblerError> {
        check_body_range(lo, hi, inner.ensemble_size())?;
        let label = format!("{}[{lo}..{hi}]", inner.label());
        Ok(Self {
            inner,
            lo,
            hi,
            label,
        })
    }

    /// The full pipeline this view slices.
    pub fn inner(&self) -> &Arc<dyn Defense> {
        &self.inner
    }

    /// The slice `lo..hi` of the inner ensemble this view evaluates.
    pub fn body_range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }
}

impl Defense for SubEnsembleView {
    fn config(&self) -> &ResNetConfig {
        self.inner.config()
    }

    /// The inner label with the slice appended, e.g. `Ensembler[2..4]` —
    /// distinct from the full pipeline so a handshake can never silently
    /// pair a sliced server with a full-ensemble client.
    fn label(&self) -> &str {
        &self.label
    }

    fn server_bodies(&self) -> &[Sequential] {
        &self.inner.server_bodies()[self.lo..self.hi]
    }

    fn selected_count(&self) -> usize {
        self.inner.selected_count()
    }

    fn precision(&self) -> Precision {
        self.inner.precision()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.inner.client_features(images)
    }

    /// The inner pipeline's bodies `lo..hi`, evaluated through its own
    /// range path (int8 pipelines keep their quantization semantics).
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        self.inner
            .server_outputs_range(transmitted, self.lo, self.hi)
    }

    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        self.inner
            .server_outputs_quantized_range(transmitted, self.lo, self.hi)
    }

    /// A range *within* the view: `lo..hi` in view coordinates maps to
    /// `self.lo + lo .. self.lo + hi` of the inner ensemble.
    fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        check_body_range(lo, hi, self.hi - self.lo)?;
        self.inner
            .server_outputs_range(transmitted, self.lo + lo, self.lo + hi)
    }

    fn server_outputs_quantized_range(
        &self,
        transmitted: &QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        check_body_range(lo, hi, self.hi - self.lo)?;
        self.inner
            .server_outputs_quantized_range(transmitted, self.lo + lo, self.lo + hi)
    }

    /// Always an error: the secret selector and the tail live with the full
    /// client, never on a shard.
    fn classify(&self, _server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        Err(EnsemblerError::InvalidConfig(format!(
            "{} is a server-side sub-ensemble view; only the full client can classify",
            self.label
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnsemblerPipeline, Selector};
    use ensembler_nn::models::{build_body, build_head, build_tail};
    use ensembler_nn::FixedNoise;
    use ensembler_tensor::Rng;

    fn pipeline(n: usize, p: usize, seed: u64) -> Arc<dyn Defense> {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(seed);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies = (0..n).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(n, p, &mut rng).unwrap();
        let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
        Arc::new(EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap())
    }

    #[test]
    fn views_partition_the_full_evaluation_bit_exactly() {
        let full = pipeline(4, 2, 31);
        let images = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32 * 0.01).sin());
        let transmitted = full.client_features(&images).unwrap();
        let reference = full.server_outputs(&transmitted).unwrap();

        let left = SubEnsembleView::new(Arc::clone(&full), 0, 2).unwrap();
        let right = SubEnsembleView::new(Arc::clone(&full), 2, 4).unwrap();
        assert_eq!(left.ensemble_size(), 2);
        assert_eq!(left.label(), "Ensembler[0..2]");
        assert_eq!(right.body_range(), (2, 4));

        let mut merged = left.server_outputs(&transmitted).unwrap();
        merged.extend(right.server_outputs(&transmitted).unwrap());
        assert_eq!(merged, reference);

        // Quantized maps partition the same way.
        let qf = QTensorBatch::quantize_batch(&transmitted);
        let qreference = full.server_outputs_quantized(&qf).unwrap();
        let mut qmerged = left.server_outputs_quantized(&qf).unwrap();
        qmerged.extend(right.server_outputs_quantized(&qf).unwrap());
        assert_eq!(qmerged, qreference);
    }

    #[test]
    fn nested_ranges_compose_in_inner_coordinates() {
        let full = pipeline(4, 2, 37);
        let transmitted = full.client_features(&Tensor::ones(&[1, 3, 8, 8])).unwrap();
        let view = SubEnsembleView::new(Arc::clone(&full), 1, 4).unwrap();
        assert_eq!(
            view.server_outputs_range(&transmitted, 1, 3).unwrap(),
            full.server_outputs_range(&transmitted, 2, 4).unwrap()
        );
        // Out-of-bounds in *view* coordinates is rejected even though the
        // inner ensemble would have room.
        assert!(view.server_outputs_range(&transmitted, 0, 4).is_err());
    }

    #[test]
    fn construction_and_classification_reject_misuse() {
        let full = pipeline(2, 1, 41);
        assert!(SubEnsembleView::new(Arc::clone(&full), 1, 1).is_err());
        assert!(SubEnsembleView::new(Arc::clone(&full), 0, 3).is_err());
        let view = SubEnsembleView::new(full, 0, 1).unwrap();
        let err = view.classify(&[]).unwrap_err();
        assert!(err.to_string().contains("sub-ensemble"), "{err}");
    }
}
