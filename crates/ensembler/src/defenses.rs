//! Baseline defences the paper compares Ensembler against, built around a
//! single (non-ensembled) split network.
//!
//! * **None** — an unprotected split (the "None" row of Table II).
//! * **Single** — a single network trained with a fixed additive Gaussian
//!   noise on the intermediate features (the "Single" baseline, after
//!   differential-privacy-style calibrated noise).
//! * **Shredder** — the learned-noise defence of Mireshghallah et al.: the
//!   additive noise tensor itself is trained to grow while classification
//!   accuracy is preserved.
//! * **DR-single** — the dropout defence of He et al.: inference-time dropout
//!   on the transmitted features.
//!
//! The DR-N (dropout on an ensemble without stage-1 training) baseline is the
//! ensembled analogue and lives in [`crate::trainer::EnsemblerTrainer::train_joint`].

use crate::defense::Defense;
use crate::plans::PlanCell;
use crate::trainer::TrainConfig;
use crate::EnsemblerError;
use ensembler_data::Dataset;
use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
use ensembler_nn::{
    CompiledPlan, CrossEntropyLoss, Dropout, FixedNoise, FusionConfig, Identity, Layer,
    LearnedNoise, Mode, Optimizer, Param, Sequential, Sgd,
};
use ensembler_tensor::{Rng, Tensor};

/// Which protection a [`SinglePipeline`] applies to the features it transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefenseKind {
    /// No protection at all (the "None" baseline).
    NoDefense,
    /// Fixed additive Gaussian noise with the given standard deviation
    /// (the "Single" baseline).
    AdditiveNoise {
        /// Standard deviation of the fixed noise pattern.
        sigma: f32,
    },
    /// Shredder-style learned additive noise.
    Shredder {
        /// Standard deviation used to initialise the noise tensor.
        sigma: f32,
        /// Weight of the noise-expansion objective.
        expansion: f32,
    },
    /// Inference-time dropout on the transmitted features (DR-single).
    Dropout {
        /// Drop probability.
        probability: f32,
    },
}

impl DefenseKind {
    /// Short human-readable name matching the paper's table rows.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::NoDefense => "None",
            DefenseKind::AdditiveNoise { .. } => "Single",
            DefenseKind::Shredder { .. } => "Shredder",
            DefenseKind::Dropout { .. } => "DR-single",
        }
    }
}

/// The defence layer applied to the intermediate features of a single split
/// network.
#[derive(Debug)]
enum DefenseLayer {
    Identity(Identity),
    Fixed(FixedNoise),
    Learned(LearnedNoise),
    Dropout(Dropout),
}

impl DefenseLayer {
    fn forward(&self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            DefenseLayer::Identity(l) => l.forward(input, mode),
            DefenseLayer::Fixed(l) => l.forward(input, mode),
            DefenseLayer::Learned(l) => l.forward(input, mode),
            DefenseLayer::Dropout(l) => l.forward(input, mode),
        }
    }

    fn forward_cached(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            DefenseLayer::Identity(l) => l.forward_cached(input, mode),
            DefenseLayer::Fixed(l) => l.forward_cached(input, mode),
            DefenseLayer::Learned(l) => l.forward_cached(input, mode),
            DefenseLayer::Dropout(l) => l.forward_cached(input, mode),
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            DefenseLayer::Identity(l) => l.backward(grad),
            DefenseLayer::Fixed(l) => l.backward(grad),
            DefenseLayer::Learned(l) => l.backward(grad),
            DefenseLayer::Dropout(l) => l.backward(grad),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            DefenseLayer::Learned(l) => l.params_mut(),
            _ => Vec::new(),
        }
    }
}

/// A single split network (client head + defence + server body + client tail)
/// protected by one of the baseline defences.
///
/// Like [`crate::EnsemblerPipeline`], all inference goes through the
/// [`Defense`] trait with `&self`, so baselines and Ensembler are completely
/// interchangeable for attacks, benchmarks and serving. The single body is
/// modelled as an ensemble of size 1.
///
/// # Examples
///
/// ```
/// use ensembler::{Defense, DefenseKind, SinglePipeline, TrainConfig};
/// use ensembler_data::SyntheticSpec;
/// use ensembler_nn::models::ResNetConfig;
///
/// let data = SyntheticSpec::tiny_for_tests().generate(0);
/// let mut pipeline = SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::AdditiveNoise { sigma: 0.1 },
///     7,
/// )?;
/// let losses = pipeline.train_supervised(&data.train, &TrainConfig::fast_for_tests())?;
/// assert!(!losses.is_empty());
/// assert_eq!(pipeline.label(), "Single");
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug)]
pub struct SinglePipeline {
    config: ResNetConfig,
    kind: DefenseKind,
    head: Sequential,
    defense: DefenseLayer,
    body: [Sequential; 1],
    tail: Sequential,
    fusion: FusionConfig,
    // Plans for [head, body, tail], compiled lazily and invalidated by
    // training and `body_mut`.
    plans: PlanCell,
}

impl SinglePipeline {
    /// Builds an untrained single split network with the given defence.
    ///
    /// # Errors
    ///
    /// Returns an error if the backbone configuration fails validation or the
    /// defence parameters are out of range.
    pub fn new(config: ResNetConfig, kind: DefenseKind, seed: u64) -> Result<Self, EnsemblerError> {
        config.validate().map_err(EnsemblerError::InvalidConfig)?;
        let mut rng = Rng::seed_from(seed);
        let head = build_head(&config, &mut rng);
        let body = build_body(&config, &mut rng);
        let tail = build_tail(&config, config.body_output_features(), &mut rng);
        let head_shape = config.head_output_shape();
        let defense = match kind {
            DefenseKind::NoDefense => DefenseLayer::Identity(Identity::new()),
            DefenseKind::AdditiveNoise { sigma } => {
                if sigma < 0.0 {
                    return Err(EnsemblerError::InvalidConfig(
                        "noise sigma must be non-negative".to_string(),
                    ));
                }
                DefenseLayer::Fixed(FixedNoise::new(&head_shape, sigma, &mut rng))
            }
            DefenseKind::Shredder { sigma, expansion } => {
                if sigma < 0.0 || expansion < 0.0 {
                    return Err(EnsemblerError::InvalidConfig(
                        "Shredder parameters must be non-negative".to_string(),
                    ));
                }
                DefenseLayer::Learned(LearnedNoise::new(&head_shape, sigma, expansion, &mut rng))
            }
            DefenseKind::Dropout { probability } => {
                if !(0.0..1.0).contains(&probability) {
                    return Err(EnsemblerError::InvalidConfig(
                        "dropout probability must be in [0, 1)".to_string(),
                    ));
                }
                let mut dropout = Dropout::new(probability, seed ^ 0xD20F);
                dropout.set_active_in_eval(true);
                DefenseLayer::Dropout(dropout)
            }
        };
        Ok(Self {
            config,
            kind,
            head,
            defense,
            body: [body],
            tail,
            fusion: FusionConfig::default(),
            plans: PlanCell::new(),
        })
    }

    /// The defence applied to the transmitted features.
    pub fn kind(&self) -> DefenseKind {
        self.kind
    }

    /// Recompiles the pipeline's execution plans with a different
    /// [`FusionConfig`].
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self.plans.invalidate();
        self
    }

    /// The fusion configuration the pipeline's plans are compiled with.
    pub fn fusion(&self) -> FusionConfig {
        self.fusion
    }

    /// The compiled plans for `[head, body, tail]`, recompiling them if the
    /// weights changed since the last inference.
    fn plans(&self) -> std::sync::Arc<Vec<CompiledPlan>> {
        self.plans.get_or_compile(|| {
            vec![
                CompiledPlan::compile(&self.head, self.fusion),
                CompiledPlan::compile(&self.body[0], self.fusion),
                CompiledPlan::compile(&self.tail, self.fusion),
            ]
        })
    }

    /// Mutable access to the server body (training only; inference uses the
    /// immutable [`Defense`] methods). Invalidates the cached plans.
    pub fn body_mut(&mut self) -> &mut Sequential {
        self.plans.invalidate();
        &mut self.body[0]
    }

    /// Splits the trained pipeline into its parts
    /// `(head, body, tail)`, dropping the defence layer. Used by the
    /// Ensembler trainer to harvest stage-1 networks.
    pub fn into_parts(self) -> (Sequential, Sequential, Sequential) {
        let [body] = self.body;
        (self.head, body, self.tail)
    }

    /// Trains the whole pipeline with cross-entropy, returning the mean loss
    /// of every epoch.
    ///
    /// For the Shredder defence the learned noise additionally receives the
    /// noise-expansion gradient each step, so the noise magnitude grows while
    /// accuracy is maintained.
    ///
    /// # Errors
    ///
    /// Returns [`EnsemblerError::EmptyDataset`] if `data` has no samples.
    pub fn train_supervised(
        &mut self,
        data: &Dataset,
        train: &TrainConfig,
    ) -> Result<Vec<f32>, EnsemblerError> {
        if data.is_empty() {
            return Err(EnsemblerError::EmptyDataset);
        }
        // Training mutates every stage; drop the compiled plans now so
        // inference after training recompiles against the new weights.
        self.plans.invalidate();
        let mut rng = Rng::seed_from(train.seed);
        let mut optimizer = Sgd::new(train.learning_rate).with_momentum(0.9);
        let loss_fn = CrossEntropyLoss::new();
        let mut epoch_losses = Vec::with_capacity(train.epochs_stage1);

        for _ in 0..train.epochs_stage1 {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for (images, labels) in data.batches(train.batch_size, &mut rng) {
                let head_out = self.head.forward_cached(&images, Mode::Train);
                let protected = self.defense.forward_cached(&head_out, Mode::Train);
                let body_out = self.body[0].forward_cached(&protected, Mode::Train);
                let logits = self.tail.forward_cached(&body_out, Mode::Train);
                let out = loss_fn.compute(&logits, &labels);

                let grad_body_out = self.tail.backward(&out.grad);
                let grad_protected = self.body[0].backward(&grad_body_out);
                let grad_head_out = self.defense.backward(&grad_protected);
                let _ = self.head.backward(&grad_head_out);

                if let DefenseLayer::Learned(noise) = &mut self.defense {
                    noise.apply_expansion_grad();
                }

                let mut params = self.head.params_mut();
                params.extend(self.body[0].params_mut());
                params.extend(self.tail.params_mut());
                params.extend(self.defense.params_mut());
                optimizer.step(&mut params);

                epoch_loss += out.loss;
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f32);
        }
        Ok(epoch_losses)
    }
}

impl Defense for SinglePipeline {
    fn config(&self) -> &ResNetConfig {
        &self.config
    }

    fn label(&self) -> &str {
        self.kind.label()
    }

    fn server_bodies(&self) -> &[Sequential] {
        &self.body
    }

    fn selected_count(&self) -> usize {
        1
    }

    /// Computes the features the client transmits (head output plus defence).
    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        let features = self.plans()[0].run(images)?;
        Ok(self.defense.forward(&features, Mode::Eval))
    }

    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        Ok(vec![self.plans()[1].run(transmitted)?])
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        if server_maps.len() != 1 {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "a single-network pipeline expects 1 feature map, got {}",
                server_maps.len()
            )));
        }
        Ok(self.plans()[2].run(&server_maps[0])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::EvalConfig;
    use ensembler_data::SyntheticSpec;

    fn tiny_data() -> ensembler_data::SyntheticDataset {
        SyntheticSpec::tiny_for_tests().generate(2)
    }

    #[test]
    fn defense_labels_match_paper_rows() {
        assert_eq!(DefenseKind::NoDefense.label(), "None");
        assert_eq!(DefenseKind::AdditiveNoise { sigma: 0.1 }.label(), "Single");
        assert_eq!(
            DefenseKind::Shredder {
                sigma: 0.1,
                expansion: 0.1
            }
            .label(),
            "Shredder"
        );
        assert_eq!(
            DefenseKind::Dropout { probability: 0.3 }.label(),
            "DR-single"
        );
    }

    #[test]
    fn construction_validates_defense_parameters() {
        let cfg = ResNetConfig::tiny_for_tests;
        assert!(SinglePipeline::new(cfg(), DefenseKind::AdditiveNoise { sigma: -1.0 }, 0).is_err());
        assert!(SinglePipeline::new(
            cfg(),
            DefenseKind::Shredder {
                sigma: -0.1,
                expansion: 0.0
            },
            0
        )
        .is_err());
        assert!(SinglePipeline::new(cfg(), DefenseKind::Dropout { probability: 1.0 }, 0).is_err());
        assert!(SinglePipeline::new(cfg(), DefenseKind::NoDefense, 0).is_ok());
    }

    #[test]
    fn invalid_backbone_configuration_is_reported() {
        let mut cfg = ResNetConfig::tiny_for_tests();
        cfg.stage_channels.clear();
        let err = SinglePipeline::new(cfg, DefenseKind::NoDefense, 0).unwrap_err();
        assert!(matches!(err, EnsemblerError::InvalidConfig(_)));
    }

    #[test]
    fn training_reduces_the_loss() {
        let data = tiny_data();
        let mut pipeline =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 1).unwrap();
        let mut cfg = TrainConfig::fast_for_tests();
        cfg.epochs_stage1 = 6;
        let losses = pipeline.train_supervised(&data.train, &cfg).unwrap();
        assert_eq!(losses.len(), 6);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn training_rejects_empty_datasets() {
        let data = tiny_data();
        let empty = {
            // Build an empty dataset by taking a 1-sample gather and slicing none:
            // simplest is to construct directly.
            ensembler_data::Dataset::new(
                ensembler_tensor::Tensor::zeros(&[0, 3, 8, 8]),
                vec![],
                data.train.num_classes(),
            )
        };
        let mut pipeline =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 1).unwrap();
        assert!(matches!(
            pipeline.train_supervised(&empty, &TrainConfig::fast_for_tests()),
            Err(EnsemblerError::EmptyDataset)
        ));
    }

    #[test]
    fn noise_defense_perturbs_transmitted_features() {
        let plain =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 3).unwrap();
        let noisy = SinglePipeline::new(
            ResNetConfig::tiny_for_tests(),
            DefenseKind::AdditiveNoise { sigma: 0.3 },
            3,
        )
        .unwrap();
        let images = Tensor::ones(&[1, 3, 8, 8]);
        let a = plain.client_features(&images).unwrap();
        let b = noisy.client_features(&images).unwrap();
        assert_eq!(a.shape(), b.shape());
        let diff = a.sub(&b).norm();
        assert!(diff > 0.1, "noise must change the features (diff {diff})");
    }

    #[test]
    fn shredder_noise_grows_during_training() {
        let data = tiny_data();
        let mut pipeline = SinglePipeline::new(
            ResNetConfig::tiny_for_tests(),
            DefenseKind::Shredder {
                sigma: 0.05,
                expansion: 5.0,
            },
            4,
        )
        .unwrap();
        let initial_norm = match &pipeline.defense {
            DefenseLayer::Learned(n) => n.noise().norm(),
            _ => unreachable!(),
        };
        let mut cfg = TrainConfig::fast_for_tests();
        cfg.epochs_stage1 = 4;
        pipeline.train_supervised(&data.train, &cfg).unwrap();
        let final_norm = match &pipeline.defense {
            DefenseLayer::Learned(n) => n.noise().norm(),
            _ => unreachable!(),
        };
        assert!(
            final_norm > initial_norm,
            "expansion objective should grow the noise: {initial_norm} -> {final_norm}"
        );
    }

    #[test]
    fn dropout_defense_stays_active_at_inference() {
        let pipeline = SinglePipeline::new(
            ResNetConfig::tiny_for_tests(),
            DefenseKind::Dropout { probability: 0.5 },
            5,
        )
        .unwrap();
        let images = Tensor::ones(&[1, 3, 8, 8]);
        let features = pipeline.client_features(&images).unwrap();
        let zeros = features.data().iter().filter(|v| **v == 0.0).count();
        assert!(
            zeros as f32 >= 0.2 * features.len() as f32,
            "a substantial fraction of features should be dropped"
        );
    }

    #[test]
    fn predict_and_evaluate_have_consistent_shapes() {
        let data = tiny_data();
        let pipeline =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 6).unwrap();
        let (images, _) = data.test.batch(0, 4);
        let logits = pipeline.predict(&images).unwrap();
        assert_eq!(logits.shape(), &[4, 3]);
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // The split API agrees with the fused one.
        let transmitted = pipeline.client_features(&images).unwrap();
        let maps = pipeline.server_outputs(&transmitted).unwrap();
        assert_eq!(maps.len(), 1);
        assert_eq!(pipeline.classify(&maps).unwrap(), logits);
        assert!(pipeline.classify(&[]).is_err());
    }

    #[test]
    fn into_parts_returns_the_trained_components() {
        let pipeline =
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 7).unwrap();
        let (head, body, tail) = pipeline.into_parts();
        assert!(head.parameter_count() > 0);
        assert!(body.parameter_count() > 0);
        assert!(tail.parameter_count() > 0);
    }
}
