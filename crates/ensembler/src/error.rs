//! Error type for the public Ensembler API.

use std::error::Error;
use std::fmt;

/// Errors returned by the Ensembler framework's public API.
///
/// # Examples
///
/// ```
/// use ensembler::EnsemblerError;
///
/// let err = EnsemblerError::InvalidSelection { selected: 5, available: 3 };
/// assert!(err.to_string().contains("5"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum EnsemblerError {
    /// The requested selection size `P` is invalid for the ensemble size `N`.
    InvalidSelection {
        /// Requested number of activated networks (P).
        selected: usize,
        /// Number of available server networks (N).
        available: usize,
    },
    /// A model configuration failed validation.
    InvalidConfig(String),
    /// A training or inference input did not match the expected shape.
    ShapeMismatch(String),
    /// Decoding intermediate features from the wire failed.
    WireFormat(String),
    /// The operation requires a dataset with at least one sample.
    EmptyDataset,
    /// The inference engine could not serve a request (for example because it
    /// is shutting down).
    Engine(String),
    /// A networked stage failed: the connection to a remote defense server
    /// broke, the peer sent a malformed frame, or it reported an error.
    Transport(String),
}

impl fmt::Display for EnsemblerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsemblerError::InvalidSelection {
                selected,
                available,
            } => write!(
                f,
                "cannot activate {selected} of {available} server networks"
            ),
            EnsemblerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EnsemblerError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            EnsemblerError::WireFormat(msg) => write!(f, "malformed wire payload: {msg}"),
            EnsemblerError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            EnsemblerError::Engine(msg) => write!(f, "inference engine failure: {msg}"),
            EnsemblerError::Transport(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl Error for EnsemblerError {}

impl From<ensembler_tensor::ShapeError> for EnsemblerError {
    /// A typed shape failure from a compiled plan surfaces as
    /// [`EnsemblerError::ShapeMismatch`] at the pipeline boundary.
    fn from(err: ensembler_tensor::ShapeError) -> Self {
        EnsemblerError::ShapeMismatch(err.message().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(EnsemblerError, &str)> = vec![
            (
                EnsemblerError::InvalidSelection {
                    selected: 4,
                    available: 2,
                },
                "cannot activate 4 of 2",
            ),
            (
                EnsemblerError::InvalidConfig("bad".into()),
                "invalid configuration: bad",
            ),
            (
                EnsemblerError::ShapeMismatch("x".into()),
                "shape mismatch: x",
            ),
            (
                EnsemblerError::WireFormat("short".into()),
                "malformed wire payload: short",
            ),
            (EnsemblerError::EmptyDataset, "non-empty dataset"),
            (
                EnsemblerError::Engine("shutdown".into()),
                "inference engine failure: shutdown",
            ),
            (
                EnsemblerError::Transport("connection reset".into()),
                "transport failure: connection reset",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<EnsemblerError>();
    }
}
