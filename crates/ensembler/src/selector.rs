//! The client's private selector (Eq. 1 of the paper).

use crate::EnsemblerError;
use ensembler_tensor::json::{JsonError, JsonValue};
use ensembler_tensor::{Rng, Tensor};

/// The secret activation the client applies to the `N` feature maps returned
/// by the server.
///
/// The selector activates `P` of the `N` maps, scales each by `S_i = 1/P` and
/// concatenates them along the feature axis before the client tail `M_c,t`
/// consumes them. Which indices are active is the client's secret; the server
/// only ever sees that all `N` outputs are requested.
///
/// # Examples
///
/// ```
/// use ensembler::Selector;
/// use ensembler_tensor::Tensor;
///
/// let selector = Selector::from_indices(4, vec![1, 3])?;
/// let maps = vec![
///     Tensor::full(&[2, 3], 0.0),
///     Tensor::full(&[2, 3], 1.0),
///     Tensor::full(&[2, 3], 2.0),
///     Tensor::full(&[2, 3], 3.0),
/// ];
/// let combined = selector.combine(&maps)?;
/// assert_eq!(combined.shape(), &[2, 6]);
/// assert_eq!(combined.at2(0, 0), 0.5);  // map 1 scaled by 1/P = 1/2
/// assert_eq!(combined.at2(0, 3), 1.5);  // map 3 scaled by 1/2
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    ensemble_size: usize,
    active: Vec<usize>,
}

impl Selector {
    /// Creates a selector that activates the given `active` indices out of
    /// `ensemble_size` server networks.
    ///
    /// # Errors
    ///
    /// Returns [`EnsemblerError::InvalidSelection`] if `active` is empty,
    /// contains duplicates, or references an index `>= ensemble_size`.
    pub fn from_indices(
        ensemble_size: usize,
        mut active: Vec<usize>,
    ) -> Result<Self, EnsemblerError> {
        active.sort_unstable();
        let mut deduped = active.clone();
        deduped.dedup();
        if active.is_empty()
            || deduped.len() != active.len()
            || active.iter().any(|&i| i >= ensemble_size)
        {
            return Err(EnsemblerError::InvalidSelection {
                selected: active.len(),
                available: ensemble_size,
            });
        }
        Ok(Self {
            ensemble_size,
            active,
        })
    }

    /// Draws a uniformly random secret selection of `p` networks out of
    /// `ensemble_size`.
    ///
    /// # Errors
    ///
    /// Returns [`EnsemblerError::InvalidSelection`] if `p` is zero or larger
    /// than `ensemble_size`.
    pub fn random(ensemble_size: usize, p: usize, rng: &mut Rng) -> Result<Self, EnsemblerError> {
        if p == 0 || p > ensemble_size {
            return Err(EnsemblerError::InvalidSelection {
                selected: p,
                available: ensemble_size,
            });
        }
        let active = rng.choose_indices(ensemble_size, p);
        Ok(Self {
            ensemble_size,
            active,
        })
    }

    /// Selector that activates every network with scale `1/N` — the shape of
    /// the *adaptive* attacker's guess, and the configuration used by the
    /// DR-N baseline.
    pub fn all(ensemble_size: usize) -> Self {
        Self {
            ensemble_size,
            active: (0..ensemble_size).collect(),
        }
    }

    /// Number of server networks in the ensemble (N).
    pub fn ensemble_size(&self) -> usize {
        self.ensemble_size
    }

    /// The activated indices, sorted ascending.
    pub fn active_indices(&self) -> &[usize] {
        &self.active
    }

    /// Number of activated networks (P).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The per-map scale `S_i = 1/P`.
    pub fn scale(&self) -> f32 {
        1.0 / self.active.len() as f32
    }

    /// Returns `true` if network `index` is activated.
    pub fn is_active(&self, index: usize) -> bool {
        self.active.binary_search(&index).is_ok()
    }

    /// Applies Eq. 1: scales each activated `[batch, features]` map by `1/P`
    /// and concatenates them along the feature axis.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer maps than `ensemble_size` are supplied or
    /// the activated maps disagree in shape.
    pub fn combine(&self, feature_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        if feature_maps.len() != self.ensemble_size {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "expected {} feature maps, got {}",
                self.ensemble_size,
                feature_maps.len()
            )));
        }
        let first = &feature_maps[self.active[0]];
        if first.rank() != 2 {
            return Err(EnsemblerError::ShapeMismatch(
                "selector expects [batch, features] maps".to_string(),
            ));
        }
        let (batch, features) = (first.shape()[0], first.shape()[1]);
        let mut data = Vec::with_capacity(batch * features * self.active.len());
        let scale = self.scale();
        for n in 0..batch {
            for &idx in &self.active {
                let map = &feature_maps[idx];
                if map.shape() != first.shape() {
                    return Err(EnsemblerError::ShapeMismatch(format!(
                        "feature map {idx} has shape {:?}, expected {:?}",
                        map.shape(),
                        first.shape()
                    )));
                }
                let row = &map.data()[n * features..(n + 1) * features];
                data.extend(row.iter().map(|v| v * scale));
            }
        }
        Tensor::from_vec(data, &[batch, features * self.active.len()])
            .map_err(|e| EnsemblerError::ShapeMismatch(e.to_string()))
    }

    /// Splits the gradient of the combined features back into per-network
    /// gradients (the adjoint of [`Selector::combine`]). Inactive networks
    /// receive a zero gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_combined` does not have the
    /// `[batch, P * features]` shape produced by `combine`.
    pub fn split_gradient(
        &self,
        grad_combined: &Tensor,
        features_per_map: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        if grad_combined.rank() != 2
            || grad_combined.shape()[1] != features_per_map * self.active.len()
        {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "expected [batch, {}] combined gradient, got {:?}",
                features_per_map * self.active.len(),
                grad_combined.shape()
            )));
        }
        let batch = grad_combined.shape()[0];
        let scale = self.scale();
        let mut grads = vec![Tensor::zeros(&[batch, features_per_map]); self.ensemble_size];
        for n in 0..batch {
            for (slot, &idx) in self.active.iter().enumerate() {
                let src_base = n * features_per_map * self.active.len() + slot * features_per_map;
                let dst_base = n * features_per_map;
                let grad = &mut grads[idx];
                for f in 0..features_per_map {
                    grad.data_mut()[dst_base + f] = grad_combined.data()[src_base + f] * scale;
                }
            }
        }
        Ok(grads)
    }

    /// Number of possible secret selections of this size, `C(N, P)` — the
    /// brute-force space an attacker faces (Sec. III-D puts the expected MIA
    /// cost at `O(2^N)` over all subset sizes).
    pub fn search_space(&self) -> u128 {
        binomial(self.ensemble_size as u128, self.active.len() as u128)
    }

    /// Serialises the selector (the client's secret key material) to JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "ensemble_size".to_string(),
                JsonValue::Number(self.ensemble_size as f64),
            ),
            (
                "active".to_string(),
                JsonValue::from_usize_slice(&self.active),
            ),
        ])
    }

    /// Reconstructs a selector from the representation produced by
    /// [`Selector::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or an invalid selection.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let ensemble_size = value.require("ensemble_size")?.as_usize()?;
        let active = value.require("active")?.as_usize_vec()?;
        Selector::from_indices(ensemble_size, active).map_err(|e| JsonError::new(e.to_string()))
    }
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_indices() {
        assert!(Selector::from_indices(4, vec![0, 2]).is_ok());
        assert!(Selector::from_indices(4, vec![]).is_err());
        assert!(Selector::from_indices(4, vec![4]).is_err());
        assert!(Selector::from_indices(4, vec![1, 1]).is_err());
    }

    #[test]
    fn random_selection_has_requested_size_and_valid_indices() {
        let mut rng = Rng::seed_from(3);
        let sel = Selector::random(10, 4, &mut rng).unwrap();
        assert_eq!(sel.active_count(), 4);
        assert_eq!(sel.ensemble_size(), 10);
        assert!(sel.active_indices().iter().all(|&i| i < 10));
        assert!((sel.scale() - 0.25).abs() < f32::EPSILON);
        assert!(Selector::random(10, 0, &mut rng).is_err());
        assert!(Selector::random(10, 11, &mut rng).is_err());
    }

    #[test]
    fn all_selector_activates_every_network() {
        let sel = Selector::all(5);
        assert_eq!(sel.active_count(), 5);
        assert!((0..5).all(|i| sel.is_active(i)));
        assert!((sel.scale() - 0.2).abs() < f32::EPSILON);
    }

    #[test]
    fn combine_scales_and_concatenates_in_index_order() {
        let sel = Selector::from_indices(3, vec![2, 0]).unwrap();
        // Indices are stored sorted, so map 0 comes before map 2.
        let maps = vec![
            Tensor::full(&[1, 2], 2.0),
            Tensor::full(&[1, 2], 5.0),
            Tensor::full(&[1, 2], 4.0),
        ];
        let combined = sel.combine(&maps).unwrap();
        assert_eq!(combined.shape(), &[1, 4]);
        assert_eq!(combined.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn combine_validates_map_count_and_shapes() {
        let sel = Selector::from_indices(2, vec![0, 1]).unwrap();
        let short = vec![Tensor::zeros(&[1, 2])];
        assert!(sel.combine(&short).is_err());
        let mismatched = vec![Tensor::zeros(&[1, 2]), Tensor::zeros(&[1, 3])];
        assert!(sel.combine(&mismatched).is_err());
        let not_flat = vec![Tensor::zeros(&[1, 2, 1, 1]), Tensor::zeros(&[1, 2, 1, 1])];
        assert!(sel.combine(&not_flat).is_err());
    }

    #[test]
    fn split_gradient_is_the_adjoint_of_combine() {
        let mut rng = Rng::seed_from(7);
        let sel = Selector::from_indices(4, vec![1, 3]).unwrap();
        let maps: Vec<Tensor> = (0..4)
            .map(|_| Tensor::from_fn(&[2, 3], |_| rng.uniform(-1.0, 1.0)))
            .collect();
        let combined = sel.combine(&maps).unwrap();
        let grad_combined = Tensor::from_fn(combined.shape(), |_| rng.uniform(-1.0, 1.0));
        let grads = sel.split_gradient(&grad_combined, 3).unwrap();

        // <combine(maps), g> == sum_i <maps[i], split(g)[i]>
        let lhs = combined.dot(&grad_combined);
        let rhs: f32 = maps.iter().zip(&grads).map(|(m, g)| m.dot(g)).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");

        // Inactive networks receive exactly zero gradient.
        assert_eq!(grads[0].norm(), 0.0);
        assert_eq!(grads[2].norm(), 0.0);
        assert!(grads[1].norm() > 0.0);
    }

    #[test]
    fn split_gradient_validates_shape() {
        let sel = Selector::from_indices(2, vec![0]).unwrap();
        let bad = Tensor::zeros(&[1, 5]);
        assert!(sel.split_gradient(&bad, 3).is_err());
    }

    #[test]
    fn search_space_matches_binomial_coefficients() {
        let sel = Selector::from_indices(10, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(sel.search_space(), 210);
        let sel = Selector::from_indices(10, vec![0, 1, 2]).unwrap();
        assert_eq!(sel.search_space(), 120);
        let all = Selector::all(6);
        assert_eq!(all.search_space(), 1);
    }

    #[test]
    fn json_round_trip_preserves_the_secret() {
        let sel = Selector::from_indices(10, vec![2, 5, 7]).unwrap();
        let json = sel.to_json().render();
        let back = Selector::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, sel);
    }

    #[test]
    fn json_decoding_validates_the_selection() {
        let bad = JsonValue::parse(r#"{"ensemble_size": 2, "active": [5]}"#).unwrap();
        assert!(Selector::from_json(&bad).is_err());
    }
}
