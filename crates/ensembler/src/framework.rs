//! The Ensembler inference pipeline (Fig. 2 of the paper).

use crate::{EnsemblerError, Selector};
use ensembler_data::Dataset;
use ensembler_metrics::accuracy;
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{Dropout, FixedNoise, Layer, Mode, Sequential};
use ensembler_tensor::Tensor;
use rayon::prelude::*;

/// The full Ensembler collaborative-inference pipeline.
///
/// * The **client** holds the head `M_c,h` (one convolution plus optional
///   stem pool), a fixed Gaussian noise pattern, the private [`Selector`]
///   and the tail classifier `M_c,t`.
/// * The **server** holds the `N` body networks `M_s^1..M_s^N`.
///
/// During inference the client sends `M_c,h(x) + N(0, σ)` to the server, the
/// server evaluates all `N` bodies and returns their feature maps, and the
/// client secretly combines `P` of them before running the tail.
///
/// The pipeline exposes the pieces an adversarial server legitimately has
/// access to under the paper's threat model — the bodies
/// ([`EnsemblerPipeline::bodies_mut`]) and the architecture
/// ([`EnsemblerPipeline::config`]) — which is what the `ensembler-attack`
/// crate uses to mount model inversion attacks.
#[derive(Debug)]
pub struct EnsemblerPipeline {
    config: ResNetConfig,
    head: Sequential,
    noise: FixedNoise,
    dropout: Option<Dropout>,
    bodies: Vec<Sequential>,
    selector: Selector,
    tail: Sequential,
}

impl EnsemblerPipeline {
    /// Assembles a pipeline from its parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the selector's ensemble size differs from the
    /// number of bodies, or if there are no bodies at all.
    pub fn new(
        config: ResNetConfig,
        head: Sequential,
        noise: FixedNoise,
        bodies: Vec<Sequential>,
        selector: Selector,
        tail: Sequential,
    ) -> Result<Self, EnsemblerError> {
        if bodies.is_empty() {
            return Err(EnsemblerError::InvalidConfig(
                "an Ensembler pipeline needs at least one server body".to_string(),
            ));
        }
        if selector.ensemble_size() != bodies.len() {
            return Err(EnsemblerError::InvalidSelection {
                selected: selector.active_count(),
                available: bodies.len(),
            });
        }
        Ok(Self {
            config,
            head,
            noise,
            dropout: None,
            bodies,
            selector,
            tail,
        })
    }

    /// Adds an inference-time dropout layer on the transmitted features (the
    /// DR-N baseline defence). The dropout stays active in evaluation mode.
    pub fn with_feature_dropout(mut self, probability: f32, seed: u64) -> Self {
        let mut dropout = Dropout::new(probability, seed);
        dropout.set_active_in_eval(true);
        self.dropout = Some(dropout);
        self
    }

    /// The backbone configuration shared by the client and the server.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// The client's private selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// Number of server networks (N).
    pub fn ensemble_size(&self) -> usize {
        self.bodies.len()
    }

    /// The standard deviation of the client's fixed noise.
    pub fn noise_sigma(&self) -> f32 {
        self.noise.sigma()
    }

    /// Mutable access to the server bodies.
    ///
    /// Under the paper's threat model the adversarial server owns these
    /// weights, so the attack crate is given the same access.
    pub fn bodies_mut(&mut self) -> &mut [Sequential] {
        &mut self.bodies
    }

    /// Immutable access to the server bodies.
    pub fn bodies(&self) -> &[Sequential] {
        &self.bodies
    }

    /// Total number of trainable scalars across client and server parts.
    pub fn parameter_count(&self) -> usize {
        self.head.parameter_count()
            + self.tail.parameter_count()
            + self.bodies.iter().map(Layer::parameter_count).sum::<usize>()
    }

    /// Computes the features the client transmits for a batch of images:
    /// `M_c,h(x) + N(0, σ)` (plus dropout if the DR-N defence is enabled).
    pub fn client_features(&mut self, images: &Tensor) -> Tensor {
        let features = self.head.forward(images, Mode::Eval);
        let noisy = self.noise.forward(&features, Mode::Eval);
        match &mut self.dropout {
            Some(dropout) => dropout.forward(&noisy, Mode::Eval),
            None => noisy,
        }
    }

    /// Evaluates every server body on the transmitted features, returning the
    /// `N` per-network feature maps in index order.
    ///
    /// The bodies are independent, so they are evaluated in parallel — the
    /// property the paper uses to argue the `O(N)` server cost parallelises
    /// away in multi-GPU or multi-party deployments.
    pub fn server_outputs(&mut self, transmitted: &Tensor) -> Vec<Tensor> {
        self.bodies
            .par_iter_mut()
            .map(|body| body.forward(transmitted, Mode::Eval))
            .collect()
    }

    /// Applies the private selector and the client tail to the server's
    /// feature maps, producing class logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of feature maps differs from the
    /// ensemble size.
    pub fn classify(&mut self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        let combined = self.selector.combine(server_maps)?;
        Ok(self.tail.forward(&combined, Mode::Eval))
    }

    /// Runs the complete collaborative-inference pipeline on a batch of
    /// images and returns class logits.
    ///
    /// # Errors
    ///
    /// Propagates selector shape errors (which indicate an inconsistent
    /// pipeline).
    pub fn predict(&mut self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        let transmitted = self.client_features(images);
        let maps = self.server_outputs(&transmitted);
        self.classify(&maps)
    }

    /// Top-1 accuracy of the pipeline on a dataset, evaluated in mini-batches.
    ///
    /// Returns 0 for an empty dataset.
    pub fn evaluate(&mut self, dataset: &Dataset) -> f32 {
        if dataset.is_empty() {
            return 0.0;
        }
        let batch_size = 32usize;
        let mut correct_weighted = 0.0f32;
        let mut start = 0usize;
        while start < dataset.len() {
            let (images, labels) = dataset.batch(start, batch_size);
            let logits = self
                .predict(&images)
                .expect("pipeline shapes are validated at construction");
            correct_weighted += accuracy(&logits, &labels) * labels.len() as f32;
            start += batch_size;
        }
        correct_weighted / dataset.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_data::SyntheticSpec;
    use ensembler_nn::models::{build_body, build_head, build_tail};
    use ensembler_tensor::Rng;

    fn tiny_pipeline(n: usize, p: usize, seed: u64) -> EnsemblerPipeline {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(seed);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies: Vec<Sequential> = (0..n).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(n, p, &mut rng).unwrap();
        let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
        EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap()
    }

    #[test]
    fn construction_validates_ensemble_consistency() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(0);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::disabled(&config.head_output_shape());
        let tail = build_tail(&config, config.body_output_features(), &mut rng);
        let err = EnsemblerPipeline::new(
            config.clone(),
            head,
            noise,
            vec![],
            Selector::all(1),
            tail,
        )
        .unwrap_err();
        assert!(matches!(err, EnsemblerError::InvalidConfig(_)));

        let mut rng = Rng::seed_from(1);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::disabled(&config.head_output_shape());
        let tail = build_tail(&config, config.body_output_features(), &mut rng);
        let bodies = vec![build_body(&config, &mut rng)];
        let err = EnsemblerPipeline::new(config, head, noise, bodies, Selector::all(3), tail)
            .unwrap_err();
        assert!(matches!(err, EnsemblerError::InvalidSelection { .. }));
    }

    #[test]
    fn end_to_end_prediction_shapes() {
        let mut pipeline = tiny_pipeline(3, 2, 42);
        let images = Tensor::ones(&[4, 3, 8, 8]);
        let logits = pipeline.predict(&images).unwrap();
        assert_eq!(logits.shape(), &[4, pipeline.config().num_classes]);
        assert!(logits.is_finite());
    }

    #[test]
    fn client_features_have_the_documented_shape_and_include_noise() {
        let mut pipeline = tiny_pipeline(2, 1, 7);
        let expected = pipeline.config().head_output_shape();
        let images = Tensor::zeros(&[2, 3, 8, 8]);
        let features = pipeline.client_features(&images);
        assert_eq!(
            features.shape(),
            &[2, expected[0], expected[1], expected[2]]
        );
        // With zero input and biases near zero, the transmitted features are
        // dominated by the fixed noise pattern, so they are not all equal to
        // the raw head output of zeros.
        assert!(features.norm() > 0.0);
        assert!(pipeline.noise_sigma() > 0.0);
    }

    #[test]
    fn server_outputs_are_per_network_and_deterministic() {
        let mut pipeline = tiny_pipeline(3, 2, 11);
        let images = Tensor::ones(&[2, 3, 8, 8]);
        let transmitted = pipeline.client_features(&images);
        let maps_a = pipeline.server_outputs(&transmitted);
        let maps_b = pipeline.server_outputs(&transmitted);
        assert_eq!(maps_a.len(), 3);
        assert_eq!(maps_a, maps_b, "evaluation must be deterministic");
        let feat = pipeline.config().body_output_features();
        for map in &maps_a {
            assert_eq!(map.shape(), &[2, feat]);
        }
        // Independently initialised bodies produce different feature maps.
        assert_ne!(maps_a[0], maps_a[1]);
    }

    #[test]
    fn evaluate_returns_a_probability() {
        let mut pipeline = tiny_pipeline(2, 1, 3);
        let data = SyntheticSpec::tiny_for_tests().generate(5);
        let acc = pipeline.evaluate(&data.test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn feature_dropout_changes_transmitted_features() {
        let mut plain = tiny_pipeline(2, 1, 9);
        let mut defended = tiny_pipeline(2, 1, 9).with_feature_dropout(0.5, 123);
        let images = Tensor::ones(&[1, 3, 8, 8]);
        let a = plain.client_features(&images);
        let b = defended.client_features(&images);
        assert_eq!(a.shape(), b.shape());
        assert_ne!(a, b, "dropout must perturb the transmitted features");
        let zeros = b.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 0, "some activations must be dropped");
    }

    #[test]
    fn parameter_count_grows_with_ensemble_size() {
        let small = tiny_pipeline(2, 1, 1);
        let large = tiny_pipeline(4, 1, 1);
        assert!(large.parameter_count() > small.parameter_count());
        assert_eq!(small.ensemble_size(), 2);
        assert_eq!(large.ensemble_size(), 4);
    }
}
