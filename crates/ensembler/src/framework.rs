//! The Ensembler inference pipeline (Fig. 2 of the paper).

use crate::defense::Defense;
use crate::plans::PlanCell;
use crate::{EnsemblerError, Selector};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{CompiledPlan, Dropout, FixedNoise, FusionConfig, Layer, Mode, Sequential};
use ensembler_tensor::{par_map, Tensor};

/// The full Ensembler collaborative-inference pipeline.
///
/// * The **client** holds the head `M_c,h` (one convolution plus optional
///   stem pool), a fixed Gaussian noise pattern, the private [`Selector`]
///   and the tail classifier `M_c,t`.
/// * The **server** holds the `N` body networks `M_s^1..M_s^N`.
///
/// During inference the client sends `M_c,h(x) + N(0, σ)` to the server, the
/// server evaluates all `N` bodies and returns their feature maps, and the
/// client secretly combines `P` of them before running the tail.
///
/// All inference goes through the [`Defense`] trait and takes `&self`: a
/// pipeline can be wrapped in an `Arc`, shared across threads and serve
/// concurrent batches (see [`crate::engine::InferenceEngine`]) — the API
/// realisation of the paper's argument that the `O(N)` server cost
/// parallelises away.
///
/// Inference does not call `Layer::forward` directly: head, bodies and tail
/// are lowered through [`ensembler_nn::graph`] and compiled into fused
/// [`CompiledPlan`]s (see [`FusionConfig`]) — once per pipeline, cached, and
/// invalidated when [`EnsemblerPipeline::bodies_mut`] hands out mutable
/// weights. The plans also validate request shapes, so a malformed batch
/// returns [`EnsemblerError::ShapeMismatch`] instead of panicking.
///
/// The pipeline exposes the pieces an adversarial server legitimately has
/// access to under the paper's threat model — the bodies
/// ([`Defense::server_bodies`]) and the architecture ([`Defense::config`]) —
/// which is what the `ensembler-attack` crate uses to mount model inversion
/// attacks.
#[derive(Debug)]
pub struct EnsemblerPipeline {
    config: ResNetConfig,
    head: Sequential,
    noise: FixedNoise,
    dropout: Option<Dropout>,
    bodies: Vec<Sequential>,
    selector: Selector,
    tail: Sequential,
    fusion: FusionConfig,
    head_plan: CompiledPlan,
    tail_plan: CompiledPlan,
    body_plans: PlanCell,
}

impl EnsemblerPipeline {
    /// Assembles a pipeline from its parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the selector's ensemble size differs from the
    /// number of bodies, or if there are no bodies at all.
    pub fn new(
        config: ResNetConfig,
        head: Sequential,
        noise: FixedNoise,
        bodies: Vec<Sequential>,
        selector: Selector,
        tail: Sequential,
    ) -> Result<Self, EnsemblerError> {
        if bodies.is_empty() {
            return Err(EnsemblerError::InvalidConfig(
                "an Ensembler pipeline needs at least one server body".to_string(),
            ));
        }
        if selector.ensemble_size() != bodies.len() {
            return Err(EnsemblerError::InvalidSelection {
                selected: selector.active_count(),
                available: bodies.len(),
            });
        }
        let fusion = FusionConfig::default();
        let head_plan = CompiledPlan::compile(&head, fusion);
        let tail_plan = CompiledPlan::compile(&tail, fusion);
        Ok(Self {
            config,
            head,
            noise,
            dropout: None,
            bodies,
            selector,
            tail,
            fusion,
            head_plan,
            tail_plan,
            body_plans: PlanCell::new(),
        })
    }

    /// Recompiles the pipeline's execution plans with a different
    /// [`FusionConfig`] (e.g. [`FusionConfig::none`] for an eager baseline or
    /// [`FusionConfig::full`] for conv+bn folding).
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self.head_plan = CompiledPlan::compile(&self.head, fusion);
        self.tail_plan = CompiledPlan::compile(&self.tail, fusion);
        self.body_plans.invalidate();
        self
    }

    /// The fusion configuration the pipeline's plans are compiled with.
    pub fn fusion(&self) -> FusionConfig {
        self.fusion
    }

    /// The compiled body plans, recompiling them if weights changed since the
    /// last inference.
    fn body_plans(&self) -> std::sync::Arc<Vec<CompiledPlan>> {
        self.body_plans.get_or_compile(|| {
            self.bodies
                .iter()
                .map(|body| CompiledPlan::compile(body, self.fusion))
                .collect()
        })
    }

    /// Adds an inference-time dropout layer on the transmitted features (the
    /// DR-N baseline defence). The dropout stays active in evaluation mode.
    pub fn with_feature_dropout(mut self, probability: f32, seed: u64) -> Self {
        let mut dropout = Dropout::new(probability, seed);
        dropout.set_active_in_eval(true);
        self.dropout = Some(dropout);
        self
    }

    /// The client's private selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The client head `M_c,h` (artifact export reads its parameters).
    pub fn head(&self) -> &Sequential {
        &self.head
    }

    /// The client tail `M_c,t` (artifact export reads its parameters).
    pub fn tail(&self) -> &Sequential {
        &self.tail
    }

    /// The client's fixed noise layer.
    pub fn noise(&self) -> &FixedNoise {
        &self.noise
    }

    /// The inference-time feature dropout, if the DR-N defence is enabled.
    pub fn feature_dropout(&self) -> Option<&Dropout> {
        self.dropout.as_ref()
    }

    /// The standard deviation of the client's fixed noise.
    pub fn noise_sigma(&self) -> f32 {
        self.noise.sigma()
    }

    /// Mutable access to the server bodies (training and weight surgery; all
    /// inference goes through the immutable [`Defense`] methods).
    ///
    /// Invalidates the cached body plans: the next inference recompiles them
    /// against the mutated weights.
    pub fn bodies_mut(&mut self) -> &mut [Sequential] {
        self.body_plans.invalidate();
        &mut self.bodies
    }

    /// Total number of trainable scalars across client and server parts.
    pub fn parameter_count(&self) -> usize {
        self.head.parameter_count()
            + self.tail.parameter_count()
            + self
                .bodies
                .iter()
                .map(Layer::parameter_count)
                .sum::<usize>()
    }
}

impl Defense for EnsemblerPipeline {
    fn config(&self) -> &ResNetConfig {
        &self.config
    }

    fn label(&self) -> &str {
        "Ensembler"
    }

    fn server_bodies(&self) -> &[Sequential] {
        &self.bodies
    }

    fn selected_count(&self) -> usize {
        self.selector.active_count()
    }

    /// Computes the features the client transmits for a batch of images:
    /// `M_c,h(x) + N(0, σ)` (plus dropout if the DR-N defence is enabled).
    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        let features = self.head_plan.run(images)?;
        let noisy = self.noise.forward(&features, Mode::Eval);
        Ok(match &self.dropout {
            Some(dropout) => dropout.forward(&noisy, Mode::Eval),
            None => noisy,
        })
    }

    /// Evaluates every server body on the transmitted features, returning the
    /// `N` per-network feature maps in index order.
    ///
    /// The bodies are independent, so they are evaluated in parallel from a
    /// shared `&self` — the property the paper uses to argue the `O(N)`
    /// server cost parallelises away in multi-GPU or multi-party deployments.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        let plans = self.body_plans();
        let maps = par_map(&plans, |plan| plan.run(transmitted));
        maps.into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(EnsemblerError::from)
    }

    /// Evaluates only the bodies `lo..hi` — the sharded-worker serving mode.
    /// Bit-identical to slicing the full [`Defense::server_outputs`] because
    /// each body's forward is independent of the others.
    fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        crate::check_body_range(lo, hi, self.bodies.len())?;
        let plans = self.body_plans();
        let maps = par_map(&plans[lo..hi], |plan| plan.run(transmitted));
        maps.into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(EnsemblerError::from)
    }

    /// Applies the private selector and the client tail to the server's
    /// feature maps, producing class logits.
    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        let combined = self.selector.combine(server_maps)?;
        Ok(self.tail_plan.run(&combined)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::EvalConfig;
    use ensembler_data::SyntheticSpec;
    use ensembler_nn::models::{build_body, build_head, build_tail};
    use ensembler_tensor::Rng;
    use std::sync::Arc;

    fn tiny_pipeline(n: usize, p: usize, seed: u64) -> EnsemblerPipeline {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(seed);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies: Vec<Sequential> = (0..n).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(n, p, &mut rng).unwrap();
        let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
        EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap()
    }

    #[test]
    fn construction_validates_ensemble_consistency() {
        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(0);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::disabled(&config.head_output_shape());
        let tail = build_tail(&config, config.body_output_features(), &mut rng);
        let err =
            EnsemblerPipeline::new(config.clone(), head, noise, vec![], Selector::all(1), tail)
                .unwrap_err();
        assert!(matches!(err, EnsemblerError::InvalidConfig(_)));

        let mut rng = Rng::seed_from(1);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::disabled(&config.head_output_shape());
        let tail = build_tail(&config, config.body_output_features(), &mut rng);
        let bodies = vec![build_body(&config, &mut rng)];
        let err = EnsemblerPipeline::new(config, head, noise, bodies, Selector::all(3), tail)
            .unwrap_err();
        assert!(matches!(err, EnsemblerError::InvalidSelection { .. }));
    }

    #[test]
    fn end_to_end_prediction_shapes() {
        let pipeline = tiny_pipeline(3, 2, 42);
        let images = Tensor::ones(&[4, 3, 8, 8]);
        let logits = pipeline.predict(&images).unwrap();
        assert_eq!(logits.shape(), &[4, pipeline.config().num_classes]);
        assert!(logits.is_finite());
        assert_eq!(pipeline.label(), "Ensembler");
        assert_eq!(pipeline.selected_count(), 2);
    }

    #[test]
    fn client_features_have_the_documented_shape_and_include_noise() {
        let pipeline = tiny_pipeline(2, 1, 7);
        let expected = pipeline.config().head_output_shape();
        let images = Tensor::zeros(&[2, 3, 8, 8]);
        let features = pipeline.client_features(&images).unwrap();
        assert_eq!(
            features.shape(),
            &[2, expected[0], expected[1], expected[2]]
        );
        // With zero input and biases near zero, the transmitted features are
        // dominated by the fixed noise pattern, so they are not all equal to
        // the raw head output of zeros.
        assert!(features.norm() > 0.0);
        assert!(pipeline.noise_sigma() > 0.0);
    }

    #[test]
    fn server_outputs_are_per_network_and_deterministic() {
        let pipeline = tiny_pipeline(3, 2, 11);
        let images = Tensor::ones(&[2, 3, 8, 8]);
        let transmitted = pipeline.client_features(&images).unwrap();
        let maps_a = pipeline.server_outputs(&transmitted).unwrap();
        let maps_b = pipeline.server_outputs(&transmitted).unwrap();
        assert_eq!(maps_a.len(), 3);
        assert_eq!(maps_a, maps_b, "evaluation must be deterministic");
        let feat = pipeline.config().body_output_features();
        for map in &maps_a {
            assert_eq!(map.shape(), &[2, feat]);
        }
        // Independently initialised bodies produce different feature maps.
        assert_ne!(maps_a[0], maps_a[1]);
    }

    #[test]
    fn range_outputs_equal_the_sliced_full_evaluation() {
        let pipeline = tiny_pipeline(4, 2, 13);
        let images = Tensor::ones(&[2, 3, 8, 8]);
        let transmitted = pipeline.client_features(&images).unwrap();
        let full = pipeline.server_outputs(&transmitted).unwrap();
        for (lo, hi) in [(0usize, 4usize), (0, 2), (2, 4), (1, 3)] {
            assert_eq!(
                pipeline.server_outputs_range(&transmitted, lo, hi).unwrap(),
                full[lo..hi],
                "range {lo}..{hi}"
            );
        }
        // Malformed ranges are typed errors, never silent truncation.
        assert!(pipeline.server_outputs_range(&transmitted, 2, 2).is_err());
        assert!(pipeline.server_outputs_range(&transmitted, 0, 5).is_err());
    }

    #[test]
    fn evaluate_returns_a_probability() {
        let pipeline = tiny_pipeline(2, 1, 3);
        let data = SyntheticSpec::tiny_for_tests().generate(5);
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // A custom batch size sweeps the same dataset to the same accuracy.
        let acc_small = pipeline
            .evaluate(&data.test, &EvalConfig::with_batch_size(2))
            .unwrap();
        assert!((acc - acc_small).abs() < 1e-6);
    }

    #[test]
    fn feature_dropout_changes_transmitted_features() {
        let plain = tiny_pipeline(2, 1, 9);
        let defended = tiny_pipeline(2, 1, 9).with_feature_dropout(0.5, 123);
        let images = Tensor::ones(&[1, 3, 8, 8]);
        let a = plain.client_features(&images).unwrap();
        let b = defended.client_features(&images).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert_ne!(a, b, "dropout must perturb the transmitted features");
        let zeros = b.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 0, "some activations must be dropped");
    }

    #[test]
    fn parameter_count_grows_with_ensemble_size() {
        let small = tiny_pipeline(2, 1, 1);
        let large = tiny_pipeline(4, 1, 1);
        assert!(large.parameter_count() > small.parameter_count());
        assert_eq!(small.ensemble_size(), 2);
        assert_eq!(large.ensemble_size(), 4);
    }

    #[test]
    fn concurrent_predictions_match_sequential_ones() {
        // The acceptance test of the immutable-forward redesign: two threads
        // share one pipeline through an Arc and must see exactly the results
        // sequential execution produces.
        let pipeline = Arc::new(tiny_pipeline(3, 2, 21).with_feature_dropout(0.3, 77));
        let images_a = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32 * 0.013).sin());
        let images_b = Tensor::from_fn(&[3, 3, 8, 8], |i| (i as f32 * 0.007).cos());

        let sequential_a = pipeline.predict(&images_a).unwrap();
        let sequential_b = pipeline.predict(&images_b).unwrap();

        let (concurrent_a, concurrent_b) = std::thread::scope(|scope| {
            let p_a = Arc::clone(&pipeline);
            let p_b = Arc::clone(&pipeline);
            let ia = &images_a;
            let ib = &images_b;
            let ha = scope.spawn(move || p_a.predict(ia).unwrap());
            let hb = scope.spawn(move || p_b.predict(ib).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });

        assert_eq!(concurrent_a, sequential_a);
        assert_eq!(concurrent_b, sequential_b);
    }
}
